"""Shared-resource contention model + the calibration constants.

Why speedup curves bend (paper evidence):

* the Delta tree serialises concurrent inserts — "the inner loop of the
  program puts several million Estimate tuples through the Delta tree,
  which is still not sufficiently scalable to cope with a large number
  of threads contending for the same branches of the tree" (§6.5,
  Fig 12's ≈4× plateau);
* concurrent Gamma structures cost more than sequential ones — "the
  absolute speedup figures are about 35 % lower, because the sequential
  Java data structures (eg. TreeMap) are significantly faster than the
  equivalent concurrent data structures" (§6.2);
* dense numeric kernels saturate memory bandwidth, flattening Fig 11
  beyond ~20 cores;
* fork/join dispatch adds a per-task spawn cost and a per-step join
  barrier.

Model.  For one step with task batch *T* on *n* cores:

``makespan = max( LPT(T, n),  max_r serial_r * (1 + growth_r·(n-1)) )
             + spawn·|T|/n + barrier·log2(n)``

where ``serial_r`` is the summed serialisable work on resource *r*
(from the cost meters) and ``growth_r`` models cache-line ping-pong
getting *worse* as more cores hammer the same structure.  Amdahl-style
sequential phases need no special treatment: a phase with one task has
``LPT = cost`` regardless of *n*.

Every tunable lives in :class:`CalibratedCosts`; the defaults were
calibrated once against the paper's figures and are used by all
benchmarks.  Per-structure serial fractions live with the structures
(:class:`~repro.gamma.base.CostProfile`, Delta constants below).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.simcore.scheduler import greedy_makespan
from repro.simcore.task import SimTask

__all__ = ["CalibratedCosts", "StepTiming", "step_makespan"]


def _default_growth() -> dict[str, float]:
    return {
        # the Delta tree's hot branches ping-pong badly (Fig 12)
        "delta": 0.06,
        # memory bandwidth saturates gently (Fig 11 flattening)
        "membw": 0.035,
    }


@dataclass(frozen=True)
class CalibratedCosts:
    """All machine-level tunables of the virtual-time model."""

    #: per-task fork/join spawn overhead (work units)
    spawn_cost: float = 0.8
    #: per-step join-barrier cost, multiplied by log2(cores)
    barrier_cost: float = 2.0
    #: serialisable fraction of Delta-tree traffic when shared
    delta_serial_fraction: float = 0.30
    #: contention growth per extra core, by resource name
    resource_growth: dict[str, float] = field(default_factory=_default_growth)
    #: default growth for resources not named above (locks/CAS retry)
    default_growth: float = 0.10

    def growth(self, resource: str) -> float:
        return self.resource_growth.get(resource, self.default_growth)


@dataclass(frozen=True, slots=True)
class StepTiming:
    """Virtual-time account of one engine step."""

    makespan: float
    busy: float            # total useful work in the batch
    base: float            # LPT bound before contention/overheads
    contention: float      # extra time attributable to shared resources
    overhead: float        # spawn + barrier
    n_tasks: int

    @property
    def efficiency(self) -> float:
        return self.busy / self.makespan if self.makespan > 0 else 1.0


def step_makespan(
    tasks: Sequence[SimTask],
    n_cores: int,
    calib: CalibratedCosts,
) -> StepTiming:
    """Virtual duration of one all-minimums step (see module docstring).

    With ``n_cores == 1`` the model collapses to the exact sequential
    sum with no contention and no spawn/barrier overheads — sequential
    code generation has neither (§5).
    """
    busy = sum(t.cost for t in tasks)
    if not tasks:
        return StepTiming(0.0, 0.0, 0.0, 0.0, 0.0, 0)
    if n_cores <= 1:
        return StepTiming(busy, busy, busy, 0.0, 0.0, len(tasks))

    base = greedy_makespan(tasks, n_cores)

    # serialisable work per shared resource across the whole batch
    serial: dict[str, float] = {}
    for t in tasks:
        for r, c in t.shared.items():
            serial[r] = serial.get(r, 0.0) + c
    bottleneck = 0.0
    for r, s in serial.items():
        bottleneck = max(bottleneck, s * (1.0 + calib.growth(r) * (n_cores - 1)))

    overhead = calib.spawn_cost * len(tasks) / n_cores + calib.barrier_cost * math.log2(
        max(2, n_cores)
    )
    makespan = max(base, bottleneck) + overhead
    contention = max(0.0, max(base, bottleneck) - base)
    return StepTiming(makespan, busy, base, contention, overhead, len(tasks))
