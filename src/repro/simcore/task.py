"""Simulator task records.

A :class:`SimTask` is the virtual-time shadow of one fork/join task:
the engine runs the task's rule firings for real (sequentially,
deterministically) while metering them, then hands the resulting cost
record to the scheduler.  ``cost`` is total abstract work in work
units; ``shared`` maps shared-resource names (``"delta"``,
``"gamma:PvWatts"``, ``"membw"``) to the work units that must serialise
on that resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimTask"]


@dataclass(slots=True)
class SimTask:
    """One schedulable unit of virtual work."""

    cost: float
    shared: dict[str, float] = field(default_factory=dict)
    label: str = ""

    def scaled(self, factor: float) -> "SimTask":
        return SimTask(
            self.cost * factor,
            {k: v * factor for k, v in self.shared.items()},
            self.label,
        )
