"""Virtual-time multicore machine — the hardware substitute (DESIGN.md §2).

Public surface: :class:`Machine` (N cores, calibrated contention + GC
models), :class:`SimTask` records, :class:`CalibratedCosts` /
:class:`GcModel` tunables, and the raw :func:`step_makespan` model.
"""

from repro.simcore.contention import CalibratedCosts, StepTiming, step_makespan
from repro.simcore.gc import NO_GC, GcModel
from repro.simcore.machine import Machine, MachineReport
from repro.simcore.scheduler import greedy_makespan, lpt_makespan
from repro.simcore.task import SimTask

__all__ = [
    "CalibratedCosts",
    "StepTiming",
    "step_makespan",
    "GcModel",
    "NO_GC",
    "Machine",
    "MachineReport",
    "greedy_makespan",
    "lpt_makespan",
    "SimTask",
]
