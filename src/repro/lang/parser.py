"""Recursive-descent parser for the JStar concrete syntax.

Grammar (paper-faithful subset; semicolons optional where unambiguous)::

    program   := decl*
    decl      := table | order | put | rule
    table     := "table" NAME "(" <field text> ")" ["orderby" "(" obentry ("," obentry)* ")"] ";"?
    obentry   := NAME | "seq" NAME | "par" NAME
    order     := "order" NAME ("<" NAME)+ ";"?
    put       := "put" new ";"?
    rule      := ["unsafe"] "foreach" "(" NAME NAME ")" block
    block     := "{" stmt* "}"
    stmt      := "val" NAME "=" expr ";"?
               | "put" expr ";"?
               | NAME "+=" expr ";"?
               | "if" "(" expr ")" block ["else" block]
               | "for" "(" NAME ":" get ")" block
               | "println" "(" expr ")" ";"?
               | expr ";"?
    expr      := or ;  or := and ("||" and)* ;  and := eq ("&&" eq)*
    eq        := rel (("=="|"!=") rel)* ;  rel := add (("<"|"<="|">"|">=") add)?
    add       := mul (("+"|"-") mul)* ;  mul := unary (("*"|"/"|"%") unary)*
    unary     := ("-"|"!") unary | postfix
    postfix   := primary ("." NAME)*
    primary   := INT | FLOAT | STRING | "true" | "false" | "null" | NAME
               | "(" expr ")" | new | get
    new       := "new" NAME "(" [expr ("," expr)*] ")" ["[" NAME "=" expr (";" NAME "=" expr)* "]"]
    get       := "get" ["uniq" "?" | "min"] NAME "(" [qarg ("," qarg)*] ")"
    qarg      := "[" NAME relop expr "]"        # bracketed field predicate
               | expr                           # positional constraint

The field list inside ``table (...)`` is captured verbatim (balancing
parentheses) and handed to :func:`repro.core.schema.parse_fields`,
which already speaks the paper's ``int frame -> int x, int y`` notation.
"""

from __future__ import annotations

from repro.lang import ast as A
from repro.lang.lexer import LangSyntaxError, Token, tokenize

__all__ = ["parse_program", "parse_expression"]

_REL_OPS = ("<", "<=", ">", ">=", "==", "!=")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        t = self.cur
        if t.kind != "eof":
            self.pos += 1
        return t

    def at(self, kind: str, text: str | None = None) -> bool:
        t = self.cur
        return t.kind == kind and (text is None or t.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.at(kind, text):
            want = text or kind
            raise LangSyntaxError(
                f"expected {want!r}, found {self.cur.text or self.cur.kind!r}",
                self.cur.line,
                self.cur.col,
            )
        return self.advance()

    def skip_semi(self) -> None:
        while self.accept("op", ";"):
            pass

    # -- top level ----------------------------------------------------------

    def program(self) -> A.ProgramAst:
        tables: list[A.TableDecl] = []
        orders: list[A.OrderDecl] = []
        puts: list[A.TopPut] = []
        rules: list[A.RuleDecl] = []
        self.skip_semi()
        while not self.at("eof"):
            if self.at("keyword", "table"):
                tables.append(self.table_decl())
            elif self.at("keyword", "order"):
                orders.append(self.order_decl())
            elif self.at("keyword", "put"):
                puts.append(self.top_put())
            elif self.at("keyword", "foreach") or self.at("keyword", "unsafe"):
                rules.append(self.rule_decl())
            else:
                raise LangSyntaxError(
                    f"expected a declaration, found {self.cur.text!r}",
                    self.cur.line,
                    self.cur.col,
                )
            self.skip_semi()
        return A.ProgramAst(tuple(tables), tuple(orders), tuple(puts), tuple(rules))

    def table_decl(self) -> A.TableDecl:
        kw = self.expect("keyword", "table")
        name = self.expect("name").text
        self.expect("op", "(")
        fields_text = self._capture_balanced()
        orderby: list[str] = []
        if self.accept("keyword", "orderby"):
            self.expect("op", "(")
            while not self.at("op", ")"):
                if self.accept("keyword", "seq"):
                    orderby.append(f"seq {self.expect('name').text}")
                elif self.accept("keyword", "par"):
                    orderby.append(f"par {self.expect('name').text}")
                else:
                    orderby.append(self.expect("name").text)
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        return A.TableDecl(name, fields_text, tuple(orderby), kw.line)

    def _capture_balanced(self) -> str:
        """Capture raw token text until the matching close paren."""
        depth = 1
        parts: list[str] = []
        while True:
            t = self.cur
            if t.kind == "eof":
                raise LangSyntaxError("unterminated '('", t.line, t.col)
            if t.kind == "op" and t.text == "(":
                depth += 1
            elif t.kind == "op" and t.text == ")":
                depth -= 1
                if depth == 0:
                    self.advance()
                    return " ".join(parts)
            self.advance()
            if t.kind == "string":
                parts.append(f'"{t.text}"')
            else:
                parts.append(t.text)

    def order_decl(self) -> A.OrderDecl:
        kw = self.expect("keyword", "order")
        names = [self.expect("name").text]
        while self.accept("op", "<"):
            names.append(self.expect("name").text)
        if len(names) < 2:
            raise LangSyntaxError("order needs at least two names", kw.line, kw.col)
        return A.OrderDecl(tuple(names), kw.line)

    def top_put(self) -> A.TopPut:
        kw = self.expect("keyword", "put")
        expr = self.expression()
        if not isinstance(expr, A.NewTuple):
            raise LangSyntaxError("top-level put needs a 'new Table(...)'", kw.line, kw.col)
        return A.TopPut(expr, kw.line)

    def rule_decl(self) -> A.RuleDecl:
        unsafe = self.accept("keyword", "unsafe") is not None
        kw = self.expect("keyword", "foreach")
        self.expect("op", "(")
        table = self.expect("name").text
        var = self.expect("name").text
        self.expect("op", ")")
        body = self.block()
        return A.RuleDecl(table, var, body, unsafe=unsafe, line=kw.line)

    # -- statements ----------------------------------------------------------

    def block(self) -> tuple[A.Stmt, ...]:
        self.expect("op", "{")
        stmts: list[A.Stmt] = []
        self.skip_semi()
        while not self.at("op", "}"):
            stmts.append(self.statement())
            self.skip_semi()
        self.expect("op", "}")
        return tuple(stmts)

    def statement(self) -> A.Stmt:
        t = self.cur
        if self.accept("keyword", "val"):
            name = self.expect("name").text
            self.expect("op", "=")
            return A.ValDecl(name, self.expression(), t.line)
        if self.accept("keyword", "put"):
            return A.PutStmt(self.expression(), t.line)
        if self.accept("keyword", "if"):
            self.expect("op", "(")
            cond = self.expression()
            self.expect("op", ")")
            then = self.block()
            orelse: tuple[A.Stmt, ...] = ()
            if self.accept("keyword", "else"):
                orelse = self.block()
            return A.IfStmt(cond, then, orelse, t.line)
        if self.accept("keyword", "for"):
            self.expect("op", "(")
            var = self.expect("name").text
            self.expect("op", ":")
            query = self.expression()
            if not isinstance(query, A.GetQuery) or query.mode != "all":
                raise LangSyntaxError("for loops iterate a plain 'get T(...)'", t.line, t.col)
            self.expect("op", ")")
            return A.ForStmt(var, query, self.block(), t.line)
        if self.accept("keyword", "println"):
            self.expect("op", "(")
            value = self.expression()
            self.expect("op", ")")
            return A.PrintlnStmt(value, t.line)
        if t.kind == "name" and self.tokens[self.pos + 1].kind == "op" and self.tokens[self.pos + 1].text == "+=":
            name = self.advance().text
            self.advance()  # +=
            return A.AddAssign(name, self.expression(), t.line)
        return A.ExprStmt(self.expression(), t.line)

    # -- expressions -----------------------------------------------------------

    def expression(self) -> A.Expr:
        return self._or()

    def _binary_chain(self, sub, ops) -> A.Expr:
        left = sub()
        while self.cur.kind == "op" and self.cur.text in ops:
            op = self.advance().text
            right = sub()
            left = A.Binary(op, left, right, getattr(left, "line", 0))
        return left

    def _or(self) -> A.Expr:
        return self._binary_chain(self._and, ("||",))

    def _and(self) -> A.Expr:
        return self._binary_chain(self._eq, ("&&",))

    def _eq(self) -> A.Expr:
        return self._binary_chain(self._rel, ("==", "!="))

    def _rel(self) -> A.Expr:
        left = self._add()
        if self.cur.kind == "op" and self.cur.text in ("<", "<=", ">", ">="):
            op = self.advance().text
            right = self._add()
            return A.Binary(op, left, right, getattr(left, "line", 0))
        return left

    def _add(self) -> A.Expr:
        return self._binary_chain(self._mul, ("+", "-"))

    def _mul(self) -> A.Expr:
        return self._binary_chain(self._unary, ("*", "/", "%"))

    def _unary(self) -> A.Expr:
        t = self.cur
        if t.kind == "op" and t.text in ("-", "!"):
            self.advance()
            return A.Unary(t.text, self._unary(), t.line)
        return self._postfix()

    def _postfix(self) -> A.Expr:
        expr = self._primary()
        while self.at("op", "."):
            self.advance()
            field = self.expect("name").text
            expr = A.FieldAccess(expr, field, getattr(expr, "line", 0))
        return expr

    def _primary(self) -> A.Expr:
        t = self.cur
        if t.kind == "int":
            self.advance()
            return A.Literal(int(t.text), t.line)
        if t.kind == "float":
            self.advance()
            return A.Literal(float(t.text), t.line)
        if t.kind == "string":
            self.advance()
            return A.Literal(t.text, t.line)
        if self.accept("keyword", "true"):
            return A.Literal(True, t.line)
        if self.accept("keyword", "false"):
            return A.Literal(False, t.line)
        if self.accept("keyword", "null"):
            return A.Literal(None, t.line)
        if self.accept("op", "("):
            e = self.expression()
            self.expect("op", ")")
            return e
        if self.at("keyword", "new"):
            return self._new()
        if self.at("keyword", "get"):
            return self._get()
        if t.kind == "name":
            self.advance()
            # constructor-call sugar: `PvWattsRequest("f.csv")` with no
            # `new`, as Fig 4's top-level put writes it
            if t.text[0].isupper() and self.at("op", "("):
                return self._constructor_tail(t.text, t.line)
            return A.Name(t.text, t.line)
        raise LangSyntaxError(f"unexpected {t.text or t.kind!r}", t.line, t.col)

    def _constructor_tail(self, name: str, line: int) -> A.NewTuple:
        self.expect("op", "(")
        args: list[A.Expr] = []
        while not self.at("op", ")"):
            args.append(self.expression())
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        named: list[tuple[str, A.Expr]] = []
        if self.accept("op", "["):
            while not self.at("op", "]"):
                f = self.expect("name").text
                self.expect("op", "=")
                named.append((f, self.expression()))
                if not self.accept("op", ";"):
                    break
            self.expect("op", "]")
        return A.NewTuple(name, tuple(args), tuple(named), line)

    def _new(self) -> A.NewTuple:
        kw = self.expect("keyword", "new")
        name = self.expect("name").text
        return self._constructor_tail(name, kw.line)

    def _get(self) -> A.GetQuery:
        kw = self.expect("keyword", "get")
        mode = "all"
        if self.accept("keyword", "uniq"):
            self.expect("op", "?")
            mode = "uniq"
        elif self.accept("keyword", "min"):
            mode = "min"
        name = self.expect("name").text
        self.expect("op", "(")
        args: list[A.Expr] = []
        preds: list[tuple[str, str, A.Expr]] = []
        while not self.at("op", ")"):
            if self.accept("op", "["):
                field = self.expect("name").text
                op_tok = self.cur
                if op_tok.kind == "op" and op_tok.text in _REL_OPS:
                    self.advance()
                    op = op_tok.text
                elif op_tok.kind == "op" and op_tok.text == "=":
                    self.advance()
                    op = "=="
                else:
                    raise LangSyntaxError(
                        "expected a comparison in [field op expr]",
                        op_tok.line,
                        op_tok.col,
                    )
                preds.append((field, op, self.expression()))
                self.expect("op", "]")
            else:
                args.append(self.expression())
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        return A.GetQuery(name, mode, tuple(args), tuple(preds), kw.line)


def parse_program(source: str) -> A.ProgramAst:
    """Parse a textual JStar program into its AST."""
    return _Parser(tokenize(source)).program()


def parse_expression(source: str) -> A.Expr:
    """Parse a single expression (used by tests and the REPL-ish demos)."""
    p = _Parser(tokenize(source))
    e = p.expression()
    p.expect("eof")
    return e
