"""AST for the JStar concrete syntax (see :mod:`repro.lang.parser`).

Nodes carry their source line for diagnostics.  Expression nodes are
plain data; evaluation lives in :mod:`repro.lang.compile`, symbolic
translation (for the causality prover) in :mod:`repro.lang.meta`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

__all__ = [
    "Expr",
    "Literal",
    "Name",
    "FieldAccess",
    "Unary",
    "Binary",
    "NewTuple",
    "GetQuery",
    "Stmt",
    "ValDecl",
    "PutStmt",
    "AddAssign",
    "IfStmt",
    "ForStmt",
    "PrintlnStmt",
    "ExprStmt",
    "TableDecl",
    "OrderDecl",
    "TopPut",
    "RuleDecl",
    "ProgramAst",
]


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Literal:
    value: int | float | str | bool | None
    line: int = 0


@dataclass(frozen=True, slots=True)
class Name:
    name: str
    line: int = 0


@dataclass(frozen=True, slots=True)
class FieldAccess:
    obj: "Expr"
    field: str
    line: int = 0


@dataclass(frozen=True, slots=True)
class Unary:
    op: str  # "-" | "!"
    operand: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class Binary:
    op: str  # + - * / % < <= > >= == != && ||
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class NewTuple:
    """``new Ship(0, 10, ...)`` or ``new Ship() [frame=0; x=10]`` or
    ``new Statistics()`` (a builtin reducer box)."""

    table: str
    args: tuple["Expr", ...]
    named: tuple[tuple[str, "Expr"], ...] = ()
    line: int = 0


@dataclass(frozen=True, slots=True)
class GetQuery:
    """``get [uniq? | min] Name(args..., [pred]*)``.

    ``args`` constrain leading fields positionally; each ``pred`` is a
    bracketed constraint ``[field op expr]`` on a named field.
    """

    table: str
    mode: str  # "all" | "uniq" | "min"
    args: tuple["Expr", ...]
    preds: tuple[tuple[str, str, "Expr"], ...] = ()  # (field, op, expr)
    line: int = 0


Expr = Union[Literal, Name, FieldAccess, Unary, Binary, NewTuple, GetQuery]


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ValDecl:
    name: str
    value: Expr
    line: int = 0


@dataclass(frozen=True, slots=True)
class PutStmt:
    value: Expr  # must evaluate to a tuple
    line: int = 0


@dataclass(frozen=True, slots=True)
class AddAssign:
    """``stats += expr`` — feeding a reducer box (Fig 4)."""

    name: str
    value: Expr
    line: int = 0


@dataclass(frozen=True, slots=True)
class IfStmt:
    cond: Expr
    then: tuple["Stmt", ...]
    orelse: tuple["Stmt", ...] = ()
    line: int = 0


@dataclass(frozen=True, slots=True)
class ForStmt:
    """``for (x : get T(...)) { ... }``"""

    var: str
    query: GetQuery
    body: tuple["Stmt", ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class PrintlnStmt:
    value: Expr
    line: int = 0


@dataclass(frozen=True, slots=True)
class ExprStmt:
    value: Expr
    line: int = 0


Stmt = Union[ValDecl, PutStmt, AddAssign, IfStmt, ForStmt, PrintlnStmt, ExprStmt]


# --------------------------------------------------------------------------
# top-level declarations
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TableDecl:
    name: str
    fields_text: str          # handed to repro.core.schema.parse_fields
    orderby: tuple[str, ...]  # entries in string shorthand ("Int", "seq frame")
    line: int = 0


@dataclass(frozen=True, slots=True)
class OrderDecl:
    names: tuple[str, ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class TopPut:
    value: NewTuple
    line: int = 0


@dataclass(frozen=True, slots=True)
class RuleDecl:
    trigger_table: str
    trigger_var: str
    body: tuple[Stmt, ...]
    unsafe: bool = False
    name: str = ""
    line: int = 0


@dataclass(frozen=True, slots=True)
class ProgramAst:
    tables: tuple[TableDecl, ...] = ()
    orders: tuple[OrderDecl, ...] = ()
    puts: tuple[TopPut, ...] = ()
    rules: tuple[RuleDecl, ...] = ()
    extras: tuple = field(default=())
