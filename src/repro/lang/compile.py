"""Compile a parsed JStar program into an executable
:class:`repro.core.Program`.

The paper's compiler generates Java; ours targets the runtime directly:
each textual rule becomes a :class:`~repro.core.rules.Rule` whose body
interprets the statement AST against the rule context.  Expressions
evaluate over an environment of local bindings (the trigger variable,
``val`` bindings, loop variables); queries lower onto ``ctx.get`` /
``ctx.get_uniq`` / ``ctx.get_min`` with bracketed predicates becoming
range or equality constraints (so the dynamic causality checker and the
data-structure advisor both see them — exactly the visibility the
paper's compiler has).

``new Statistics()`` builds a :class:`ReducerBox` — the mutable local
accumulator of Fig 4's ``stats += record.power`` idiom; boxes expose
the accumulator's fields (``.mean``, ``.count``, ...) as attributes.

Causality metadata is extracted where the rule is simple enough
(:mod:`repro.lang.meta`), so textual programs get static checking too.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core import Program
from repro.core.errors import JStarError
from repro.core.reducers import Reducer, Statistics
from repro.core.rules import RuleContext
from repro.core.tuples import TableHandle
from repro.lang import ast as A
from repro.lang.lexer import LangSyntaxError
from repro.lang.parser import parse_program

__all__ = ["CompileError", "ReducerBox", "compile_program", "compile_source"]

#: reducer constructors available to ``new Name()`` besides tables
BUILTIN_REDUCERS: dict[str, Callable[[], Reducer]] = {
    "Statistics": Statistics,
}


class CompileError(JStarError):
    """Semantic error while compiling a textual program."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class ReducerBox:
    """Mutable local accumulator for ``val stats = new Statistics()``.

    ``+=`` steps it; attribute access reads the accumulator (so
    ``stats.mean`` works like the paper's).  Lives only inside one rule
    firing — no shared mutable state escapes (§1.2).
    """

    __slots__ = ("reducer", "acc")

    def __init__(self, reducer: Reducer):
        self.reducer = reducer
        self.acc = reducer.zero()

    def step(self, value: Any) -> None:
        self.acc = self.reducer.step(self.acc, value)

    def read(self, field: str) -> Any:
        try:
            return getattr(self.acc, field)
        except AttributeError:
            raise CompileError(f"reducer result has no field {field!r}") from None

    def __repr__(self) -> str:
        return f"ReducerBox({self.acc!r})"


class _Evaluator:
    """Statement/expression interpreter for one rule body."""

    def __init__(self, tables: Mapping[str, TableHandle]):
        self.tables = tables

    # -- expressions --------------------------------------------------------

    def eval(self, expr: A.Expr, ctx: RuleContext, env: dict[str, Any]) -> Any:
        if isinstance(expr, A.Literal):
            return expr.value
        if isinstance(expr, A.Name):
            if expr.name in env:
                return env[expr.name]
            raise CompileError(f"unknown variable {expr.name!r}", expr.line)
        if isinstance(expr, A.FieldAccess):
            obj = self.eval(expr.obj, ctx, env)
            if isinstance(obj, ReducerBox):
                return obj.read(expr.field)
            if obj is None:
                raise CompileError(
                    f"field access .{expr.field} on null", expr.line
                )
            try:
                return obj.field(expr.field)  # JTuple
            except AttributeError:
                raise CompileError(
                    f".{expr.field} on a non-tuple value {obj!r}", expr.line
                ) from None
        if isinstance(expr, A.Unary):
            v = self.eval(expr.operand, ctx, env)
            return (not v) if expr.op == "!" else (-v)
        if isinstance(expr, A.Binary):
            return self._binary(expr, ctx, env)
        if isinstance(expr, A.NewTuple):
            return self._new(expr, ctx, env)
        if isinstance(expr, A.GetQuery):
            return self._query(expr, ctx, env)
        raise CompileError(f"cannot evaluate {type(expr).__name__}")

    def _binary(self, expr: A.Binary, ctx: RuleContext, env: dict[str, Any]) -> Any:
        op = expr.op
        if op == "&&":
            return bool(self.eval(expr.left, ctx, env)) and bool(
                self.eval(expr.right, ctx, env)
            )
        if op == "||":
            return bool(self.eval(expr.left, ctx, env)) or bool(
                self.eval(expr.right, ctx, env)
            )
        left = self.eval(expr.left, ctx, env)
        right = self.eval(expr.right, ctx, env)
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return f"{left}{right}"  # Java-style string concatenation
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            # Java semantics: int/int divides truncating toward zero
            if isinstance(left, int) and isinstance(right, int):
                q = abs(left) // abs(right)
                return q if (left >= 0) == (right >= 0) else -q
            return left / right
        if op == "%":
            return left % right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise CompileError(f"unknown operator {op!r}", expr.line)

    def _new(self, expr: A.NewTuple, ctx: RuleContext, env: dict[str, Any]) -> Any:
        if expr.table in BUILTIN_REDUCERS:
            if expr.args or expr.named:
                raise CompileError(
                    f"new {expr.table}() takes no arguments", expr.line
                )
            return ReducerBox(BUILTIN_REDUCERS[expr.table]())
        handle = self.tables.get(expr.table)
        if handle is None:
            raise CompileError(f"unknown table {expr.table!r}", expr.line)
        args = [self.eval(a, ctx, env) for a in expr.args]
        named = {f: self.eval(v, ctx, env) for f, v in expr.named}
        return handle.new(*args, **named)

    def _query(self, expr: A.GetQuery, ctx: RuleContext, env: dict[str, Any]) -> Any:
        handle = self.tables.get(expr.table)
        if handle is None:
            raise CompileError(f"unknown queried table {expr.table!r}", expr.line)
        args = [self.eval(a, ctx, env) for a in expr.args]
        eq: dict[str, Any] = {}
        ranges: dict[str, dict[str, Any]] = {}
        for field, op, value_expr in expr.preds:
            value = self.eval(value_expr, ctx, env)
            if op == "==":
                eq[field] = value
            else:
                spec = ranges.setdefault(field, {})
                spec[{"<": "lt", "<=": "le", ">": "gt", ">=": "ge"}[op]] = value
        kwargs: dict[str, Any] = dict(eq)
        if ranges:
            kwargs["ranges"] = ranges
        if expr.mode == "uniq":
            return ctx.get_uniq(handle, *args, **kwargs)
        if expr.mode == "min":
            by = _min_field(handle)
            return ctx.get_min(handle, *args, by=by, **kwargs)
        return ctx.get(handle, *args, **kwargs)

    # -- statements -----------------------------------------------------------

    def exec_block(
        self, stmts: tuple[A.Stmt, ...], ctx: RuleContext, env: dict[str, Any]
    ) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, ctx, env)

    def exec_stmt(self, stmt: A.Stmt, ctx: RuleContext, env: dict[str, Any]) -> None:
        if isinstance(stmt, A.ValDecl):
            env[stmt.name] = self.eval(stmt.value, ctx, env)
            return
        if isinstance(stmt, A.PutStmt):
            ctx.put(self.eval(stmt.value, ctx, env))
            return
        if isinstance(stmt, A.AddAssign):
            box = env.get(stmt.name)
            if not isinstance(box, ReducerBox):
                raise CompileError(
                    f"'{stmt.name} +=' needs a reducer (val {stmt.name} = new Statistics())",
                    stmt.line,
                )
            box.step(self.eval(stmt.value, ctx, env))
            ctx.charge(0.3, "reduce_op")
            return
        if isinstance(stmt, A.IfStmt):
            if self.eval(stmt.cond, ctx, env):
                self.exec_block(stmt.then, ctx, env)
            else:
                self.exec_block(stmt.orelse, ctx, env)
            return
        if isinstance(stmt, A.ForStmt):
            rows = self._query(stmt.query, ctx, env)
            for row in rows:
                env[stmt.var] = row
                self.exec_block(stmt.body, ctx, env)
            env.pop(stmt.var, None)
            return
        if isinstance(stmt, A.PrintlnStmt):
            ctx.println(self.eval(stmt.value, ctx, env))
            return
        if isinstance(stmt, A.ExprStmt):
            self.eval(stmt.value, ctx, env)
            return
        raise CompileError(f"cannot execute {type(stmt).__name__}")


def _min_field(handle: TableHandle) -> str:
    """``get min T(...)`` minimises T's first ``seq`` orderby field."""
    from repro.core.ordering import Seq

    for entry in handle.schema.orderby:
        if isinstance(entry, Seq):
            return entry.field
    raise CompileError(
        f"get min {handle.name}: table has no seq orderby field to minimise"
    )


def _generate_read_loop(
    program: Program,
    request: TableHandle,
    data_table: TableHandle,
    files: Mapping[str, bytes],
) -> None:
    """The paper's automatically generated CSV read-loop (§6.2): a
    ``FooRequest(String filename)`` tuple triggers an unsafe system rule
    that parses the file's rows straight into ``Foo``, using the
    byte-oriented reader; int fields parse, string fields decode."""
    from repro.csvio.reader import read_records_bytes

    schema = data_table.schema
    int_positions = tuple(
        i for i, f in enumerate(schema.fields) if f.type in ("int", "bool")
    )
    float_positions = tuple(
        i for i, f in enumerate(schema.fields) if f.type == "float"
    )
    str_positions = tuple(
        i for i, f in enumerate(schema.fields) if f.type == "str"
    )
    n_fields = len(schema.fields)

    def read_loop(ctx, req):
        ctx.io_allowed()
        try:
            data = files[req.filename]
        except KeyError:
            raise CompileError(
                f"no file {req.filename!r} supplied to compile_source(files=...)"
            ) from None

        def on_record(rec: tuple) -> None:
            vals = list(rec)
            for i in float_positions:
                vals[i] = float(vals[i])
            for i in str_positions:
                vals[i] = vals[i].decode("ascii")
            ctx.put(data_table.new(*vals))

        n = read_records_bytes(data, int_positions, n_fields, on_record=on_record)
        ctx.charge(0.6 * n, "csv_parse")
        ctx.charge(0.2 * n, "io_record")

    program.rule(
        request, name=f"read_loop_{data_table.name}", unsafe=True
    )(read_loop)


def compile_program(
    tree: A.ProgramAst,
    name: str = "jstar-program",
    files: Mapping[str, bytes] | None = None,
) -> Program:
    """Lower a parsed AST into an executable Program.

    ``files`` is the in-memory file registry for auto-generated read
    loops: any table ``FooRequest(String filename)`` whose companion
    table ``Foo`` exists gets the paper's generated reader rule (§6.2).
    """
    program = Program(name)
    tables: dict[str, TableHandle] = {}
    for t in tree.tables:
        try:
            tables[t.name] = program.table(t.name, t.fields_text, orderby=t.orderby)
        except JStarError as exc:
            raise CompileError(f"table {t.name}: {exc}", t.line) from exc
    for o in tree.orders:
        program.order(*o.names)

    # the paper's auto-generated read-loop rules
    for tname, handle in tables.items():
        if not tname.endswith("Request"):
            continue
        base = tname[: -len("Request")]
        data_table = tables.get(base)
        if data_table is None:
            continue
        schema = handle.schema
        if len(schema.fields) == 1 and schema.fields[0].type == "str":
            _generate_read_loop(program, handle, data_table, files or {})

    evaluator = _Evaluator(tables)

    for i, rule in enumerate(tree.rules):
        handle = tables.get(rule.trigger_table)
        if handle is None:
            raise CompileError(
                f"foreach over unknown table {rule.trigger_table!r}", rule.line
            )
        rule_name = rule.name or f"foreach_{rule.trigger_table}_{i}"

        def body(ctx, tup, _rule=rule):
            env = {_rule.trigger_var: tup}
            evaluator.exec_block(_rule.body, ctx, env)

        from repro.lang.meta import extract_meta

        meta = extract_meta(rule, tables)
        program.rule(
            handle,
            name=rule_name,
            unsafe=rule.unsafe,
            meta=meta,
            assume_stratified=meta is None,
        )(body)

    # initial puts evaluate in an empty environment (literals only in
    # practice — the paper's `put new Estimate(0, 0)`)
    init_ctx = _InitContext()
    for p in tree.puts:
        value = evaluator.eval(p.value, init_ctx, {})  # type: ignore[arg-type]
        program.put(value)
    return program


class _InitContext:
    """Minimal context for evaluating top-level put expressions (no
    queries or effects allowed outside rules)."""

    def put(self, *_a):  # pragma: no cover - guarded by parser shape
        raise CompileError("nested put in a top-level put expression")

    def get(self, *_a, **_k):
        raise CompileError("queries are not allowed in top-level puts")

    get_uniq = get_min = get

    def println(self, *_a):
        raise CompileError("println is not allowed in top-level puts")

    def charge(self, *_a, **_k):
        pass


def compile_source(
    source: str,
    name: str = "jstar-program",
    files: Mapping[str, bytes] | None = None,
) -> Program:
    """Parse + compile a textual JStar program in one call.  ``files``
    feeds the auto-generated read loops (see :func:`compile_program`)."""
    return compile_program(parse_program(source), name, files=files)
