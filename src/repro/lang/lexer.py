"""Tokenizer for the JStar concrete syntax.

The paper writes programs in an XText-based syntax (Figs 4 & 5)::

    table Ship(int frame -> int x, int y, int dx, int dy) orderby (Int, seq frame)
    order Req < PvWatts < SumMonth;
    put new Estimate(0, 0);
    foreach (Estimate dist) {
      if (get uniq? Done(dist.vertex, [distance < dist.distance]) == null) { ... }
    }

This lexer covers that surface: identifiers, integer/float/string
literals, the operator set, ``//`` line and ``/* */`` block comments,
with line/column tracking for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import JStarError

__all__ = ["LangSyntaxError", "Token", "tokenize", "KEYWORDS"]


class LangSyntaxError(JStarError):
    """Lexical or syntactic error in a textual JStar program."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"line {line}:{col}: {message}")
        self.line = line
        self.col = col


KEYWORDS = frozenset(
    {
        "table",
        "orderby",
        "order",
        "foreach",
        "put",
        "get",
        "new",
        "if",
        "else",
        "for",
        "val",
        "println",
        "seq",
        "par",
        "uniq",
        "min",
        "null",
        "true",
        "false",
        "unsafe",
    }
)

# multi-character operators first (longest match wins)
_OPERATORS = (
    "->",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "<",
    ">",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    ",",
    ";",
    ":",
    ".",
    "?",
    "!",
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # "name" | "keyword" | "int" | "float" | "string" | "op" | "eof"
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line, col = 1, 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = source[i]
        if c in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LangSyntaxError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if c == '"':
            start_line, start_col = line, col
            advance(1)
            buf = []
            while i < n and source[i] != '"':
                if source[i] == "\n":
                    raise LangSyntaxError("unterminated string", start_line, start_col)
                if source[i] == "\\" and i + 1 < n:
                    esc = source[i + 1]
                    buf.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    advance(2)
                else:
                    buf.append(source[i])
                    advance(1)
            if i >= n:
                raise LangSyntaxError("unterminated string", start_line, start_col)
            advance(1)
            tokens.append(Token("string", "".join(buf), start_line, start_col))
            continue
        if c.isdigit():
            start_line, start_col = line, col
            j = i
            while j < n and source[j].isdigit():
                j += 1
            is_float = False
            if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("float" if is_float else "int", text, start_line, start_col))
            continue
        if c.isalpha() or c == "_":
            start_line, start_col = line, col
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = "keyword" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                advance(len(op))
                break
        else:
            raise LangSyntaxError(f"unexpected character {c!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
