"""Command-line runner for textual JStar programs.

Usage::

    python -m repro.lang program.jstar [options]

Options mirror the paper's compiler flags:

    --check              run the static causality prover and exit
    --prover NAME        fourier-motzkin | simplex | cross-check
    --sequential         the paper's -sequential flag (default)
    --threads N          fork/join pool size (parallel mode)
    --no-delta T[,T...]  -noDelta tables (§5.1)
    --no-gamma T[,T...]  -noGamma tables (§5.1)
    --report             print the run report (stats + virtual machine)
    --graph              print the program's dependency graph (ASCII)

Exit status: 0 on success; 1 on syntax/compile errors; 2 when --check
finds unproved obligations (the paper's Stratification error).
"""

from __future__ import annotations

import argparse
import sys
import warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lang", description="Run a textual JStar program."
    )
    parser.add_argument("source", help="path to the .jstar source file")
    parser.add_argument("--check", action="store_true", help="static causality check only")
    parser.add_argument("--prover", default=None, help="decision procedure to use")
    parser.add_argument("--sequential", action="store_true", help="sequential strategy")
    parser.add_argument("--threads", type=int, default=None, help="fork/join pool size")
    parser.add_argument("--no-delta", default="", help="comma-separated -noDelta tables")
    parser.add_argument("--no-gamma", default="", help="comma-separated -noGamma tables")
    parser.add_argument("--report", action="store_true", help="print the run report")
    parser.add_argument("--graph", action="store_true", help="print the dependency graph")
    args = parser.parse_args(argv)

    from repro.core import ExecOptions
    from repro.lang import CompileError, LangSyntaxError, compile_source

    try:
        with open(args.source, encoding="utf8") as fh:
            source = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    try:
        program = compile_source(source, name=args.source)
    except (LangSyntaxError, CompileError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.graph:
        from repro.stats import program_graph
        from repro.viz import graph_ascii

        print(graph_ascii(program_graph(program)))
        if not (args.check or args.report):
            return 0

    if args.check:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = program.check_causality()
            if args.prover:
                from repro.solver import check_program

                report = check_program(program, prover=args.prover)
        print(report.summary())
        return 0 if report.all_proved else 2

    opts = ExecOptions(
        strategy="sequential" if args.sequential or args.threads is None else "forkjoin",
        threads=args.threads or 4,
        no_delta=frozenset(t for t in args.no_delta.split(",") if t),
        no_gamma=frozenset(t for t in args.no_gamma.split(",") if t),
    )
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = program.run(opts)
    except Exception as exc:  # runtime errors surface cleanly
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for line in result.output:
        print(line)
    if args.report:
        from repro.stats import run_report

        print(file=sys.stderr)
        print(run_report(result), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
