"""Textual front-end for the JStar concrete syntax (Figs 4 & 5).

Parse and run programs written the way the paper writes them::

    from repro.lang import compile_source

    src = '''
        table Ship(int frame -> int x, int y, int dx, int dy)
            orderby (Int, seq frame)
        put new Ship(0, 10, 10, 150, 0);
        foreach (Ship s) {
          if (s.x < 400) { put new Ship(s.frame+1, s.x+150, s.y, s.dx, s.dy) }
        }
    '''
    result = compile_source(src).run()

Causality metadata is extracted from the AST automatically
(:mod:`repro.lang.meta`), so ``program.check_causality()`` works on
textual rules exactly as the paper's compiler-to-SMT pipeline does.
"""

from repro.lang.compile import CompileError, ReducerBox, compile_program, compile_source
from repro.lang.lexer import LangSyntaxError, tokenize
from repro.lang.parser import parse_expression, parse_program

__all__ = [
    "compile_source",
    "compile_program",
    "parse_program",
    "parse_expression",
    "tokenize",
    "CompileError",
    "ReducerBox",
    "LangSyntaxError",
]
