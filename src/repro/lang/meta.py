"""Causality-metadata extraction from textual rules.

The paper's compiler sends each rule's puts and queries to the SMT
solvers automatically (§4) — it can, because it sees the source.  Our
Python-DSL rules are opaque closures (authors supply
:class:`~repro.solver.obligations.RuleMeta` by hand), but *textual*
rules are ASTs, so this module recovers the metadata mechanically:

* every ``put`` becomes a symbolic put under its ``if`` path
  conditions (linear conditions kept, opaque ones soundly dropped —
  weaker hypotheses can only make obligations harder to prove);
* every ``get`` — including those inside conditions and loop headers —
  becomes a symbolic query of the right causality kind (plain/uniq/min
  → positive/negative/aggregate) with its positional bindings and
  bracket predicates translated;
* ``val`` bindings of linear expressions are inlined; loop variables
  get fresh field variables (constrainable through table invariants).

If anything prevents registering a *query* (never the case for the
grammar as parsed, but kept as a guard), extraction returns ``None``
and the compiled rule is marked ``assume_stratified`` — missing an
obligation would be unsound, missing hypotheses is not.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.query import QueryKind
from repro.core.tuples import TableHandle
from repro.lang import ast as A
from repro.solver.obligations import RuleMeta, SymQuery
from repro.solver.terms import Constraint, Term, var

__all__ = ["extract_meta"]

_NUMERIC = ("int", "float", "bool")


class _Opaque(Exception):
    """An expression with no linear translation (not an error)."""


class _Extractor:
    def __init__(self, rule: A.RuleDecl, tables: Mapping[str, TableHandle]):
        self.rule = rule
        self.tables = tables
        self.meta = RuleMeta(tables[rule.trigger_table])
        # variable environments: tuple vars -> {field: Term}; val vars -> Term
        self.tuple_vars: dict[str, dict[str, Term]] = {
            rule.trigger_var: self.meta.trigger
        }
        self.val_vars: dict[str, Term] = {}
        #: active loop-variable bindings: (schema, field vars)
        self.bindings: list = []
        self._loop_counter = 0

    # -- linear expression translation ------------------------------------

    def term(self, expr: A.Expr) -> Term:
        if isinstance(expr, A.Literal):
            if isinstance(expr.value, bool) or not isinstance(expr.value, (int, float)):
                raise _Opaque()
            return Term({}, expr.value)
        if isinstance(expr, A.Name):
            t = self.val_vars.get(expr.name)
            if t is None:
                raise _Opaque()
            return t
        if isinstance(expr, A.FieldAccess):
            if isinstance(expr.obj, A.Name):
                fields = self.tuple_vars.get(expr.obj.name)
                if fields is not None and expr.field in fields:
                    return fields[expr.field]
            raise _Opaque()
        if isinstance(expr, A.Unary) and expr.op == "-":
            return -self.term(expr.operand)
        if isinstance(expr, A.Binary):
            if expr.op == "+":
                return self.term(expr.left) + self.term(expr.right)
            if expr.op == "-":
                return self.term(expr.left) - self.term(expr.right)
            if expr.op == "*":
                left, right = expr.left, expr.right
                if isinstance(left, A.Literal) and isinstance(left.value, (int, float)):
                    return self.term(right) * left.value
                if isinstance(right, A.Literal) and isinstance(right.value, (int, float)):
                    return self.term(left) * right.value
        raise _Opaque()

    def condition(self, expr: A.Expr) -> list[Constraint]:
        """Linear constraints implied by a condition (opaque parts are
        dropped — sound weakening).  Also registers any queries that
        appear inside the condition."""
        self.register_queries(expr, [])
        return self._condition_atoms(expr)

    def _condition_atoms(self, expr: A.Expr) -> list[Constraint]:
        if isinstance(expr, A.Binary):
            if expr.op == "&&":
                return self._condition_atoms(expr.left) + self._condition_atoms(expr.right)
            if expr.op in ("<", "<=", ">", ">=", "=="):
                try:
                    left = self.term(expr.left)
                    right = self.term(expr.right)
                except _Opaque:
                    return []
                if expr.op == "<":
                    return [left < right]
                if expr.op == "<=":
                    return [left <= right]
                if expr.op == ">":
                    return [left > right]
                if expr.op == ">=":
                    return [left >= right]
                return [left.eq(right)]
        return []

    def negated_condition(self, expr: A.Expr) -> list[Constraint]:
        """Constraints of ``!expr`` where expressible (single linear
        comparison); otherwise nothing (sound weakening)."""
        if isinstance(expr, A.Binary) and expr.op in ("<", "<=", ">", ">="):
            try:
                left = self.term(expr.left)
                right = self.term(expr.right)
            except _Opaque:
                return []
            return {
                "<": [left >= right],
                "<=": [left > right],
                ">": [left <= right],
                ">=": [left < right],
            }[expr.op]
        return []

    # -- query registration --------------------------------------------------

    def register_queries(self, expr: A.Expr, when: list[Constraint]) -> None:
        """Find every GetQuery inside an expression tree."""
        if isinstance(expr, A.GetQuery):
            self._register_query(expr, when)
            for a in expr.args:
                self.register_queries(a, when)
            for _f, _op, e in expr.preds:
                self.register_queries(e, when)
            return
        if isinstance(expr, A.Unary):
            self.register_queries(expr.operand, when)
        elif isinstance(expr, A.Binary):
            self.register_queries(expr.left, when)
            self.register_queries(expr.right, when)
        elif isinstance(expr, A.FieldAccess):
            self.register_queries(expr.obj, when)
        elif isinstance(expr, A.NewTuple):
            for a in expr.args:
                self.register_queries(a, when)
            for _f, e in expr.named:
                self.register_queries(e, when)

    def _register_query(self, q: A.GetQuery, when: list[Constraint]) -> None:
        handle = self.tables[q.table]
        schema = handle.schema
        kind = {
            "all": QueryKind.POSITIVE,
            "uniq": QueryKind.NEGATIVE,
            "min": QueryKind.AGGREGATE,
        }[q.mode]
        bound: dict[str, Term] = {}
        for i, arg in enumerate(q.args):
            try:
                bound[schema.field_names[i]] = self.term(arg)
            except _Opaque:
                pass  # unconstrained field: fresh var at obligation time
        # bracket predicates become a constraints callback over the
        # query's own field variables
        translated: list[tuple[str, str, Term]] = []
        for field, op, value_expr in q.preds:
            if op == "==":
                try:
                    bound[field] = self.term(value_expr)
                except _Opaque:
                    pass
                continue
            try:
                translated.append((field, op, self.term(value_expr)))
            except _Opaque:
                pass

        def constraints(qf: Mapping[str, Term], items=tuple(translated)):
            out = []
            for field, op, term in items:
                left = qf.get(field)
                if left is None:
                    continue
                out.append(
                    {
                        "<": left < term,
                        "<=": left <= term,
                        ">": left > term,
                        ">=": left >= term,
                    }[op]
                )
            return out

        branch = self.meta.branch(when=list(when))
        branch._branch.bindings.extend(self.bindings)
        branch._branch.queries.append(
            SymQuery(schema, kind, bound, constraints if translated else None)
        )

    # -- statement walk -----------------------------------------------------------

    def walk(self, stmts: tuple[A.Stmt, ...], when: list[Constraint]) -> None:
        for stmt in stmts:
            self.walk_stmt(stmt, when)

    def walk_stmt(self, stmt: A.Stmt, when: list[Constraint]) -> None:
        if isinstance(stmt, A.ValDecl):
            self.register_queries(stmt.value, when)
            if isinstance(stmt.value, A.NewTuple):
                # reducer boxes etc. — opaque value
                self.val_vars.pop(stmt.name, None)
                return
            try:
                self.val_vars[stmt.name] = self.term(stmt.value)
            except _Opaque:
                self.val_vars.pop(stmt.name, None)
            return
        if isinstance(stmt, A.PutStmt):
            self.register_queries(stmt.value, when)
            if isinstance(stmt.value, A.NewTuple):
                self._register_put(stmt.value, when)
            else:
                # put of a non-constructor expression: unanalysable
                raise _Opaque()
            return
        if isinstance(stmt, A.AddAssign):
            self.register_queries(stmt.value, when)
            return
        if isinstance(stmt, A.IfStmt):
            conds = self.condition(stmt.cond)
            self.walk(stmt.then, when + conds)
            if stmt.orelse:
                self.walk(stmt.orelse, when + self.negated_condition(stmt.cond))
            return
        if isinstance(stmt, A.ForStmt):
            self._register_query(stmt.query, when)
            for a in stmt.query.args:
                self.register_queries(a, when)
            # the loop variable's fields become fresh symbolic vars,
            # constrained only by the table invariant (if supplied)
            self._loop_counter += 1
            schema = self.tables[stmt.query.table].schema
            prefix = f"{stmt.var}{self._loop_counter}"
            loop_fields = {
                f.name: var(f"{prefix}.{f.name}")
                for f in schema.fields
                if f.type in _NUMERIC
            }
            self.tuple_vars[stmt.var] = loop_fields
            self.bindings.append((schema, loop_fields))
            # the loop query's own constraints hold of every iterate:
            # positional args bind leading fields, bracket predicates
            # constrain named fields
            loop_conds: list[Constraint] = []
            for i, arg in enumerate(stmt.query.args):
                fname = schema.field_names[i]
                if fname in loop_fields:
                    try:
                        loop_conds.append(loop_fields[fname].eq(self.term(arg)))
                    except _Opaque:
                        pass
            for field, op, value_expr in stmt.query.preds:
                if field not in loop_fields:
                    continue
                try:
                    rhs = self.term(value_expr)
                except _Opaque:
                    continue
                left = loop_fields[field]
                loop_conds.append(
                    {
                        "==": left.eq(rhs),
                        "<": left < rhs,
                        "<=": left <= rhs,
                        ">": left > rhs,
                        ">=": left >= rhs,
                    }[op]
                )
            self.walk(stmt.body, when + loop_conds)
            self.bindings.pop()
            self.tuple_vars.pop(stmt.var, None)
            return
        if isinstance(stmt, A.PrintlnStmt):
            self.register_queries(stmt.value, when)
            return
        if isinstance(stmt, A.ExprStmt):
            self.register_queries(stmt.value, when)
            return

    def _register_put(self, new: A.NewTuple, when: list[Constraint]) -> None:
        from repro.lang.compile import BUILTIN_REDUCERS

        if new.table in BUILTIN_REDUCERS:
            raise _Opaque()  # 'put new Statistics()' is nonsense anyway
        handle = self.tables[new.table]
        schema = handle.schema
        fields: dict[str, Term] = {}
        given: set[str] = set()
        for i, arg in enumerate(new.args):
            name = schema.field_names[i]
            given.add(name)
            try:
                fields[name] = self.term(arg)
            except _Opaque:
                pass
        for name, value_expr in new.named:
            given.add(name)
            try:
                fields[name] = self.term(value_expr)
            except _Opaque:
                fields.pop(name, None)
        # omitted fields take their type defaults at runtime — reflect
        # that so the prover sees e.g. frame = 0 for defaulted ints
        for f in schema.fields:
            if f.name not in given and f.type in _NUMERIC:
                fields[f.name] = Term({}, f.default if not isinstance(f.default, bool) else int(f.default))
        from repro.solver.obligations import SymPut

        branch = self.meta.branch(when=list(when))
        branch._branch.bindings.extend(self.bindings)
        branch._branch.puts.append(SymPut(schema, fields))


def extract_meta(
    rule: A.RuleDecl, tables: Mapping[str, TableHandle]
) -> RuleMeta | None:
    """Best-effort metadata for a textual rule; ``None`` when the rule
    cannot be soundly summarised (the compiled rule is then marked
    ``assume_stratified``, matching the DSL's escape hatch)."""
    try:
        ex = _Extractor(rule, tables)
        ex.walk(rule.body, [])
        return ex.meta
    except _Opaque:
        return None
    except Exception:
        return None
