"""Gamma data-structure backends (§1.4 "late commitment to data
structures" and the §5/§6 data-structure experiments).

The public surface is the :class:`~repro.gamma.base.TableStore`
interface, the :class:`~repro.gamma.base.StoreRegistry` factory
mechanism, and the concrete backends:

============================  ==============================================
backend                        Java analogue in the paper
============================  ==============================================
:class:`TreeSetStore`          ``TreeSet`` (sequential default)
:class:`ConcurrentSkipListStore` ``ConcurrentSkipListSet`` (parallel default)
:class:`HashKeyStore`          ``HashMap`` keyed table
:class:`HashIndexStore`        ``HashSet`` / ``ConcurrentHashMap`` index
:class:`ArrayOfHashSetsStore`  the custom month-array PvWatts store (§6.2)
:class:`NativeArrayStore`      Java 2-D primitive arrays (§6.4)
:class:`TwoIterationArrayStore` ``double[2][N]`` Median store (§6.6)
:class:`ColumnarStore`         struct-of-arrays batch-execution backend
============================  ==============================================

On top of any backend, :class:`IndexedStore` maintains the secondary
indexes of an :class:`IndexSpec` plan — derived statically from the
program's rules by :func:`plan_indexes` (``ExecOptions(index_mode=
"auto")``) or given explicitly per table.
"""

from repro.gamma.base import CostProfile, StoreFactory, StoreRegistry, TableStore
from repro.gamma.columnar import ColumnarStore, columnar_store
from repro.gamma.hashindex import ArrayOfHashSetsStore, HashIndexStore, HashKeyStore
from repro.gamma.indexed import IndexedStore, IndexingRegistry
from repro.gamma.indexplan import (
    AccessPattern,
    IndexSpec,
    collect_access_patterns,
    plan_indexes,
    spec_for_pattern,
)
from repro.gamma.nativearray import NativeArrayStore, TwoIterationArrayStore
from repro.gamma.skiplist import SkipListMap, SkipListSet
from repro.gamma.treeset import ConcurrentSkipListStore, TreeSetStore

__all__ = [
    "CostProfile",
    "StoreFactory",
    "StoreRegistry",
    "TableStore",
    "SkipListMap",
    "SkipListSet",
    "TreeSetStore",
    "ConcurrentSkipListStore",
    "ColumnarStore",
    "columnar_store",
    "HashKeyStore",
    "HashIndexStore",
    "ArrayOfHashSetsStore",
    "NativeArrayStore",
    "TwoIterationArrayStore",
    "IndexedStore",
    "IndexingRegistry",
    "IndexSpec",
    "AccessPattern",
    "collect_access_patterns",
    "plan_indexes",
    "spec_for_pattern",
]
