"""A deterministic skip list: the sorted-map workhorse of the runtime.

The paper's generated Java uses ``TreeMap``/``TreeSet`` for sequential
code and ``ConcurrentSkipListMap``/``ConcurrentSkipListSet`` for
parallel code (§5).  Python's standard library has no sorted container,
so we implement a skip list once and use it for both roles: the
"sequential" and "concurrent" Gamma stores share this structure and
differ only in the contention cost model attached to them (see
:mod:`repro.gamma.base` and :mod:`repro.simcore.contention`) — which is
precisely the paper's observation that the concurrent variants are
functionally identical but slower ("the small overhead of some Java
concurrent data structures compared to their sequential equivalents",
§6.1).

Level choice uses a per-instance seeded PRNG so whole-program runs are
reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Any, Iterator

__all__ = ["SkipListMap", "SkipListSet"]

_MAX_LEVEL = 24
_P_NUMERATOR = 1  # promotion probability 1/4
_P_DENOMINATOR = 4


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int):
        self.key = key
        self.value = value
        self.forward: list[_Node | None] = [None] * level


class SkipListMap:
    """Ordered map with O(log n) expected insert/lookup/floor/ceiling
    and ordered iteration from any starting key.

    Keys must be mutually comparable (the stores only ever mix keys of
    one table, whose fields are uniformly typed).
    """

    __slots__ = ("_head", "_level", "_size", "_rng")

    def __init__(self, seed: int = 0x5EED):
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def _random_level(self) -> int:
        lvl = 1
        while (
            lvl < _MAX_LEVEL
            and self._rng.randrange(_P_DENOMINATOR) < _P_NUMERATOR
        ):
            lvl += 1
        return lvl

    def _find_predecessors(self, key: Any) -> list[_Node]:
        """Per-level rightmost node with node.key < key."""
        update: list[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[lvl]
            update[lvl] = node
        return update

    # -- mutation ---------------------------------------------------------

    def insert(self, key: Any, value: Any) -> bool:
        """Insert or replace; returns True if the key was new."""
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return False
        lvl = self._random_level()
        if lvl > self._level:
            self._level = lvl
        node = _Node(key, value, lvl)
        for i in range(lvl):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._size += 1
        return True

    def setdefault(self, key: Any, value: Any) -> Any:
        """Insert if absent; return the stored value either way."""
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            return candidate.value
        self._insert_after(update, key, value)
        return value

    def _insert_after(self, update: list[_Node], key: Any, value: Any) -> None:
        lvl = self._random_level()
        if lvl > self._level:
            self._level = lvl
        node = _Node(key, value, lvl)
        for i in range(lvl):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._size += 1

    def delete(self, key: Any) -> bool:
        """Remove a key; returns True if it was present."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            return False
        for i in range(self._level):
            if update[i].forward[i] is node:
                update[i].forward[i] = node.forward[i]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return True

    def clear(self) -> None:
        self._head.forward = [None] * _MAX_LEVEL
        self._level = 1
        self._size = 0

    # -- lookup -----------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[lvl]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node.value
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def min_item(self) -> tuple[Any, Any] | None:
        node = self._head.forward[0]
        return None if node is None else (node.key, node.value)

    def max_item(self) -> tuple[Any, Any] | None:
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None:
                node = nxt
                nxt = node.forward[lvl]
        return None if node is self._head else (node.key, node.value)

    def ceiling_item(self, key: Any) -> tuple[Any, Any] | None:
        """Smallest (k, v) with k >= key."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        return None if node is None else (node.key, node.value)

    # -- iteration ----------------------------------------------------------

    def items(self) -> Iterator[tuple[Any, Any]]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def keys(self) -> Iterator[Any]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[Any]:
        for _, v in self.items():
            yield v

    def items_from(self, key: Any) -> Iterator[tuple[Any, Any]]:
        """Ordered iteration starting at the smallest key >= ``key``."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def __repr__(self) -> str:
        return f"SkipListMap(size={self._size}, level={self._level})"


class SkipListSet:
    """Ordered set built on :class:`SkipListMap`."""

    __slots__ = ("_map",)

    def __init__(self, seed: int = 0x5EED):
        self._map = SkipListMap(seed)

    def __len__(self) -> int:
        return len(self._map)

    def add(self, key: Any) -> bool:
        """Add a key; returns True if it was new."""
        sentinel = object()
        return self._map.setdefault(key, sentinel) is sentinel

    def discard(self, key: Any) -> bool:
        return self._map.delete(key)

    def __contains__(self, key: Any) -> bool:
        return key in self._map

    def __iter__(self) -> Iterator[Any]:
        return self._map.keys()

    def iter_from(self, key: Any) -> Iterator[Any]:
        for k, _ in self._map.items_from(key):
            yield k

    def min(self) -> Any | None:
        item = self._map.min_item()
        return None if item is None else item[0]

    def max(self) -> Any | None:
        item = self._map.max_item()
        return None if item is None else item[0]

    def clear(self) -> None:
        self._map.clear()

    def __repr__(self) -> str:
        return f"SkipListSet(size={len(self)})"
