"""Rule-driven secondary-index planning for Gamma stores.

§1.4 promises that "we can perform static analysis on the queries that
are performed ... before deciding how to represent the data, which
fields should be indexed, what data structures to use for each index".
The data-structure *advisor* (:mod:`repro.stats.advisor`) closes that
loop dynamically, from a profiled run; this module closes it
**statically**: it walks a program's compiled rules — the same symbolic
:class:`~repro.solver.obligations.RuleMeta` the causality prover
consumes, which textual programs get extracted automatically
(:mod:`repro.lang.meta`) — and derives, per table, the set of *access
patterns* its rules use:

* equality-constrained field sets (``get PvWatts(s.year, s.month)`` →
  ``{year, month}``);
* range-constrained fields (``get uniq? Done(dist.vertex,
  [distance < dist.distance])`` → eq ``{vertex}``, range
  ``{distance}``).

:func:`plan_indexes` turns those patterns into an *index plan*: a
mapping ``table name → (IndexSpec, ...)`` ready for
``ExecOptions(index_mode="auto")``, where each
:class:`IndexSpec` is either a **hash index** over the equality fields
or a **sorted index** (hash buckets over the equality fields, each
bucket ordered by the range field).  Patterns already served by the
primary-key fast path (equality fields covering the whole key) need no
index; neither do full scans (no constraints at all).

The planner is deliberately conservative: an index can only *speed up*
a query it matches — :class:`~repro.gamma.indexed.IndexedStore` always
falls back to the base store's scan — so missing metadata (opaque
Python rule bodies without ``meta``) degrades gracefully to the
unindexed behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.errors import SchemaError
from repro.core.schema import TableSchema

if TYPE_CHECKING:  # pragma: no cover — avoids a circular import at runtime
    from repro.core.program import Program

__all__ = [
    "IndexSpec",
    "AccessPattern",
    "collect_access_patterns",
    "spec_for_pattern",
    "plan_indexes",
    "MAX_INDEXES_PER_TABLE",
]

#: safety valve: more indexes than this per table means the rules have
#: no dominant access pattern and maintenance would outweigh lookups
MAX_INDEXES_PER_TABLE = 4


@dataclass(frozen=True)
class IndexSpec:
    """One secondary index over a table.

    ``eq_fields`` are the hash-bucketed equality fields (may be empty);
    ``range_field`` is the optional field each bucket is ordered by.
    ``range_field=None`` makes a plain hash index; a spec with an empty
    ``eq_fields`` and a range field is a single ordered index over that
    field.
    """

    eq_fields: tuple[str, ...]
    range_field: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "eq_fields", tuple(self.eq_fields))
        if self.range_field is not None and self.range_field in self.eq_fields:
            raise SchemaError(
                f"index field {self.range_field!r} is both hashed and ordered"
            )
        if not self.eq_fields and self.range_field is None:
            raise SchemaError("an index must constrain at least one field")

    @property
    def kind(self) -> str:
        return "hash" if self.range_field is None else "sorted"

    def validate(self, schema: TableSchema) -> None:
        for name in self.eq_fields:
            schema.field_position(name)  # raises UnknownFieldError
        if self.range_field is not None:
            schema.field_position(self.range_field)

    def label(self) -> str:
        fields = ", ".join(self.eq_fields)
        if self.range_field is None:
            return f"hash({fields})"
        return f"sorted({fields}; {self.range_field})" if fields else (
            f"sorted({self.range_field})"
        )

    def __repr__(self) -> str:
        return f"<IndexSpec {self.label()}>"


@dataclass(frozen=True)
class AccessPattern:
    """One query shape a rule performs against a table."""

    table: str
    eq_fields: tuple[str, ...]
    range_fields: tuple[str, ...]
    source: str = "?"  # rule name, for diagnostics

    def __repr__(self) -> str:
        return (
            f"<{self.table} eq={set(self.eq_fields) or '{}'} "
            f"range={set(self.range_fields) or '{}'} via {self.source}>"
        )


_PROBE_PREFIX = "__ixplan__."
_NUMERIC = ("int", "float", "bool")


def _pattern_of_symquery(query, rule_name: str) -> AccessPattern:
    """Lower one :class:`~repro.solver.obligations.SymQuery` to an
    access pattern.  Equality fields are the query's bound fields; range
    fields are discovered by probing the symbolic constraints callback
    with marked variables and seeing which fields it relates."""
    from repro.solver.terms import Rel, var

    eq = set(query.bound)
    rng: set[str] = set()
    if query.constraints is not None:
        probe = {
            f.name: var(_PROBE_PREFIX + f.name)
            for f in query.schema.fields
            if f.type in _NUMERIC
        }
        # bound fields keep their bound terms, exactly like the
        # obligation generator's q_fields — their constraints then never
        # mention a probe variable and stay classified as equality
        probe.update(query.bound)
        try:
            atoms = list(query.constraints(probe))
        except Exception:  # constraints outside the probe's fragment
            atoms = []
        for atom in atoms:
            for v in atom.variables():
                if v.startswith(_PROBE_PREFIX):
                    name = v[len(_PROBE_PREFIX):]
                    (eq if atom.rel == Rel.EQ else rng).add(name)
    rng -= eq
    return AccessPattern(
        query.schema.name, tuple(sorted(eq)), tuple(sorted(rng)), rule_name
    )


def collect_access_patterns(program: "Program") -> list[AccessPattern]:
    """Every distinct query access pattern in the program's rules that
    carry symbolic metadata (hand-written or extracted from source)."""
    from repro.solver.obligations import RuleMeta

    seen: set[tuple] = set()
    out: list[AccessPattern] = []
    for rule in program.rules:
        meta = rule.meta
        if not isinstance(meta, RuleMeta):
            continue
        for branch in meta.branches:
            for q in branch.queries:
                pat = _pattern_of_symquery(q, rule.name)
                key = (pat.table, pat.eq_fields, pat.range_fields)
                if key not in seen:
                    seen.add(key)
                    out.append(pat)
    return out


def _key_names(schema: TableSchema) -> frozenset[str]:
    return frozenset(schema.field_names[i] for i in schema.key_indexes)


def spec_for_pattern(
    schema: TableSchema,
    eq_fields: Iterable[str],
    range_fields: Iterable[str] = (),
) -> IndexSpec | None:
    """The index (if any) that would serve one access pattern.

    ``None`` when no index helps: full scans have nothing to hash on,
    and patterns whose equality fields cover the whole primary key are
    already served by the keyed fast path
    (:meth:`~repro.core.query.Query.key_if_fully_bound`).
    """
    eq = tuple(sorted(set(eq_fields)))
    rng = tuple(sorted(set(range_fields)))
    if schema.has_key and _key_names(schema) <= set(eq):
        return None
    if rng:
        # one range field becomes the bucket ordering; further range
        # fields are residually filtered by Query.matches
        return IndexSpec(eq, rng[0])
    if eq:
        return IndexSpec(eq)
    return None


def plan_indexes(
    program: "Program",
    max_per_table: int = MAX_INDEXES_PER_TABLE,
) -> dict[str, tuple[IndexSpec, ...]]:
    """The automatic index plan for a program: walk the compiled rules'
    access patterns and emit per-table index specs.

    A hash index whose fields are covered by a sorted index's equality
    fields is *not* elided — equality probes on the hash index are
    cheaper than bucket scans — but exact duplicates are.  Tables whose
    patterns produce more than ``max_per_table`` distinct indexes keep
    only the first ``max_per_table`` in deterministic (sorted) order.
    """
    schemas = program.schemas()
    plan: dict[str, list[IndexSpec]] = {}
    for pat in collect_access_patterns(program):
        schema = schemas.get(pat.table)
        if schema is None:  # pragma: no cover - rules query own tables
            continue
        spec = spec_for_pattern(schema, pat.eq_fields, pat.range_fields)
        if spec is None:
            continue
        specs = plan.setdefault(pat.table, [])
        if spec not in specs:
            specs.append(spec)
    return {
        table: tuple(sorted(specs, key=lambda s: (s.eq_fields, s.range_field or "")))[
            :max_per_table
        ]
        for table, specs in sorted(plan.items())
    }
