"""Column-oriented Gamma backend (struct-of-arrays layout).

The row stores keep each tuple as one Python object and answer selects
by probing per-table structures tuple-by-tuple.  ``ColumnarStore``
instead keeps one typed column per field — ``array('q')`` for ints,
``array('d')`` for floats, plain lists for strings/``any`` — plus a
hash partition over a chosen column set, so the batch firing path
(:mod:`repro.plan.batchcompile`) can answer a whole trigger class's
predicted queries with ``select_batch``-style bulk probes instead of
one full query pipeline per firing.

Layout and invariants:

* ``_rows`` is the row-id → :class:`JTuple` spine (``None`` marks a
  tombstone); the typed columns are positionally parallel to it, and
  keep their (stale) values for dead rows until compaction.
* ``_rowids`` maps full value tuples to row ids — set semantics,
  ``__contains__``, and duplicate detection in O(1).
* ``_parts`` maps partition-key value tuples to row-id lists;
  partition keys default to the table's primary key.  A table with
  neither gets no partition index and serves everything by filtered
  scan (still correct, no longer sub-linear).
* ``select`` results are sorted by full value tuple — the same order
  :class:`~repro.gamma.treeset.TreeSetStore` scans in — so swapping a
  table to this store never perturbs result order (float reducers and
  per-result trace events would observe a different order otherwise).

Deletions (retention GC, retraction) tombstone the row and compact the
whole store once the dead fraction passes one half.
"""

from __future__ import annotations

from array import array
from operator import attrgetter
from typing import Callable, Iterator

from repro.core.errors import SchemaError
from repro.core.query import Query
from repro.core.schema import TableSchema
from repro.core.tuples import JTuple
from repro.gamma.base import CostProfile, PreparedSelect, TableStore

__all__ = ["ColumnarStore", "columnar_store"]

#: machine column codes per declared field type; anything else (str,
#: any) stays a plain object list
_ARRAY_CODES = {"int": "q", "float": "d", "bool": "b"}

_row_values = attrgetter("values")


class ColumnarStore(TableStore):
    """Struct-of-arrays store with a hash-partitioned column set and
    bulk ``insert_batch`` / ``select_batch`` APIs."""

    kind = "columnar"
    cost = CostProfile(insert_cost=0.9, lookup_cost=0.7, result_cost=0.2)

    def __init__(self, schema: TableSchema, partition: tuple[str, ...] | None = None):
        super().__init__(schema)
        if partition is None:
            partition = tuple(schema.field_names[i] for i in schema.key_indexes)
        self._part_pos: tuple[int, ...] = tuple(
            schema.field_position(n) for n in partition
        )
        self._keyed = schema.has_key
        self._key_pos = schema.key_indexes
        self._cols: list = [self._new_column(f.type) for f in schema.fields]
        self._rows: list[JTuple | None] = []
        self._rowids: dict[tuple, int] = {}
        self._parts: dict[tuple, list[int]] = {}
        self._by_key: dict[tuple, int] = {}
        self._dead = 0

    @staticmethod
    def _new_column(field_type: str):
        code = _ARRAY_CODES.get(field_type)
        return array(code) if code is not None else []

    # -- column plumbing ----------------------------------------------------

    def _append_columns(self, values: tuple) -> None:
        cols = self._cols
        for i, v in enumerate(values):
            col = cols[i]
            try:
                col.append(v)
            except (OverflowError, TypeError):
                # value outside the machine type (bignum in an int
                # column): demote the column to a plain object list
                cols[i] = col = list(col)
                col.append(v)

    def _compact(self) -> None:
        live = [t for t in self._rows if t is not None]
        self._cols = [self._new_column(f.type) for f in self.schema.fields]
        self._rows = []
        self._rowids = {}
        self._parts = {}
        self._by_key = {}
        self._dead = 0
        for t in live:
            self.insert(t)

    # -- required API -------------------------------------------------------

    def insert(self, tup: JTuple) -> bool:
        values = tup.values
        if values in self._rowids:
            return False
        rid = len(self._rows)
        self._rows.append(tup)
        self._append_columns(values)
        self._rowids[values] = rid
        part_pos = self._part_pos
        if part_pos:
            pk = tuple(values[p] for p in part_pos)
            bucket = self._parts.get(pk)
            if bucket is None:
                self._parts[pk] = [rid]
            else:
                bucket.append(rid)
        if self._keyed:
            self._by_key[tuple(values[p] for p in self._key_pos)] = rid
        return True

    def __contains__(self, tup: JTuple) -> bool:
        return tup.values in self._rowids

    def __len__(self) -> int:
        return len(self._rowids)

    def scan(self) -> Iterator[JTuple]:
        return (t for t in self._rows if t is not None)

    def clear(self) -> None:
        self._cols = [self._new_column(f.type) for f in self.schema.fields]
        self._rows = []
        self._rowids = {}
        self._parts = {}
        self._by_key = {}
        self._dead = 0

    # -- deletion -----------------------------------------------------------

    def discard(self, tup: JTuple) -> bool:
        rid = self._rowids.pop(tup.values, None)
        if rid is None:
            return False
        self._rows[rid] = None
        self._dead += 1
        if self._keyed:
            k = tuple(tup.values[p] for p in self._key_pos)
            if self._by_key.get(k) == rid:
                del self._by_key[k]
        if self._dead > 32 and self._dead * 2 > len(self._rows):
            self._compact()
        return True

    # -- lookups ------------------------------------------------------------

    def lookup_key(self, key: tuple) -> JTuple | None:
        if not self._keyed:
            raise SchemaError(f"table {self.schema.name} has no primary key")
        rid = self._by_key.get(key)
        return self._rows[rid] if rid is not None else None

    def _candidates(self, query: Query) -> Iterator[JTuple]:
        part_pos = self._part_pos
        eq = query.eq
        if part_pos and all(p in eq for p in part_pos):
            rids = self._parts.get(tuple(eq[p] for p in part_pos))
            if not rids:
                return iter(())
            rows = self._rows
            return (t for rid in rids if (t := rows[rid]) is not None)
        key = query.key_if_fully_bound()
        if key is not None:
            t = self.lookup_key(key)
            return iter(()) if t is None else iter((t,))
        return self.scan()

    def _select_list(self, query: Query) -> list[JTuple]:
        out = [t for t in self._candidates(query) if query.matches(t)]
        if len(out) > 1:
            out.sort(key=_row_values)
        return out

    def select(self, query: Query) -> Iterator[JTuple]:
        return iter(self._select_list(query))

    def lookup_cost_for(self, query: Query) -> tuple[float, str]:
        part_pos = self._part_pos
        if part_pos and all(p in query.eq for p in part_pos):
            return (self.cost.lookup_cost, "partition")
        if query.key_if_fully_bound() is not None:
            return (self.cost.lookup_cost, "key")
        return (2.0 * self.cost.lookup_cost, "scan")

    def prepare(self, query: Query) -> PreparedSelect:
        cost, tag = self.lookup_cost_for(query)
        part_pos = self._part_pos
        if tag == "partition":
            # residual work beyond the partition probe is fixed per shape
            residual = (
                len(query.eq) > len(part_pos)
                or bool(query.ranges)
                or query.where is not None
            )

            def run(q: Query) -> list[JTuple]:
                rids = self._parts.get(tuple(q.eq[p] for p in part_pos))
                if not rids:
                    return []
                rows = self._rows
                if residual:
                    out = [
                        t
                        for rid in rids
                        if (t := rows[rid]) is not None and q.matches(t)
                    ]
                else:
                    out = [t for rid in rids if (t := rows[rid]) is not None]
                if len(out) > 1:
                    out.sort(key=_row_values)
                return out

        else:

            def run(q: Query) -> list[JTuple]:
                return self._select_list(q)

        return PreparedSelect(run, cost, tag, self.cost, self.schema.name)

    # -- bulk APIs ----------------------------------------------------------

    def insert_batch(self, tups: list[JTuple]) -> list[bool]:
        """Insert many tuples; per-tuple outcomes in order (set
        semantics, exactly :meth:`insert`)."""
        insert = self.insert
        return [insert(t) for t in tups]

    def select_batch(self, queries: list[Query]) -> list[list[JTuple]]:
        """Answer many queries at once; results positionally aligned."""
        sel = self._select_list
        return [sel(q) for q in queries]

    def prepare_batch(
        self, probe: Query
    ) -> Callable[[list[tuple], list[tuple] | None], list[list[JTuple]]] | None:
        """Resolve a *bulk* select path for one query shape, or ``None``
        when this shape cannot be served from the partition index (the
        caller falls back to per-trigger prepared selects).

        The returned callable takes ``eq_rows`` — one tuple of equality
        values per query, ordered by ascending field position — and
        ``rng_rows`` — per query, one ``(lo, hi, lo_inc, hi_inc)``
        quadruple per range position in ascending order (``None`` when
        the shape has no ranges) — and returns one result list per row,
        each sorted by full value tuple like :meth:`select`.
        """
        part_pos = self._part_pos
        if not part_pos or probe.where is not None:
            return None
        if not all(p in probe.eq for p in part_pos):
            return None
        eq_positions = tuple(sorted(probe.eq))
        rng_positions = tuple(sorted(probe.ranges))
        part_sel = tuple(eq_positions.index(p) for p in part_pos)
        resid_sel = tuple(
            (i, p) for i, p in enumerate(eq_positions) if p not in part_pos
        )

        def run_batch(
            eq_rows: list[tuple], rng_rows: list[tuple] | None
        ) -> list[list[JTuple]]:
            rows = self._rows
            parts = self._parts
            cols = self._cols
            out: list[list[JTuple]] = []
            for i, erow in enumerate(eq_rows):
                rids = parts.get(tuple(erow[j] for j in part_sel))
                if not rids:
                    out.append([])
                    continue
                got: list[JTuple] = []
                rrow = rng_rows[i] if rng_rows is not None else None
                for rid in rids:
                    t = rows[rid]
                    if t is None:
                        continue
                    ok = True
                    for j, p in resid_sel:
                        if cols[p][rid] != erow[j]:
                            ok = False
                            break
                    if ok and rrow is not None:
                        for k, p in enumerate(rng_positions):
                            lo, hi, lo_inc, hi_inc = rrow[k]
                            v = cols[p][rid]
                            if lo is not None and (
                                v < lo or (v == lo and not lo_inc)
                            ):
                                ok = False
                                break
                            if hi is not None and (
                                v > hi or (v == hi and not hi_inc)
                            ):
                                ok = False
                                break
                    if ok:
                        got.append(t)
                if len(got) > 1:
                    got.sort(key=_row_values)
                out.append(got)
            return out

        return run_batch


def columnar_store(partition: tuple[str, ...] | None = None):
    """Factory for ``ExecOptions(store_overrides={...})``: a
    :class:`ColumnarStore` partitioned on the given fields (default:
    the table's primary key)."""

    def factory(schema: TableSchema) -> ColumnarStore:
        return ColumnarStore(schema, partition)

    return factory
