"""Gamma table-store interface and the data-structure factory registry.

§1.4 of the paper ("late commitment to data structures") is the reason
this module exists: programs are written against neutral relations, and
the *representation* of each Gamma table is chosen afterwards — by
default from the execution mode (sequential → tree store, parallel →
concurrent skip list), or overridden per table via runtime flags /
factory overrides ("we manually implemented a custom data structure for
the PvWatts Gamma database ... by using inheritance to override one
factory method", §6.2).

A :class:`TableStore` must implement exact-duplicate detection
(``insert`` returns ``False`` for duplicates — set semantics), primary
key lookup when the table is keyed, and ``select`` over a
:class:`~repro.core.query.Query`.  ``select`` may exploit whatever
indexes the store has; filtering through :meth:`Query.matches` is the
always-correct fallback.

Each store also carries a :class:`CostProfile` used by the virtual-time
machine: the op-cost weights and, for "concurrent" stores, the shared
resource they serialise on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.core.errors import SchemaError
from repro.core.query import Query
from repro.core.schema import TableSchema
from repro.core.tuples import JTuple

__all__ = [
    "CostProfile",
    "PreparedSelect",
    "TableStore",
    "StoreFactory",
    "StoreRegistry",
]


@dataclass(frozen=True)
class CostProfile:
    """Abstract cost of one store operation, in work units, plus the
    shared resource its parallel variant serialises on.

    ``insert_cost`` / ``lookup_cost`` are charged per operation;
    ``result_cost`` per tuple yielded by a select.  ``resource`` names
    the contention domain (``None`` = uncontended, e.g. per-consumer
    local stores); ``serial_fraction`` is the fraction of each op that
    must serialise when the structure is shared between cores.
    """

    insert_cost: float = 1.0
    lookup_cost: float = 1.0
    result_cost: float = 0.25
    resource: str | None = None
    serial_fraction: float = 0.0


class PreparedSelect:
    """A select path resolved once per query *shape* (see
    :mod:`repro.plan`): ``run`` materialises results for one concrete
    query of that shape, and the precomputed cost fields let
    :meth:`~repro.exec.metering.CostMeter.charge_planned` replicate
    ``charge_lookup`` + ``charge_store_op("result", ...)`` without
    re-deriving anything.  ``lookup_shared`` / ``result_shared`` are the
    serialisable work units per lookup / per result (0.0 when the store
    is uncontended)."""

    __slots__ = (
        "run",
        "lookup_cost",
        "lookup_counter",
        "lookup_shared",
        "result_cost",
        "result_counter",
        "result_shared",
        "resource",
    )

    def __init__(
        self,
        run: Callable[["Query"], list[JTuple]],
        lookup_cost: float,
        lookup_tag: str,
        profile: CostProfile,
        table_name: str,
    ):
        self.run = run
        sf = profile.serial_fraction if profile.resource is not None else 0.0
        self.lookup_cost = lookup_cost
        self.lookup_counter = f"gamma_{lookup_tag}:{table_name}"
        self.lookup_shared = lookup_cost * sf
        self.result_cost = profile.result_cost
        self.result_counter = f"gamma_result:{table_name}"
        self.result_shared = profile.result_cost * sf
        self.resource = profile.resource


class TableStore(ABC):
    """Backing store for one Gamma table."""

    #: human-readable backend name, used in benchmark reports
    kind: str = "abstract"
    #: default cost profile; factories may replace per instance
    cost: CostProfile = CostProfile()

    def __init__(self, schema: TableSchema):
        self.schema = schema

    # -- required API -------------------------------------------------------

    @abstractmethod
    def insert(self, tup: JTuple) -> bool:
        """Add a tuple; return False if this exact tuple was present."""

    @abstractmethod
    def __contains__(self, tup: JTuple) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def scan(self) -> Iterator[JTuple]:
        """Iterate all tuples (order is store-specific)."""

    @abstractmethod
    def clear(self) -> None: ...

    # -- overridable API -----------------------------------------------------

    def lookup_key(self, key: tuple) -> JTuple | None:
        """Primary-key lookup; default linear scan (keyed stores override)."""
        if not self.schema.has_key:
            raise SchemaError(f"table {self.schema.name} has no primary key")
        for t in self.scan():
            if t.key() == key:
                return t
        return None

    def select(self, query: Query) -> Iterator[JTuple]:
        """Yield tuples matching the query.  Default: exploit a fully
        bound key if present, else filter a full scan."""
        key = query.key_if_fully_bound()
        if key is not None:
            t = self.lookup_key(key)
            if t is not None and query.matches(t):
                yield t
            return
        yield from query.filter(self.scan())

    def discard(self, tup: JTuple) -> bool:
        """Remove a tuple (used only by lifetime-hint GC, §5 step 4).
        Stores that cannot delete raise."""
        raise SchemaError(f"{self.kind} store cannot discard tuples")

    def remove(self, tup: JTuple) -> bool:
        """Remove a tuple for *retraction* (incremental maintenance).
        Semantically identical to :meth:`discard`; a separate entry
        point so stores can keep GC-only deletion cheap while making
        retraction exact (e.g. also unwinding secondary indexes)."""
        return self.discard(tup)

    def lookup_cost_for(self, query: Query) -> tuple[float, str]:
        """Virtual-time cost of serving one select, plus the metering
        tag it is charged under.  The default is the flat profile cost;
        index-aware stores return a cheaper cost (and a distinct tag)
        for queries an index serves."""
        return (self.cost.lookup_cost, "lookup")

    def prepare(self, query: Query) -> PreparedSelect:
        """Resolve the select path for this query's *shape* once (plan
        cache, §5's compiled-query advantage).  Every query later run
        through the result constrains the same field positions, so any
        decision that depends only on positions — key coverage, index
        choice, prefix length — may be made here.  The default simply
        prices the shape via :meth:`lookup_cost_for` and delegates each
        call to :meth:`select`; stores with shape-dependent paths
        override this to pick the path up front."""
        cost, tag = self.lookup_cost_for(query)

        def run(q: Query) -> list[JTuple]:
            return list(self.select(q))

        return PreparedSelect(run, cost, tag, self.cost, self.schema.name)

    def heap_tuples(self) -> int:
        """Number of tuples retained on the heap — feeds the GC-pressure
        model.  Native-array stores override this to reflect their much
        smaller object count."""
        return len(self)

    # -- checkpoint hooks ----------------------------------------------------

    def supports_checkpoint(self) -> bool:
        """Whether this store round-trips through
        :meth:`dump_rows`/:meth:`load_rows`.  True for every store whose
        full contents are reachable by :meth:`scan` and reinsertable by
        :meth:`insert`; stores backed by bulk-loaded native planes (the
        Median ``double[2][N]`` specialisation) override this to opt
        out, which makes sessions over them refuse to snapshot with a
        clear error instead of silently losing data."""
        return True

    def dump_rows(self) -> list[tuple]:
        """Value rows for a session snapshot, in :meth:`scan` order —
        re-inserting them in this order through :meth:`load_rows`
        reproduces an insertion-ordered store exactly."""
        return [t.values for t in self.scan()]

    def load_rows(self, rows: list) -> None:
        """Rebuild contents from :meth:`dump_rows` output (the store
        must be empty)."""
        schema = self.schema
        for values in rows:
            self.insert(JTuple(schema, tuple(values)))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.schema.name} n={len(self)}>"


StoreFactory = Callable[[TableSchema], TableStore]


class StoreRegistry:
    """Maps table name → store factory, with a mode-dependent default.

    This is the runtime-flag mechanism of §1.4/§5: ``registry.override``
    replaces the representation of one table without touching the
    program, exactly like the paper's factory-method override.
    """

    def __init__(self, default: StoreFactory):
        self._default = default
        self._overrides: dict[str, StoreFactory] = {}

    def override(self, table_name: str, factory: StoreFactory) -> None:
        self._overrides[table_name] = factory

    def create(self, schema: TableSchema) -> TableStore:
        factory = self._overrides.get(schema.name, self._default)
        return factory(schema)

    def has_override(self, table_name: str) -> bool:
        return table_name in self._overrides
