"""Native-array Gamma stores (numpy-backed dense representations).

§6.4: "This is an example of a commonly-useful 'native-arrays' data
structure optimisation: tables that have integer keys and a single
dependent value, such as ``table Matrix(int mat, int row, int col ->
int value)``, can be efficiently implemented using Java arrays if the
keys have a limited range and are dense."

§6.6 adds the two-iteration variant used by the Median program: a
``double[2][100000000]`` indexed by ``iter modulo 2`` — a native array
*plus* a Gamma garbage-collection optimisation that retains only the
current and next iteration ("keeps only the 'current' and 'next' copies
of the iterations in a table").

We use numpy arrays as the Python analogue of Java primitive arrays:
unboxed storage, O(1) access, tiny per-element heap footprint (which is
what the GC-pressure model rewards — ``heap_tuples`` reports the number
of *objects*, near zero here).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.errors import SchemaError
from repro.core.query import Query
from repro.core.schema import TableSchema
from repro.core.tuples import JTuple
from repro.gamma.base import CostProfile, TableStore

__all__ = ["NativeArrayStore", "TwoIterationArrayStore"]

_DTYPES = {"int": np.int64, "float": np.float64, "bool": np.bool_}


def _split_schema(schema: TableSchema) -> tuple[tuple[int, ...], int]:
    """Validate 'int keys -> single numeric value' and return
    (key field positions, value field position)."""
    if not schema.has_key or len(schema.dep_indexes) != 1:
        raise SchemaError(
            f"native-array store needs 'int keys -> one value', "
            f"table {schema.name} does not match"
        )
    for i in schema.key_indexes:
        if schema.fields[i].type != "int":
            raise SchemaError(
                f"native-array store needs int keys; "
                f"{schema.name}.{schema.fields[i].name} is {schema.fields[i].type}"
            )
    vpos = schema.dep_indexes[0]
    if schema.fields[vpos].type not in _DTYPES:
        raise SchemaError(
            f"native-array store cannot hold {schema.fields[vpos].type} values"
        )
    return schema.key_indexes, vpos


class NativeArrayStore(TableStore):
    """Dense numpy array for ``int keys -> single value`` tables.

    ``shape`` gives the extent of each key dimension (keys must lie in
    ``range(shape[d])``).  A boolean presence mask provides exact set
    semantics and duplicate detection.
    """

    kind = "native-array"
    cost = CostProfile(
        insert_cost=0.25,
        lookup_cost=0.2,
        result_cost=0.1,
        # dense array traffic contends on memory bandwidth, not locks —
        # this resource is what flattens Fig 11 beyond ~20 cores.
        resource="membw",
        serial_fraction=0.03,
    )

    def __init__(self, schema: TableSchema, shape: tuple[int, ...]):
        super().__init__(schema)
        key_pos, vpos = _split_schema(schema)
        if len(shape) != len(key_pos):
            raise SchemaError(
                f"shape {shape} has {len(shape)} dims but {schema.name} "
                f"has {len(key_pos)} key fields"
            )
        self._key_pos = key_pos
        self._vpos = vpos
        dtype = _DTYPES[schema.fields[vpos].type]
        self.array = np.zeros(shape, dtype=dtype)
        self._present = np.zeros(shape, dtype=np.bool_)
        self._size = 0

    # -- direct numpy access (the whole point of the optimisation) --------

    def key_of(self, tup: JTuple) -> tuple[int, ...]:
        return tuple(tup.values[i] for i in self._key_pos)

    def value_at(self, *key: int):
        if not bool(self._present[key]):
            return None
        return self.array[key].item()

    def bulk_set(self, plane_index: tuple, values: np.ndarray) -> int:
        """Vectorised regional insert: write a whole sub-array at once.

        This is the analogue of a generated inner loop writing a Java
        array directly; it bypasses per-tuple JTuple allocation, which
        is how rules with heavy numeric inner loops (MatrixMult, Median)
        avoid boxing.  Returns the number of elements written.
        """
        self.array[plane_index] = values
        was = self._present[plane_index]
        newly = int(np.size(values) - np.count_nonzero(was))
        self._present[plane_index] = True
        self._size += newly
        return int(np.size(values))

    # -- TableStore API -----------------------------------------------------

    def insert(self, tup: JTuple) -> bool:
        key = self.key_of(tup)
        value = tup.values[self._vpos]
        if bool(self._present[key]):
            if self.array[key].item() == value:
                return False
            raise SchemaError(
                f"key conflict in native array {self.schema.name} at {key}"
            )
        self.array[key] = value
        self._present[key] = True
        self._size += 1
        return True

    def __contains__(self, tup: JTuple) -> bool:
        key = self.key_of(tup)
        return bool(self._present[key]) and self.array[key].item() == tup.values[self._vpos]

    def __len__(self) -> int:
        return self._size

    def scan(self) -> Iterator[JTuple]:
        schema = self.schema
        for key in zip(*np.nonzero(self._present)):
            key = tuple(int(k) for k in key)
            vals: list = [None] * len(schema.fields)
            for pos, k in zip(self._key_pos, key):
                vals[pos] = k
            vals[self._vpos] = self.array[key].item()
            yield JTuple(schema, tuple(vals))

    def clear(self) -> None:
        self._present[...] = False
        self._size = 0

    def lookup_key(self, key: tuple) -> JTuple | None:
        if not bool(self._present[key]):
            return None
        vals: list = [None] * len(self.schema.fields)
        for pos, k in zip(self._key_pos, key):
            vals[pos] = int(k)
        vals[self._vpos] = self.array[key].item()
        return JTuple(self.schema, tuple(vals))

    def heap_tuples(self) -> int:
        # unboxed storage: a handful of array objects, not per-tuple heap
        return 0


class TwoIterationArrayStore(TableStore):
    """Median's ring store: ``double[2][N]`` indexed by ``iter % 2``.

    Schema must be ``(int iter, int index -> value)``.  Inserting a
    tuple for iteration *i* implicitly garbage-collects iteration
    *i - 2* (the plane is overwritten) — the paper's manual
    lifetime-hint GC of §5 step 4 combined with native arrays (§6.6).
    Queries may only touch the two retained iterations.
    """

    kind = "two-iteration-array"
    cost = CostProfile(
        insert_cost=0.25,
        lookup_cost=0.2,
        result_cost=0.1,
        resource="membw",
        serial_fraction=0.02,
    )

    def __init__(self, schema: TableSchema, length: int):
        super().__init__(schema)
        key_pos, vpos = _split_schema(schema)
        if len(key_pos) != 2:
            raise SchemaError(
                "TwoIterationArrayStore needs exactly (int iter, int index -> value)"
            )
        self._iter_pos, self._index_pos = key_pos
        self._vpos = vpos
        dtype = _DTYPES[schema.fields[vpos].type]
        self.length = length
        self.planes = np.zeros((2, length), dtype=dtype)
        self._plane_iter = [-1, -1]  # which iteration each plane holds
        self._counts = [0, 0]

    def plane_for(self, iteration: int, *, create: bool = True) -> np.ndarray | None:
        """The numpy row for an iteration (creating/recycling on demand)."""
        slot = iteration % 2
        if self._plane_iter[slot] != iteration:
            if not create:
                return None
            # recycle: drop whatever older iteration lived here
            self._plane_iter[slot] = iteration
            self._counts[slot] = 0
        return self.planes[slot]

    def bulk_set(self, iteration: int, start: int, values: np.ndarray) -> int:
        plane = self.plane_for(iteration)
        assert plane is not None
        plane[start : start + len(values)] = values
        self._counts[iteration % 2] = max(
            self._counts[iteration % 2], start + len(values)
        )
        return len(values)

    def note_written(self, iteration: int, upto: int) -> None:
        """Record that a rule wrote this iteration's plane directly up
        to index ``upto`` (the zero-copy variant of :meth:`bulk_set`)."""
        self.plane_for(iteration)
        self._counts[iteration % 2] = max(self._counts[iteration % 2], upto)

    def insert(self, tup: JTuple) -> bool:
        it = tup.values[self._iter_pos]
        idx = tup.values[self._index_pos]
        plane = self.plane_for(it)
        assert plane is not None
        plane[idx] = tup.values[self._vpos]
        self._counts[it % 2] = max(self._counts[it % 2], idx + 1)
        return True  # ring semantics: overwrite, no dedup bookkeeping

    def supports_checkpoint(self) -> bool:
        # ring semantics break the scan→insert round-trip contract
        # (inserts always overwrite, plane recycling depends on arrival
        # order); sessions over this store refuse to snapshot
        return False

    def __contains__(self, tup: JTuple) -> bool:
        it = tup.values[self._iter_pos]
        if self._plane_iter[it % 2] != it:
            return False
        idx = tup.values[self._index_pos]
        return self.planes[it % 2][idx].item() == tup.values[self._vpos]

    def __len__(self) -> int:
        return sum(self._counts)

    def scan(self) -> Iterator[JTuple]:
        schema = self.schema
        for slot in (0, 1):
            it = self._plane_iter[slot]
            if it < 0:
                continue
            for idx in range(self._counts[slot]):
                vals: list = [None] * len(schema.fields)
                vals[self._iter_pos] = it
                vals[self._index_pos] = idx
                vals[self._vpos] = self.planes[slot][idx].item()
                yield JTuple(schema, tuple(vals))

    def clear(self) -> None:
        self._plane_iter = [-1, -1]
        self._counts = [0, 0]

    def lookup_key(self, key: tuple) -> JTuple | None:
        it, idx = key
        if self._plane_iter[it % 2] != it or idx >= self._counts[it % 2]:
            return None
        vals: list = [None] * len(self.schema.fields)
        vals[self._iter_pos] = it
        vals[self._index_pos] = idx
        vals[self._vpos] = self.planes[it % 2][idx].item()
        return JTuple(self.schema, tuple(vals))

    def heap_tuples(self) -> int:
        return 0
