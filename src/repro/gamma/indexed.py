"""Secondary-index wrapper for Gamma table stores.

:class:`IndexedStore` wraps any base :class:`~repro.gamma.base.TableStore`
and maintains the secondary indexes of an index plan (see
:mod:`repro.gamma.indexplan`) on every ``insert``/``discard``:

* a **hash index** buckets tuples by the values of its equality fields
  and serves queries whose equality constraints cover those fields;
* a **sorted index** additionally orders each bucket by one range
  field, pruning the bucket with binary search for ``ranges``
  constraints on that field.

``select`` picks the most selective usable index and filters the
candidates through :meth:`~repro.core.query.Query.matches` — the index
only narrows the candidate set, so residual ``where`` predicates and
extra constraints stay correct.  Queries no index serves fall back to
the base store's own ``select`` (which still exploits a fully-bound
primary key).  §1.3 determinism note: every index path yields results
sorted by tuple values, the same order the default tree/skip-list
stores produce, so switching ``index_mode`` cannot perturb downstream
iteration order (and hence output bytes).

:class:`IndexingRegistry` is the :class:`~repro.gamma.base.StoreRegistry`
decorator that applies a plan when the engine builds the database.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterator, Mapping

from repro.core.query import Query
from repro.core.schema import TableSchema
from repro.core.tuples import JTuple
from repro.gamma.base import CostProfile, PreparedSelect, StoreRegistry, TableStore
from repro.gamma.indexplan import IndexSpec

__all__ = ["IndexedStore", "IndexingRegistry"]

#: cost of one secondary-index probe — a couple of hashes and a bisect,
#: cheaper than any tree descent and far cheaper than a scan
HASH_PROBE_COST = 1.2
SORTED_PROBE_COST = 2.0
#: per-index surcharge on every insert/discard (bucket upkeep)
MAINTENANCE_COST = 0.6


class _HashIndex:
    """Buckets keyed by the equality fields' values; each bucket is kept
    sorted by full tuple values so yields match tree-store order."""

    __slots__ = ("spec", "positions", "buckets")

    probe_cost = HASH_PROBE_COST

    def __init__(self, spec: IndexSpec, schema: TableSchema):
        self.spec = spec
        self.positions = tuple(schema.field_position(n) for n in spec.eq_fields)
        self.buckets: dict[tuple, list[JTuple]] = {}

    def _key(self, tup: JTuple) -> tuple:
        values = tup.values
        return tuple(values[i] for i in self.positions)

    def add(self, tup: JTuple) -> None:
        insort(self.buckets.setdefault(self._key(tup), []), tup, key=lambda t: t.values)

    def remove(self, tup: JTuple) -> None:
        key = self._key(tup)
        bucket = self.buckets.get(key)
        if bucket is None:
            return
        i = bisect_left(bucket, tup.values, key=lambda t: t.values)
        while i < len(bucket) and bucket[i].values == tup.values:
            if bucket[i] is tup or bucket[i] == tup:
                del bucket[i]
                break
            i += 1
        if not bucket:
            del self.buckets[key]

    def clear(self) -> None:
        self.buckets.clear()

    # -- query planning ----------------------------------------------------

    def usable_for(self, query: Query) -> int | None:
        """Selectivity score if this index can serve the query, else
        ``None``.  Usable when the query's equality constraints cover
        every indexed field."""
        if query.eq_on(self.spec.eq_fields) is None:
            return None
        return len(self.spec.eq_fields)

    def candidates(self, query: Query) -> list[JTuple]:
        key = query.eq_on(self.spec.eq_fields)
        assert key is not None
        return self.buckets.get(key, [])


class _SortedIndex(_HashIndex):
    """A hash index whose buckets are ordered by one range field,
    allowing binary-search pruning for ``ranges`` constraints."""

    __slots__ = ("range_pos",)

    probe_cost = SORTED_PROBE_COST

    def __init__(self, spec: IndexSpec, schema: TableSchema):
        super().__init__(spec, schema)
        assert spec.range_field is not None
        self.range_pos = schema.field_position(spec.range_field)

    def _sort_key(self, tup: JTuple) -> tuple:
        # order by the range field first, full values second: range
        # pruning needs the former, dedup/removal the latter
        return (tup.values[self.range_pos], tup.values)

    def add(self, tup: JTuple) -> None:
        insort(self.buckets.setdefault(self._key(tup), []), tup, key=self._sort_key)

    def remove(self, tup: JTuple) -> None:
        key = self._key(tup)
        bucket = self.buckets.get(key)
        if bucket is None:
            return
        i = bisect_left(bucket, self._sort_key(tup), key=self._sort_key)
        while i < len(bucket) and bucket[i].values == tup.values:
            if bucket[i] is tup or bucket[i] == tup:
                del bucket[i]
                break
            i += 1
        if not bucket:
            del self.buckets[key]

    def usable_for(self, query: Query) -> int | None:
        if query.eq_on(self.spec.eq_fields) is None:
            return None
        constrained = (
            self.range_pos in query.ranges or self.range_pos in query.eq
        )
        # the ordered field adds selectivity only when constrained; an
        # unconstrained sorted index still serves the eq part
        return len(self.spec.eq_fields) + (1 if constrained else 0)

    def candidates(self, query: Query) -> list[JTuple]:
        key = query.eq_on(self.spec.eq_fields)
        assert key is not None
        bucket = self.buckets.get(key, [])
        if not bucket:
            return bucket
        if self.range_pos in query.eq:
            v = query.eq[self.range_pos]
            lo = bisect_left(bucket, v, key=lambda t: t.values[self.range_pos])
            hi = bisect_right(bucket, v, key=lambda t: t.values[self.range_pos])
            return bucket[lo:hi]
        if self.range_pos in query.ranges:
            lo_v, hi_v, lo_inc, hi_inc = query.ranges[self.range_pos]
            lo = 0
            hi = len(bucket)
            field = lambda t: t.values[self.range_pos]
            if lo_v is not None:
                lo = (bisect_left if lo_inc else bisect_right)(bucket, lo_v, key=field)
            if hi_v is not None:
                hi = (bisect_right if hi_inc else bisect_left)(bucket, hi_v, key=field)
            return bucket[lo:hi]
        return bucket


class IndexedStore(TableStore):
    """A base store plus the secondary indexes of one table's plan.

    Everything the base store guarantees (set semantics, key invariant
    support, scan order) is delegated; this wrapper only adds index
    maintenance on mutation and an index-first ``select`` path.
    """

    def __init__(self, base: TableStore, specs: tuple[IndexSpec, ...]):
        super().__init__(base.schema)
        if not specs:
            raise ValueError(f"IndexedStore({base.schema.name}) needs at least one index")
        self.base = base
        self.indexes: tuple[_HashIndex, ...] = tuple(
            (_HashIndex if s.range_field is None else _SortedIndex)(s, base.schema)
            for s in specs
        )
        for s in specs:
            s.validate(base.schema)
        self.kind = f"indexed[{base.kind}]"
        # index upkeep makes every insert a bit dearer; the win comes
        # back on the lookup side
        bc = base.cost
        self.cost = CostProfile(
            insert_cost=bc.insert_cost + MAINTENANCE_COST * len(self.indexes),
            lookup_cost=bc.lookup_cost,
            result_cost=bc.result_cost,
            resource=bc.resource,
            serial_fraction=bc.serial_fraction,
        )
        # hit counters for the advisor's report (reads are racy-but-
        # monotonic; select runs under the engine's coarse lock in
        # threads mode anyway)
        self.key_hits = 0
        self.scan_fallbacks = 0
        self.index_hits: dict[IndexSpec, int] = {ix.spec: 0 for ix in self.indexes}

    # -- mutation: delegate, then maintain ---------------------------------

    def insert(self, tup: JTuple) -> bool:
        added = self.base.insert(tup)
        if added:
            for ix in self.indexes:
                ix.add(tup)
        return added

    def discard(self, tup: JTuple) -> bool:
        removed = self.base.discard(tup)
        if removed:
            for ix in self.indexes:
                ix.remove(tup)
        return removed

    def remove(self, tup: JTuple) -> bool:
        # retraction-exact: delegate to the base store's *remove* (it
        # may be stricter than its GC discard), then unwind the indexes
        removed = self.base.remove(tup)
        if removed:
            for ix in self.indexes:
                ix.remove(tup)
        return removed

    def clear(self) -> None:
        self.base.clear()
        for ix in self.indexes:
            ix.clear()

    # -- reads: delegate ----------------------------------------------------

    def __contains__(self, tup: JTuple) -> bool:
        return tup in self.base

    def __len__(self) -> int:
        return len(self.base)

    def scan(self) -> Iterator[JTuple]:
        return self.base.scan()

    def lookup_key(self, key: tuple) -> JTuple | None:
        return self.base.lookup_key(key)

    def heap_tuples(self) -> int:
        return self.base.heap_tuples()

    # -- the point of the exercise ------------------------------------------

    def _plan_query(self, query: Query) -> _HashIndex | None:
        """The most selective index able to serve this query (ties break
        towards the earliest index in plan order — deterministic)."""
        best: _HashIndex | None = None
        best_score = -1
        for ix in self.indexes:
            score = ix.usable_for(query)
            if score is not None and score > best_score:
                best, best_score = ix, score
        return best

    def select(self, query: Query) -> Iterator[JTuple]:
        if query.key_if_fully_bound() is not None:
            self.key_hits += 1
            yield from self.base.select(query)
            return
        ix = self._plan_query(query)
        if ix is None:
            self.scan_fallbacks += 1
            yield from self.base.select(query)
            return
        self.index_hits[ix.spec] += 1
        # candidates are bucket-sorted; a sorted index orders by the
        # range field first, so re-sort by values to keep the §1.3
        # deterministic yield order of the default stores
        for tup in sorted(ix.candidates(query), key=lambda t: t.values):
            if query.matches(tup):
                yield tup

    def lookup_cost_for(self, query: Query) -> tuple[float, str]:
        if query.key_if_fully_bound() is not None:
            return self.base.lookup_cost_for(query)
        ix = self._plan_query(query)
        if ix is None:
            return (self.base.cost.lookup_cost, "lookup")
        return (min(ix.probe_cost, self.base.cost.lookup_cost), "ixlookup")

    def prepare(self, query: Query) -> PreparedSelect:
        """Index selection per *shape* instead of per select: the key /
        index / fallback decision of :meth:`select` (and the matching
        cost of :meth:`lookup_cost_for`) only reads constrained
        positions.  Each runner bumps exactly the hit counter the
        per-call path would, so the advisor's report is unchanged."""
        name = self.schema.name
        base = self.base
        if query.key_if_fully_bound() is not None:
            cost, tag = base.lookup_cost_for(query)

            def run(q: Query) -> list[JTuple]:
                self.key_hits += 1
                return list(base.select(q))

        else:
            ix = self._plan_query(query)
            if ix is None:
                cost, tag = base.cost.lookup_cost, "lookup"

                def run(q: Query) -> list[JTuple]:
                    self.scan_fallbacks += 1
                    return list(base.select(q))

            else:
                cost, tag = min(ix.probe_cost, base.cost.lookup_cost), "ixlookup"
                hits = self.index_hits
                spec = ix.spec

                def run(q: Query, _ix=ix) -> list[JTuple]:
                    hits[spec] += 1
                    return [
                        t
                        for t in sorted(_ix.candidates(q), key=lambda t: t.values)
                        if q.matches(t)
                    ]

        return PreparedSelect(run, cost, tag, self.cost, name)

    # -- reporting -----------------------------------------------------------

    def index_usage(self) -> dict[str, int]:
        """Per-path select counts: each index's label plus the ``key``
        fast path and the base-store ``scan`` fallback."""
        usage = {ix.spec.label(): self.index_hits[ix.spec] for ix in self.indexes}
        usage["key"] = self.key_hits
        usage["scan"] = self.scan_fallbacks
        return usage

    def __repr__(self) -> str:
        labels = ", ".join(ix.spec.label() for ix in self.indexes)
        return f"<IndexedStore {self.schema.name} over {self.base!r} [{labels}]>"


class IndexingRegistry(StoreRegistry):
    """A store registry that wraps the stores of planned tables in
    :class:`IndexedStore`.  Tables outside the plan are created exactly
    as the inner registry would."""

    def __init__(self, inner: StoreRegistry, plan: Mapping[str, tuple[IndexSpec, ...]]):
        self._inner = inner
        self._plan = {t: tuple(specs) for t, specs in plan.items() if specs}

    def override(self, table_name: str, factory) -> None:
        self._inner.override(table_name, factory)

    def has_override(self, table_name: str) -> bool:
        return self._inner.has_override(table_name)

    def create(self, schema: TableSchema) -> TableStore:
        store = self._inner.create(schema)
        specs = self._plan.get(schema.name)
        if specs:
            return IndexedStore(store, specs)
        return store

    @property
    def plan(self) -> dict[str, tuple[IndexSpec, ...]]:
        return dict(self._plan)
