"""Ordered Gamma stores: the TreeSet / ConcurrentSkipListSet analogues.

"The default data structure for tables in the Gamma database is a Java
``TreeSet`` for sequential code or a ``ConcurrentSkipListSet`` for
parallel code, which both support ordered traversals so that queries
need only traverse a subset of the table." (§6.2)

Both variants here share one skip-list implementation (see
:mod:`repro.gamma.skiplist`); they differ in their
:class:`~repro.gamma.base.CostProfile` — the concurrent variant costs
more per op and serialises a fraction of each op on a per-table shared
resource, which is how the paper's ≈35 % sequential-vs-concurrent gap
(§6.2) and its "relative vs absolute speedup" distinction enter the
virtual-time model.

Tuples are keyed by their full value tuple, so equality constraints on
a *prefix* of the fields become ordered range scans — the "queries of
any ordered subset" property above.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.query import Query
from repro.core.schema import TableSchema
from repro.core.tuples import JTuple
from repro.gamma.base import CostProfile, PreparedSelect, TableStore
from repro.gamma.skiplist import SkipListMap

__all__ = ["TreeSetStore", "ConcurrentSkipListStore"]


class TreeSetStore(TableStore):
    """Sequential ordered store (TreeSet analogue)."""

    kind = "treeset"
    cost = CostProfile(insert_cost=3.0, lookup_cost=3.0, result_cost=0.3)

    def __init__(self, schema: TableSchema, seed: int = 0x5EED):
        super().__init__(schema)
        self._map = SkipListMap(seed)
        # Keyed tables get a direct key index so lookup_key is O(log n)
        # even when the key is not a prefix of the field order.
        self._by_key: SkipListMap | None = SkipListMap(seed ^ 0xA5) if schema.has_key else None

    def insert(self, tup: JTuple) -> bool:
        before = len(self._map)
        self._map.setdefault(tup.values, tup)
        new = len(self._map) != before
        if new and self._by_key is not None:
            self._by_key.insert(tup.key(), tup)
        return new

    def __contains__(self, tup: JTuple) -> bool:
        return tup.values in self._map

    def __len__(self) -> int:
        return len(self._map)

    def scan(self) -> Iterator[JTuple]:
        return self._map.values()

    def clear(self) -> None:
        self._map.clear()
        if self._by_key is not None:
            self._by_key.clear()

    def lookup_key(self, key: tuple) -> JTuple | None:
        if self._by_key is None:
            return super().lookup_key(key)
        return self._by_key.get(key)

    def discard(self, tup: JTuple) -> bool:
        removed = self._map.delete(tup.values)
        if removed and self._by_key is not None:
            self._by_key.delete(tup.key())
        return removed

    def remove(self, tup: JTuple) -> bool:
        # retraction-exact: discard already unwinds the key index too
        return self.discard(tup)

    def select(self, query: Query) -> Iterator[JTuple]:
        key = query.key_if_fully_bound()
        if key is not None:
            t = self.lookup_key(key)
            if t is not None and query.matches(t):
                yield t
            return
        # Longest all-equality prefix of the field order -> range scan.
        k = 0
        while k in query.eq:
            k += 1
        if k == 0:
            yield from query.filter(self._map.values())
            return
        prefix = tuple(query.eq[i] for i in range(k))
        for values, tup in self._map.items_from(prefix):
            if values[:k] != prefix:
                break
            if query.matches(tup):
                yield tup

    def prepare(self, query: Query) -> PreparedSelect:
        """Shape-resolved select: the key-vs-prefix-vs-scan decision of
        :meth:`select` depends only on which positions are constrained,
        so make it once and hand back a runner for that path."""
        cost, tag = self.lookup_cost_for(query)
        if query.key_if_fully_bound() is not None:
            key_idx = self.schema.key_indexes

            def run(q: Query) -> list[JTuple]:
                t = self.lookup_key(tuple(q.eq[i] for i in key_idx))
                if t is not None and q.matches(t):
                    return [t]
                return []

        else:
            k = 0
            while k in query.eq:
                k += 1
            if k == 0:

                def run(q: Query) -> list[JTuple]:
                    return [t for t in self._map.values() if q.matches(t)]

            else:
                n = k

                def run(q: Query) -> list[JTuple]:
                    prefix = tuple(q.eq[i] for i in range(n))
                    out: list[JTuple] = []
                    for values, tup in self._map.items_from(prefix):
                        if values[:n] != prefix:
                            break
                        if q.matches(tup):
                            out.append(tup)
                    return out

        return PreparedSelect(run, cost, tag, self.cost, self.schema.name)


class ConcurrentSkipListStore(TreeSetStore):
    """Parallel ordered store (ConcurrentSkipListSet analogue).

    Functionally identical to :class:`TreeSetStore`; its cost profile
    charges the concurrent-structure premium and serialises part of
    each op on the table's shared resource.
    """

    kind = "concurrent-skiplist"

    def __init__(self, schema: TableSchema, seed: int = 0x5EED):
        super().__init__(schema, seed)
        # Per-table contention domain named after the table.
        self.cost = CostProfile(
            insert_cost=6.0,
            lookup_cost=5.0,
            result_cost=0.5,
            resource=f"gamma:{schema.name}",
            serial_fraction=0.15,
        )
