"""Hash-based Gamma stores: HashSet/ConcurrentHashMap analogues and the
paper's custom "array-of-hashsets" PvWatts store.

"But since this PvWatts program always queries the PvWatts table with a
known year and month, we can use a HashSet or ConcurrentHashMap, which
are considerably more efficient.  After some experimentation, we
manually implemented a custom data structure for the PvWatts Gamma
database that has an array indexed by month (1..12) at the top level,
and either a HashSet or ConcurrentHashMap within each entry of the
array." (§6.2)

Three stores:

* :class:`HashKeyStore` — for keyed tables: dict key → tuple;
* :class:`HashIndexStore` — hash index over a chosen field subset, each
  bucket a set of tuples (HashSet analogue);
* :class:`ArrayOfHashSetsStore` — a dense array over a small-int field,
  one hash bucket per slot (the custom PvWatts structure).  Because
  consumers touching *different* months touch different buckets, its
  cost profile has a much smaller serial fraction than a single shared
  map — this is what makes it the fastest parallel backend in Fig 8.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.errors import SchemaError
from repro.core.query import Query
from repro.core.schema import TableSchema
from repro.core.tuples import JTuple
from repro.gamma.base import CostProfile, PreparedSelect, TableStore

__all__ = ["HashKeyStore", "HashIndexStore", "ArrayOfHashSetsStore"]


class HashKeyStore(TableStore):
    """Keyed table as a hash map key → tuple (HashMap analogue).

    Requires a primary key.  ``select`` is O(1) when the key is fully
    bound, otherwise a scan.
    """

    kind = "hashkey"
    cost = CostProfile(insert_cost=1.0, lookup_cost=1.0, result_cost=0.25)

    def __init__(self, schema: TableSchema, concurrent: bool = False):
        super().__init__(schema)
        if not schema.has_key:
            raise SchemaError(f"HashKeyStore needs a keyed table, {schema.name} has none")
        self._data: dict[tuple, JTuple] = {}
        if concurrent:
            self.kind = "concurrent-hashkey"
            self.cost = CostProfile(
                insert_cost=1.6,
                lookup_cost=1.3,
                result_cost=0.3,
                resource=f"gamma:{schema.name}",
                serial_fraction=0.08,
            )

    def insert(self, tup: JTuple) -> bool:
        key = tup.key()
        existing = self._data.get(key)
        if existing is not None:
            # exact dup vs key conflict is adjudicated by the Database
            return False if existing == tup else self._conflict(tup)
        self._data[key] = tup
        return True

    def _conflict(self, tup: JTuple) -> bool:
        # The Database layer raises KeyInvariantError before we get here;
        # direct store users get a best-effort rejection.
        raise SchemaError(
            f"key conflict in {self.schema.name}: {tup.key()!r} already bound"
        )

    def __contains__(self, tup: JTuple) -> bool:
        return self._data.get(tup.key()) == tup

    def __len__(self) -> int:
        return len(self._data)

    def scan(self) -> Iterator[JTuple]:
        return iter(self._data.values())

    def clear(self) -> None:
        self._data.clear()

    def lookup_key(self, key: tuple) -> JTuple | None:
        return self._data.get(key)

    def discard(self, tup: JTuple) -> bool:
        if self._data.get(tup.key()) == tup:
            del self._data[tup.key()]
            return True
        return False

    def remove(self, tup: JTuple) -> bool:
        # retraction-exact: the key map is the whole representation
        return self.discard(tup)

    def prepare(self, query: Query) -> PreparedSelect:
        """Fully-bound key shapes become a single dict probe; when the
        shape binds *exactly* the key (no ranges), every hit matches by
        construction and only the residual ``where`` runs."""
        cost, tag = self.lookup_cost_for(query)
        if query.key_if_fully_bound() is not None:
            key_idx = self.schema.key_indexes
            data = self._data
            if len(query.eq) == len(key_idx) and not query.ranges:

                def run(q: Query) -> list[JTuple]:
                    t = data.get(tuple(q.eq[i] for i in key_idx))
                    if t is None:
                        return []
                    w = q.where
                    return [t] if w is None or w(t) else []

            else:

                def run(q: Query) -> list[JTuple]:
                    t = data.get(tuple(q.eq[i] for i in key_idx))
                    if t is not None and q.matches(t):
                        return [t]
                    return []

            return PreparedSelect(run, cost, tag, self.cost, self.schema.name)
        return super().prepare(query)


class HashIndexStore(TableStore):
    """Hash index over a field subset; buckets are sets of tuples.

    ``index_fields`` defaults to the primary key, or the first field if
    the table is unkeyed.  Queries binding exactly those fields hit one
    bucket; anything else scans.
    """

    kind = "hashindex"
    cost = CostProfile(insert_cost=1.2, lookup_cost=1.1, result_cost=0.25)

    def __init__(
        self,
        schema: TableSchema,
        index_fields: tuple[str, ...] | None = None,
        concurrent: bool = False,
    ):
        super().__init__(schema)
        if index_fields is None:
            if schema.has_key:
                index_fields = tuple(schema.field_names[i] for i in schema.key_indexes)
            else:
                index_fields = (schema.field_names[0],)
        self.index_fields = index_fields
        self._positions = tuple(schema.field_position(n) for n in index_fields)
        self._buckets: dict[tuple, set[JTuple]] = {}
        self._size = 0
        if concurrent:
            self.kind = "concurrent-hashindex"
            self.cost = CostProfile(
                insert_cost=1.9,
                lookup_cost=1.5,
                result_cost=0.3,
                resource=f"gamma:{schema.name}",
                serial_fraction=0.08,
            )

    def _bucket_key(self, tup: JTuple) -> tuple:
        values = tup.values
        return tuple(values[i] for i in self._positions)

    def insert(self, tup: JTuple) -> bool:
        bucket = self._buckets.setdefault(self._bucket_key(tup), set())
        if tup in bucket:
            return False
        bucket.add(tup)
        self._size += 1
        return True

    def __contains__(self, tup: JTuple) -> bool:
        bucket = self._buckets.get(self._bucket_key(tup))
        return bucket is not None and tup in bucket

    def __len__(self) -> int:
        return self._size

    def scan(self) -> Iterator[JTuple]:
        for bucket in self._buckets.values():
            yield from bucket

    def clear(self) -> None:
        self._buckets.clear()
        self._size = 0

    def discard(self, tup: JTuple) -> bool:
        bucket = self._buckets.get(self._bucket_key(tup))
        if bucket is not None and tup in bucket:
            bucket.remove(tup)
            self._size -= 1
            return True
        return False

    def remove(self, tup: JTuple) -> bool:
        # retraction-exact: bucket membership and size stay consistent
        return self.discard(tup)

    def select(self, query: Query) -> Iterator[JTuple]:
        bound = query.eq_on(self.index_fields)
        if bound is not None:
            bucket = self._buckets.get(bound, ())
            yield from query.filter(bucket)
            return
        key = query.key_if_fully_bound()
        if key is not None:
            t = self.lookup_key(key)
            if t is not None and query.matches(t):
                yield t
            return
        yield from query.filter(self.scan())

    def prepare(self, query: Query) -> PreparedSelect:
        """Index-covered shapes resolve to their bucket probe once.  A
        shape binding exactly the index fields (no ranges) skips the
        per-tuple eq re-check entirely: bucket members share those
        values by construction."""
        cost, tag = self.lookup_cost_for(query)
        pos = self._positions
        eq = query.eq
        if all(p in eq for p in pos):
            buckets = self._buckets
            if len(eq) == len(pos) and not query.ranges:

                def run(q: Query) -> list[JTuple]:
                    bucket = buckets.get(tuple(q.eq[i] for i in pos))
                    if not bucket:
                        return []
                    w = q.where
                    if w is None:
                        return list(bucket)
                    return [t for t in bucket if w(t)]

            else:

                def run(q: Query) -> list[JTuple]:
                    bucket = buckets.get(tuple(q.eq[i] for i in pos))
                    if not bucket:
                        return []
                    return [t for t in bucket if q.matches(t)]

            return PreparedSelect(run, cost, tag, self.cost, self.schema.name)
        return super().prepare(query)


class ArrayOfHashSetsStore(TableStore):
    """The paper's custom PvWatts store: dense array over a small-int
    field, a hash set per slot.

    Different slots are *independent* contention domains — a consumer
    per month never contends — so the serial fraction is tiny compared
    to one shared concurrent map.
    """

    kind = "array-of-hashsets"

    def __init__(
        self,
        schema: TableSchema,
        slot_field: str,
        lo: int,
        hi: int,
        concurrent: bool = False,
    ):
        super().__init__(schema)
        if hi < lo:
            raise SchemaError(f"bad slot range [{lo}, {hi}]")
        self.slot_field = slot_field
        self._pos = schema.field_position(slot_field)
        self.lo = lo
        self.hi = hi
        self._slots: list[set[JTuple]] = [set() for _ in range(hi - lo + 1)]
        self._size = 0
        if concurrent:
            self.cost = CostProfile(
                insert_cost=1.1,
                lookup_cost=1.0,
                result_cost=0.25,
                resource=f"gamma:{schema.name}",
                serial_fraction=0.01,
            )
        else:
            self.cost = CostProfile(insert_cost=0.9, lookup_cost=0.9, result_cost=0.25)

    def _slot(self, value: int) -> set[JTuple]:
        idx = value - self.lo
        if not (0 <= idx < len(self._slots)):
            raise SchemaError(
                f"{self.schema.name}.{self.slot_field}={value} outside "
                f"array range [{self.lo}, {self.hi}]"
            )
        return self._slots[idx]

    def insert(self, tup: JTuple) -> bool:
        slot = self._slot(tup.values[self._pos])
        if tup in slot:
            return False
        slot.add(tup)
        self._size += 1
        return True

    def __contains__(self, tup: JTuple) -> bool:
        return tup in self._slot(tup.values[self._pos])

    def __len__(self) -> int:
        return self._size

    def scan(self) -> Iterator[JTuple]:
        for slot in self._slots:
            yield from slot

    def clear(self) -> None:
        for slot in self._slots:
            slot.clear()
        self._size = 0

    def discard(self, tup: JTuple) -> bool:
        slot = self._slot(tup.values[self._pos])
        if tup in slot:
            slot.remove(tup)
            self._size -= 1
            return True
        return False

    def select(self, query: Query) -> Iterator[JTuple]:
        if self._pos in query.eq:
            slot = self._slot(query.eq[self._pos])
            yield from query.filter(slot)
            return
        yield from query.filter(self.scan())

    def prepare(self, query: Query) -> PreparedSelect:
        """Slot-covered shapes resolve to the array probe once; a shape
        binding only the slot field (no ranges) needs just the residual
        ``where`` — slot members share the slot value by construction."""
        cost, tag = self.lookup_cost_for(query)
        pos = self._pos
        if pos in query.eq:
            if len(query.eq) == 1 and not query.ranges:

                def run(q: Query) -> list[JTuple]:
                    slot = self._slot(q.eq[pos])
                    if not slot:
                        return []
                    w = q.where
                    if w is None:
                        return list(slot)
                    return [t for t in slot if w(t)]

            else:

                def run(q: Query) -> list[JTuple]:
                    slot = self._slot(q.eq[pos])
                    return [t for t in slot if q.matches(t)]

            return PreparedSelect(run, cost, tag, self.cost, self.schema.name)
        return super().prepare(query)
