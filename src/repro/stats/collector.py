"""Run-statistics collector.

§1.5: JStar supports "a logging system for recording usage statistics
about each table during a program run, and tools to visualise those
logs as annotated dependency graphs of the program execution.  This is
a useful basis for choosing parallelisation strategies."

The collector records, per table: tuples put, duplicates discarded,
Delta traversals, Gamma insertions, queries served and results
returned; per rule: firings and puts; and the table→rule→table edges
actually exercised (which tables triggered which rules, which tables
those rules put into).  :mod:`repro.stats.depgraph` turns this into the
annotated dependency graphs of Figs 7/9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TableStats", "RuleStats", "StatsCollector"]


@dataclass
class TableStats:
    """Usage counters for one table."""

    puts: int = 0            # tuples put by rules / initial puts
    duplicates: int = 0      # discarded by set semantics
    delta_inserts: int = 0   # entered the Delta tree
    delta_bypass: int = 0    # -noDelta direct-to-Gamma path
    gamma_inserts: int = 0   # stored in Gamma
    gamma_skipped: int = 0   # -noGamma: never stored
    gamma_discarded: int = 0 # pruned by lifetime hints (§5 step 4)
    queries: int = 0         # queries answered from this table
    results: int = 0         # tuples returned by those queries
    triggers: int = 0        # rule firings triggered by this table


@dataclass
class RuleStats:
    """Usage counters for one rule."""

    firings: int = 0
    puts: int = 0
    output_lines: int = 0


@dataclass
class StatsCollector:
    """Whole-run statistics; cheap enough to stay on by default."""

    tables: dict[str, TableStats] = field(default_factory=dict)
    rules: dict[str, RuleStats] = field(default_factory=dict)
    #: (trigger table, rule name) firing edges
    trigger_edges: dict[tuple[str, str], int] = field(default_factory=dict)
    #: (rule name, output table) put edges
    put_edges: dict[tuple[str, str], int] = field(default_factory=dict)
    #: (rule name, queried table) read edges
    query_edges: dict[tuple[str, str], int] = field(default_factory=dict)
    #: observed query shapes: (table, eq-bound fields, range fields) -> count.
    #: This is the §1.4 raw material: "static analysis on the queries
    #: that are performed ... before deciding how to represent the data,
    #: which fields should be indexed" — here gathered dynamically, the
    #: way the paper's logging subsystem feeds tuning decisions.
    query_shapes: dict[tuple[str, tuple[str, ...], tuple[str, ...]], int] = field(
        default_factory=dict
    )
    #: the same shapes keyed by the querying rule:
    #: (rule, table, eq-bound fields, range fields) -> count.  This is
    #: what lets the locality checker classify *observed* queries of
    #: rules that carry no symbolic metadata (opaque Python bodies).
    rule_query_shapes: dict[
        tuple[str, str, tuple[str, ...], tuple[str, ...]], int
    ] = field(default_factory=dict)
    steps: int = 0
    max_batch: int = 0
    #: per-step frontier widths, in step order — the all-minimums
    #: parallelism profile (how wide each equivalence class was)
    frontier_widths: list[int] = field(default_factory=list)
    #: injected-fault counters (chaos strategy): kind -> count
    faults: dict[str, int] = field(default_factory=dict)
    #: retraction mode: tuples removed by over-delete/repair (cumulative
    #: — a tuple retracted and later rederived counts in both)
    retractions: int = 0
    #: retraction mode: triggers re-enqueued by DRed rederivation
    rederivations: int = 0
    #: engine configuration notes: options the engine adjusted (e.g.
    #: metering forced on by a virtual-time strategy) — surfaced in
    #: ``run_report`` so knob overrides are never silent
    notes: list[str] = field(default_factory=list)
    #: per-settle deltas of an incremental session: one record per
    #: ``settle()`` call with the steps/fires/puts/output it added
    settles: list[dict] = field(default_factory=list)

    def table(self, name: str) -> TableStats:
        s = self.tables.get(name)
        if s is None:
            s = self.tables[name] = TableStats()
        return s

    def rule(self, name: str) -> RuleStats:
        s = self.rules.get(name)
        if s is None:
            s = self.rules[name] = RuleStats()
        return s

    # -- event hooks used by the engine ------------------------------------

    def on_step(self, batch_size: int) -> None:
        self.steps += 1
        self.max_batch = max(self.max_batch, batch_size)
        self.frontier_widths.append(batch_size)

    def on_fault(self, kind: str) -> None:
        self.faults[kind] = self.faults.get(kind, 0) + 1

    def note(self, message: str) -> None:
        """Record a configuration note (knob override, restore caveat)."""
        if message not in self.notes:
            self.notes.append(message)

    def on_settle(self, record: dict) -> None:
        """Record one settle's frontier/fire deltas (incremental runs)."""
        self.settles.append(record)

    def on_fire(self, table: str, rule: str) -> None:
        self.table(table).triggers += 1
        self.rule(rule).firings += 1
        key = (table, rule)
        self.trigger_edges[key] = self.trigger_edges.get(key, 0) + 1

    def on_put(self, rule: str, table: str, n: int = 1) -> None:
        self.rule(rule).puts += n
        self.table(table).puts += n
        key = (rule, table)
        self.put_edges[key] = self.put_edges.get(key, 0) + n

    def on_query(
        self,
        rule: str,
        table: str,
        n_results: int,
        eq_fields: tuple[str, ...] = (),
        range_fields: tuple[str, ...] = (),
    ) -> None:
        t = self.table(table)
        t.queries += 1
        t.results += n_results
        key = (rule, table)
        self.query_edges[key] = self.query_edges.get(key, 0) + 1
        shape = (table, eq_fields, range_fields)
        self.query_shapes[shape] = self.query_shapes.get(shape, 0) + 1
        rshape = (rule, table, eq_fields, range_fields)
        self.rule_query_shapes[rshape] = self.rule_query_shapes.get(rshape, 0) + 1

    def absorb_planned(self, plans) -> None:
        """Fold the per-plan query tallies (see
        :attr:`~repro.plan.compile.CompiledQueryPlan.rule_hits`) into the
        collector — called once at run end; totals are identical to
        having routed every planned query through :meth:`on_query`."""
        for plan in plans:
            if not plan.rule_hits:
                continue
            shape = plan.stat_shape
            table = shape[0]
            t = self.table(table)
            for rule, (n_queries, n_results) in plan.rule_hits.items():
                t.queries += n_queries
                t.results += n_results
                key = (rule, table)
                self.query_edges[key] = self.query_edges.get(key, 0) + n_queries
                rshape = (rule, *shape)
                self.rule_query_shapes[rshape] = (
                    self.rule_query_shapes.get(rshape, 0) + n_queries
                )
            self.query_shapes[shape] = (
                self.query_shapes.get(shape, 0)
                + sum(h[0] for h in plan.rule_hits.values())
            )

    def absorb_tallies(
        self,
        fire_tallies: dict[tuple[str, str], int],
        put_tallies: dict[tuple[str, str], int],
    ) -> None:
        """Fold the engine's deferred firing/put tallies into the
        collector — called once at run end; totals are identical to
        having routed every event through :meth:`on_fire` /
        :meth:`on_put`."""
        for (table, rule), n in fire_tallies.items():
            self.table(table).triggers += n
            self.rule(rule).firings += n
            self.trigger_edges[(table, rule)] = (
                self.trigger_edges.get((table, rule), 0) + n
            )
        for (rule, table), n in put_tallies.items():
            self.rule(rule).puts += n
            self.table(table).puts += n
            self.put_edges[(rule, table)] = self.put_edges.get((rule, table), 0) + n

    def absorb_table_tallies(self, tallies: dict[str, list[int]]) -> None:
        """Fold the engine's deferred per-table counters (same scheme as
        :meth:`absorb_tallies`; list layout fixed by the engine)."""
        for name, (bypass, dups, gins, gskip, dins) in tallies.items():
            t = self.table(name)
            t.delta_bypass += bypass
            t.duplicates += dups
            t.gamma_inserts += gins
            t.gamma_skipped += gskip
            t.delta_inserts += dins

    def shapes_for(self, table: str) -> dict[tuple[tuple[str, ...], tuple[str, ...]], int]:
        """Observed (eq fields, range fields) -> count for one table."""
        return {
            (eq, rng): n
            for (t, eq, rng), n in self.query_shapes.items()
            if t == table
        }

    # -- reporting -----------------------------------------------------------

    def summary_rows(self) -> list[tuple[str, TableStats]]:
        return sorted(self.tables.items())

    def frontier_profile(self) -> dict[str, float]:
        """Summary of per-step frontier widths: how much all-minimums
        parallelism the program actually exposed."""
        widths = self.frontier_widths
        if not widths:
            return {"steps": 0, "mean": 0.0, "max": 0, "singletons": 0}
        return {
            "steps": len(widths),
            "mean": sum(widths) / len(widths),
            "max": max(widths),
            "singletons": sum(1 for w in widths if w == 1),
        }

    def as_dict(self) -> dict:
        return {
            "steps": self.steps,
            "max_batch": self.max_batch,
            "frontier": self.frontier_profile(),
            "faults": dict(sorted(self.faults.items())),
            "retractions": self.retractions,
            "rederivations": self.rederivations,
            "tables": {n: vars(s) for n, s in self.tables.items()},
            "rules": {n: vars(s) for n, s in self.rules.items()},
            # the incremental-session view: knob-override notes and the
            # per-settle delta records — this dict is what the session
            # service's ``stats`` verb returns for a tenant
            "notes": list(self.notes),
            "settles": [dict(s) for s in self.settles],
        }

    # -- checkpointing --------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serialisable form for session snapshots (tuple-keyed
        edge dicts are encoded as lists)."""
        return {
            "tables": {n: vars(s).copy() for n, s in self.tables.items()},
            "rules": {n: vars(s).copy() for n, s in self.rules.items()},
            "trigger_edges": [[a, b, n] for (a, b), n in self.trigger_edges.items()],
            "put_edges": [[a, b, n] for (a, b), n in self.put_edges.items()],
            "query_edges": [[a, b, n] for (a, b), n in self.query_edges.items()],
            "query_shapes": [
                [t, list(eq), list(rng), n]
                for (t, eq, rng), n in self.query_shapes.items()
            ],
            "rule_query_shapes": [
                [r, t, list(eq), list(rng), n]
                for (r, t, eq, rng), n in self.rule_query_shapes.items()
            ],
            "steps": self.steps,
            "max_batch": self.max_batch,
            "frontier_widths": list(self.frontier_widths),
            "faults": dict(self.faults),
            "retractions": self.retractions,
            "rederivations": self.rederivations,
            "notes": list(self.notes),
            "settles": [dict(s) for s in self.settles],
        }

    def load_state(self, state: dict) -> None:
        """Restore in place (the engine's strategies hold references to
        this collector, so the instance must not be replaced)."""
        self.tables = {
            n: TableStats(**{k: int(v) for k, v in d.items()})
            for n, d in state.get("tables", {}).items()
        }
        self.rules = {
            n: RuleStats(**{k: int(v) for k, v in d.items()})
            for n, d in state.get("rules", {}).items()
        }
        self.trigger_edges = {
            (a, b): int(n) for a, b, n in state.get("trigger_edges", [])
        }
        self.put_edges = {(a, b): int(n) for a, b, n in state.get("put_edges", [])}
        self.query_edges = {(a, b): int(n) for a, b, n in state.get("query_edges", [])}
        self.query_shapes = {
            (t, tuple(eq), tuple(rng)): int(n)
            for t, eq, rng, n in state.get("query_shapes", [])
        }
        self.rule_query_shapes = {
            (r, t, tuple(eq), tuple(rng)): int(n)
            for r, t, eq, rng, n in state.get("rule_query_shapes", [])
        }
        self.steps = int(state.get("steps", 0))
        self.max_batch = int(state.get("max_batch", 0))
        self.frontier_widths = [int(w) for w in state.get("frontier_widths", [])]
        self.faults = {str(k): int(v) for k, v in state.get("faults", {}).items()}
        self.retractions = int(state.get("retractions", 0))
        self.rederivations = int(state.get("rederivations", 0))
        self.notes = [str(n) for n in state.get("notes", [])]
        self.settles = [dict(s) for s in state.get("settles", [])]
