"""Text reports over run statistics and machine accounts.

The profiling companion of §2's workflow stages 3–4: after a run,
print per-table usage, per-rule firings, and the virtual-machine time
breakdown (busy / contention / GC / overhead) that guides strategy and
data-structure choices.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simcore.machine import MachineReport
from repro.stats.collector import StatsCollector

if TYPE_CHECKING:  # pragma: no cover — avoids a circular import with the engine
    from repro.core.engine import RunResult

__all__ = [
    "format_table_stats",
    "format_rule_stats",
    "format_machine",
    "format_settles",
    "format_nodes",
    "run_report",
]


def _table_text(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def format_table_stats(stats: StatsCollector) -> str:
    headers = ["table", "puts", "dups", "delta", "bypass", "gamma", "queries", "results"]
    rows = []
    for name, t in stats.summary_rows():
        rows.append(
            [
                name,
                str(t.puts),
                str(t.duplicates),
                str(t.delta_inserts),
                str(t.delta_bypass),
                str(t.gamma_inserts),
                str(t.queries),
                str(t.results),
            ]
        )
    return _table_text(headers, rows)


def format_rule_stats(stats: StatsCollector) -> str:
    headers = ["rule", "firings", "puts", "output"]
    rows = [
        [name, str(r.firings), str(r.puts), str(r.output_lines)]
        for name, r in sorted(stats.rules.items())
    ]
    return _table_text(headers, rows)


def format_machine(report: MachineReport) -> str:
    d = report.as_dict()
    return (
        f"virtual machine: {d['n_cores']} cores, elapsed {d['elapsed']:.1f} wu\n"
        f"  busy {d['busy']:.1f}  contention {d['contention']:.1f}  "
        f"gc {d['gc_time']:.1f}  overhead {d['overhead']:.1f}\n"
        f"  steps {d['steps']}  tasks {d['tasks']}  max batch {d['max_batch']}  "
        f"utilisation {d['utilisation']:.1%}"
    )


def format_settles(settles: list[dict]) -> str:
    """Per-settle frontier/fire deltas of an incremental session run."""
    headers = ["settle", "fed", "steps", "fires", "puts", "output", "max width"]
    rows = [
        [
            str(s.get("settle", i + 1)),
            str(s.get("fed", 0)),
            str(s.get("steps", 0)),
            str(s.get("fires", 0)),
            str(s.get("puts", 0)),
            str(s.get("output_lines", 0)),
            str(s.get("max_width", 0)),
        ]
        for i, s in enumerate(settles)
    ]
    return _table_text(headers, rows)


def format_nodes(nodes: list[dict]) -> str:
    """Per-node compute and measured wire traffic of a multiprocess
    sharded run (:mod:`repro.dist.procrun`) — control plane (msgs /
    sent B / recv B, coordinator↔worker) and data plane (peer columns,
    the worker-to-worker shuffle mesh) separately."""
    headers = [
        "node",
        "fires",
        "puts",
        "served",
        "remote q",
        "msgs",
        "sent B",
        "recv B",
        "peer msgs",
        "peer sent B",
        "peer recv B",
        "recovered",
    ]
    rows = [
        [
            str(n.get("node", i)),
            str(n.get("fires", 0)),
            str(n.get("puts", 0)),
            str(n.get("queries_served", 0)),
            str(n.get("remote_queries", 0)),
            str(n.get("msgs", 0)),
            str(n.get("bytes_sent", 0)),
            str(n.get("bytes_recv", 0)),
            str(n.get("peer_msgs", 0)),
            str(n.get("peer_bytes_sent", 0)),
            str(n.get("peer_bytes_recv", 0)),
            str(n.get("recovered", 0)),
        ]
        for i, n in enumerate(nodes)
    ]
    return _table_text(headers, rows)


def run_report(result: "RunResult") -> str:
    """Full post-run report (the paper's per-run log)."""
    parts = [
        f"program {result.program!r} under {result.strategy} "
        f"(threads={result.threads}): {result.steps} steps, "
        f"wall {result.wall_time * 1e3:.1f} ms",
    ]
    if result.stats.notes:
        parts.append(
            "notes:\n" + "\n".join(f"  - {n}" for n in result.stats.notes)
        )
    fp = result.stats.frontier_profile()
    if fp["steps"]:
        parts.append(
            f"frontier: mean width {fp['mean']:.2f}, max {fp['max']}, "
            f"{fp['singletons']}/{fp['steps']} singleton steps"
        )
    if len(result.stats.settles) > 1:
        parts.append(format_settles(result.stats.settles))
    if result.stats.faults:
        counts = ", ".join(
            f"{k}={n}" for k, n in sorted(result.stats.faults.items())
        )
        parts.append(f"injected faults: {counts}")
    if result.stats.retractions or result.stats.rederivations:
        parts.append(
            f"retraction: {result.stats.retractions} tuples retracted, "
            f"{result.stats.rederivations} triggers rederived"
        )
    if result.report is not None:
        parts.append(format_machine(result.report))
    if getattr(result, "nodes", None):
        parts.append(format_nodes(result.nodes))
    parts.append(format_table_stats(result.stats))
    if result.stats.rules:
        parts.append(format_rule_stats(result.stats))
    return "\n\n".join(parts)
