"""Dependency graphs of program execution (the Figs 7/9 views).

§1.5: the logging system comes with "tools to visualise those logs as
annotated dependency graphs of the program execution".  Fig 7 is
exactly such a graph for PvWatts: table nodes (blue rectangles), rule
nodes (red circles), bold trigger edges, plus read/put edges.

Two graphs are offered:

* :func:`program_graph` — the *static* structure, from rule metadata
  (trigger table → rule; rule → put tables, declared via the solver
  metadata when present);
* :func:`execution_graph` — the *observed* structure from a
  :class:`~repro.stats.collector.StatsCollector`, annotated with firing
  / tuple / query counts (the "useful basis for choosing
  parallelisation strategies").

Both return ``networkx.DiGraph`` with node attribute ``kind`` ∈
{"table", "rule"} and edge attribute ``kind`` ∈ {"trigger", "put",
"read"}; :mod:`repro.viz` renders them.
"""

from __future__ import annotations

import networkx as nx

from repro.core.program import Program
from repro.stats.collector import StatsCollector

__all__ = ["program_graph", "execution_graph"]


def _table_node(g: nx.DiGraph, name: str) -> str:
    node = f"table:{name}"
    if node not in g:
        g.add_node(node, kind="table", label=name)
    return node


def _rule_node(g: nx.DiGraph, name: str) -> str:
    node = f"rule:{name}"
    if node not in g:
        g.add_node(node, kind="rule", label=name)
    return node


def program_graph(program: Program) -> nx.DiGraph:
    """Static table/rule graph.  Put edges require solver metadata
    (the rule body is opaque Python); rules without metadata contribute
    only their trigger edge."""
    from repro.solver.obligations import RuleMeta  # local: optional dep

    g = nx.DiGraph(name=program.name)
    for name in program.tables:
        _table_node(g, name)
    for rule in program.rules:
        rn = _rule_node(g, rule.name)
        g.add_edge(_table_node(g, rule.trigger.schema.name), rn, kind="trigger")
        if isinstance(rule.meta, RuleMeta):
            for branch in rule.meta.branches:
                for p in branch.puts:
                    g.add_edge(rn, _table_node(g, p.schema.name), kind="put")
                for q in branch.queries:
                    g.add_edge(
                        _table_node(g, q.schema.name), rn, kind="read",
                        query_kind=q.kind.value,
                    )
    return g


def execution_graph(stats: StatsCollector, name: str = "run") -> nx.DiGraph:
    """Observed graph, annotated with counts from a finished run."""
    g = nx.DiGraph(name=name)
    for tname, ts in stats.tables.items():
        node = _table_node(g, tname)
        g.nodes[node].update(
            puts=ts.puts,
            duplicates=ts.duplicates,
            gamma_inserts=ts.gamma_inserts,
            delta_inserts=ts.delta_inserts,
            queries=ts.queries,
        )
    for rname, rs in stats.rules.items():
        node = _rule_node(g, rname)
        g.nodes[node].update(firings=rs.firings, rule_puts=rs.puts)
    for (tname, rname), n in stats.trigger_edges.items():
        g.add_edge(_table_node(g, tname), _rule_node(g, rname), kind="trigger", count=n)
    for (rname, tname), n in stats.put_edges.items():
        g.add_edge(_rule_node(g, rname), _table_node(g, tname), kind="put", count=n)
    for (rname, tname), n in stats.query_edges.items():
        g.add_edge(_table_node(g, tname), _rule_node(g, rname), kind="read", count=n)
    return g
