"""The data-structure advisor — closing §1.4's loop automatically.

§1.4: "we can perform static analysis on the queries that are
performed ... before deciding how to represent the data, which fields
should be indexed, what data structures to use for each index, etc.
Currently we just generate default indexes and data structures for
each relation, then allow the programmer to override those choices via
runtime flags."  §6.2 adds: "We plan to add a compiler flag that
automates the generation of these optimised 'array-of-hashsets' data
structures, in the future."

This module is that future flag: run the program once (any strategy —
the logging subsystem records every query's *shape*), feed the result
to :func:`advise`, and get back per-table store recommendations ready
to drop into ``ExecOptions.store_overrides``.  The decision ladder, for
each table that served queries:

1. every query binds the **whole primary key** → :class:`HashKeyStore`;
2. otherwise, if one equality-field set dominates (≥ ``dominance`` of
   queries) —
   a. if it is a single int field whose observed values fit a small
      dense range → :class:`ArrayOfHashSetsStore` over that field (the
      §6.2 custom structure, now derived automatically),
   b. else → :class:`HashIndexStore` over those fields;
3. tables whose queries are range-heavy keep the ordered default
   (skip list / tree), which supports ordered traversals;
4. tables never queried get ``-noGamma`` *suggested* only if they also
   trigger no rules is out of scope here (that is §5.1's flag, a
   separate analysis); we simply report them as query-free.

Recommendations carry a human-readable rationale, so the advisor also
serves as the §2 stage-4 profiling report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.schema import TableSchema
from repro.gamma import ArrayOfHashSetsStore, HashIndexStore, HashKeyStore
from repro.gamma.base import StoreFactory

if TYPE_CHECKING:  # pragma: no cover — avoids a circular import with the engine
    from repro.core.engine import RunResult

__all__ = [
    "Recommendation",
    "IndexReport",
    "advise",
    "overrides_from",
    "index_report",
    "recommend_indexes",
]

#: a field qualifies for the dense-array top level if its observed
#: value range is at most this wide (the paper's month array is 12)
MAX_ARRAY_SPAN = 64


@dataclass(frozen=True)
class Recommendation:
    """One table's advised representation."""

    table: str
    factory: StoreFactory | None  # None = keep the default store
    kind: str                     # "hash-key" | "array-of-hashsets" | ...
    reason: str
    coverage: float               # fraction of observed queries served

    def __repr__(self) -> str:
        return (
            f"<{self.table}: {self.kind} ({self.coverage:.0%} of queries) — "
            f"{self.reason}>"
        )


def _observed_span(result: "RunResult", table: str, field: str) -> tuple[int, int] | None:
    """(lo, hi) of an int field's values currently in Gamma, or None."""
    store = result.require_database().store(table)
    pos = store.schema.field_position(field)
    lo = hi = None
    for t in store.scan():
        v = t.values[pos]
        if not isinstance(v, int):
            return None
        if lo is None or v < lo:
            lo = v
        if hi is None or v > hi:
            hi = v
    if lo is None:
        return None
    return lo, hi


def _key_names(schema: TableSchema) -> tuple[str, ...]:
    return tuple(sorted(schema.field_names[i] for i in schema.key_indexes))


def advise(
    result: "RunResult",
    dominance: float = 0.8,
    concurrent: bool = True,
) -> list[Recommendation]:
    """Analyse a finished run and recommend Gamma stores per table."""
    recs: list[Recommendation] = []
    stats = result.stats
    for name, store in sorted(result.require_database().stores.items()):
        schema = store.schema
        shapes = stats.shapes_for(name)
        total = sum(shapes.values())
        if total == 0:
            recs.append(
                Recommendation(
                    name, None, "default",
                    "never queried during the profiled run", 0.0,
                )
            )
            continue

        range_queries = sum(n for (eq, rng), n in shapes.items() if rng)
        if range_queries / total > 1 - dominance:
            recs.append(
                Recommendation(
                    name, None, "ordered-default",
                    f"{range_queries}/{total} queries use range constraints; "
                    "the ordered default supports them",
                    range_queries / total,
                )
            )
            continue

        # dominant equality signature
        eq_counts: dict[tuple[str, ...], int] = {}
        for (eq, rng), n in shapes.items():
            if not rng:
                eq_counts[eq] = eq_counts.get(eq, 0) + n
        sig, sig_n = max(eq_counts.items(), key=lambda kv: kv[1])
        coverage = sig_n / total
        if coverage < dominance:
            recs.append(
                Recommendation(
                    name, None, "default",
                    "no dominant query shape "
                    f"(best binds {set(sig) or '{}'} in {coverage:.0%})",
                    coverage,
                )
            )
            continue

        if schema.has_key and sig == _key_names(schema):
            recs.append(
                Recommendation(
                    name,
                    lambda s, c=concurrent: HashKeyStore(s, concurrent=c),
                    "hash-key",
                    f"{coverage:.0%} of queries bind the full primary key "
                    f"{sig}",
                    coverage,
                )
            )
            continue

        if not sig:
            recs.append(
                Recommendation(
                    name, None, "default",
                    "dominant queries scan the whole table", coverage,
                )
            )
            continue

        if len(sig) == 1:
            span = _observed_span(result, name, sig[0])
            if span is not None and span[1] - span[0] + 1 <= MAX_ARRAY_SPAN:
                lo, hi = span
                field = sig[0]
                recs.append(
                    Recommendation(
                        name,
                        lambda s, f=field, a=lo, b=hi, c=concurrent: ArrayOfHashSetsStore(
                            s, f, a, b, concurrent=c
                        ),
                        "array-of-hashsets",
                        f"{coverage:.0%} of queries bind {field}, whose values "
                        f"span the dense range [{lo}, {hi}] — the §6.2 custom "
                        "structure, derived automatically",
                        coverage,
                    )
                )
                continue

        recs.append(
            Recommendation(
                name,
                lambda s, f=sig, c=concurrent: HashIndexStore(s, f, concurrent=c),
                "hash-index",
                f"{coverage:.0%} of queries bind exactly {sig}",
                coverage,
            )
        )
    return recs


def overrides_from(
    recommendations: list[Recommendation],
) -> dict[str, StoreFactory]:
    """The ``ExecOptions.store_overrides`` mapping for the advised
    tables (tables advised to keep their default are omitted)."""
    return {
        r.table: r.factory for r in recommendations if r.factory is not None
    }


# ---------------------------------------------------------------------------
# secondary-index reporting (the index_mode companion to advise())
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IndexReport:
    """Per-table index effectiveness, read off an indexed run.

    ``usage`` maps each select path — every index's label plus the
    ``key`` fast path and the base-store ``scan`` fallback — to its
    select count; ``hit_rate`` is the fraction of selects any index
    (or the key path) served.
    """

    table: str
    usage: dict[str, int]
    hit_rate: float

    def __repr__(self) -> str:
        paths = ", ".join(f"{k}={v}" for k, v in self.usage.items())
        return f"<index report {self.table}: {self.hit_rate:.0%} hit ({paths})>"


def index_report(result: "RunResult") -> list[IndexReport]:
    """Index hit rates for every indexed table of a finished run
    (empty when the run had ``index_mode="off"``)."""
    from repro.gamma.indexed import IndexedStore

    reports: list[IndexReport] = []
    for name, store in sorted(result.require_database().stores.items()):
        if not isinstance(store, IndexedStore):
            continue
        usage = store.index_usage()
        total = sum(usage.values())
        hits = total - usage.get("scan", 0)
        reports.append(
            IndexReport(name, usage, hits / total if total else 0.0)
        )
    return reports


def recommend_indexes(
    result: "RunResult", min_queries: int = 1
) -> dict[str, tuple]:
    """Indexes the planner would have built, derived from the *observed*
    query shapes of a profiled run — the dynamic mirror of
    :func:`repro.gamma.indexplan.plan_indexes`, able to see queries that
    opaque rule bodies hide from the static pass.  Returns a plan ready
    for ``ExecOptions(index_mode="auto", indexes=...)``."""
    from repro.gamma.indexplan import MAX_INDEXES_PER_TABLE, spec_for_pattern

    plan: dict[str, tuple] = {}
    for name, store in sorted(result.require_database().stores.items()):
        shapes = result.stats.shapes_for(name)
        specs = []
        for (eq, rng), n in sorted(shapes.items()):
            if n < min_queries:
                continue
            spec = spec_for_pattern(store.schema, eq, rng)
            if spec is not None and spec not in specs:
                specs.append(spec)
        if specs:
            plan[name] = tuple(
                sorted(specs, key=lambda s: (s.eq_fields, s.range_field or ""))
            )[:MAX_INDEXES_PER_TABLE]
    return plan
