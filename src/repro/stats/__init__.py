"""Run statistics and dependency graphs (§1.5 logging subsystem)."""

from repro.stats.advisor import (
    IndexReport,
    Recommendation,
    advise,
    index_report,
    overrides_from,
    recommend_indexes,
)
from repro.stats.collector import RuleStats, StatsCollector, TableStats
from repro.stats.depgraph import execution_graph, program_graph
from repro.stats.report import (
    format_machine,
    format_rule_stats,
    format_table_stats,
    run_report,
)

__all__ = [
    "Recommendation",
    "IndexReport",
    "advise",
    "overrides_from",
    "index_report",
    "recommend_indexes",
    "StatsCollector",
    "TableStats",
    "RuleStats",
    "program_graph",
    "execution_graph",
    "run_report",
    "format_table_stats",
    "format_rule_stats",
    "format_machine",
]
