"""The full ExecOptions refusal matrix, pinned to one canonical
message format:

    invalid ExecOptions: knob=value[, knob=value...] -- reason

Every refusal names the *values* of every offending knob, so a refusal
seen in a log — or relayed through the session service as a structured
``engine`` error — identifies the misconfiguration without a repro."""

from __future__ import annotations

import re

import pytest

from repro.core import EngineError, ExecOptions
from repro.core.program import RetentionHint
from repro.exec.chaos import FaultPlan

CANONICAL = re.compile(r"^invalid ExecOptions: \S.* -- \S.*$")

#: (kwargs, fragments that must appear in the message)
MATRIX = [
    (dict(strategy="warp"),
     ["strategy='warp'", "unknown strategy",
      "sequential, forkjoin, threads, chaos, processes"]),
    (dict(causality_check="maybe"),
     ["causality_check='maybe'", "off, warn, strict"]),
    (dict(task_granularity="batch"),
     ["task_granularity='batch'", "tuple, rule"]),
    (dict(threads=0), ["threads=0", ">= 1"]),
    (dict(strategy="threads", threads=-2), ["threads=-2"]),
    (dict(index_mode="magic"),
     ["index_mode='magic'", "off, auto, explicit"]),
    (dict(metering="sometimes"),
     ["metering='sometimes'", "metering"]),
    (dict(admission="lax"),
     ["admission='lax'", "strict, warn"]),
    (dict(index_mode="off", indexes={"Edge": ("dst",)}),
     ["index_mode='off'", "'Edge'", "explicit indexes"]),
    (dict(chaos_seed=7),
     ["strategy='sequential'", "chaos_seed=7", "'chaos' strategy"]),
    (dict(fault_plan=FaultPlan(raise_prob=0.5)),
     ["strategy='sequential'", "fault_plan=", "'chaos' strategy"]),
    (dict(strategy="chaos", fault_plan="not-a-plan"),
     ["fault_plan='not-a-plan'", "must be a FaultPlan"]),
    (dict(strategy="chaos", fault_plan=FaultPlan(raise_prob=0.5),
          no_delta=frozenset({"T"})),
     ["fault_plan=", "no_delta=['T']",
      "-noDelta tables make tasks non-redeliverable"]),
    (dict(retraction=True, no_delta=frozenset({"T"})),
     ["retraction=True", "no_delta=['T']", "fully tracked state"]),
    (dict(retraction=True, no_gamma=frozenset({"U"})),
     ["retraction=True", "no_gamma=['U']", "fully tracked state"]),
    (dict(retraction=True, retention={"T": RetentionHint("gen", 2)}),
     ["retraction=True", "retention=['T']", "retention hints"]),
    (dict(retraction=True, task_granularity="rule"),
     ["retraction=True", "task_granularity='rule'",
      "task_granularity='tuple'"]),
    (dict(retraction=True, strategy="processes"),
     ["retraction=True", "strategy='processes'", "multiprocess"]),
    (dict(execution="vectorized"),
     ["execution='vectorized'", "scalar, columnar, codegen"]),
    (dict(execution="columnar", retraction=True),
     ["execution='columnar'", "retraction=True", "per-firing support"]),
    (dict(execution="columnar", strategy="processes"),
     ["execution='columnar'", "strategy='processes'",
      "multiprocess shard runtime"]),
    (dict(execution="columnar", task_granularity="rule"),
     ["execution='columnar'", "task_granularity='rule'",
      "task_granularity='tuple'"]),
    (dict(execution="codegen", retraction=True),
     ["execution='codegen'", "retraction=True", "per-firing support"]),
    (dict(execution="codegen", strategy="processes"),
     ["execution='codegen'", "strategy='processes'",
      "multiprocess shard runtime"]),
    (dict(execution="codegen", task_granularity="rule"),
     ["execution='codegen'", "task_granularity='rule'",
      "task_granularity='tuple'"]),
]


@pytest.mark.parametrize(
    "kwargs, fragments",
    MATRIX,
    ids=[
        "-".join(sorted(kwargs)) + ":" + str(i)
        for i, (kwargs, _) in enumerate(MATRIX)
    ],
)
def test_refusal_names_offending_knobs_in_canonical_format(kwargs, fragments):
    with pytest.raises(EngineError) as err:
        ExecOptions(**kwargs)
    message = str(err.value)
    assert CANONICAL.match(message), message
    for fragment in fragments:
        assert fragment in message, (fragment, message)


def test_refusals_are_catchable_as_engine_errors():
    # the service maps these to the 'engine' wire code; the class must
    # stay in the EngineError branch of the taxonomy
    from repro.serve.protocol import error_code

    with pytest.raises(EngineError) as err:
        ExecOptions(strategy="warp")
    assert error_code(err.value) == ("engine", False)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(),
        dict(strategy="forkjoin", threads=4),
        dict(strategy="chaos", chaos_seed=3),
        dict(strategy="chaos", fault_plan=FaultPlan(raise_prob=0.2)),
        dict(retraction=True),
        dict(retraction=True, strategy="threads", threads=2),
        dict(index_mode="explicit", indexes={"Edge": ("dst",)}),
        dict(retention={"T": RetentionHint("gen", 2)}),
        dict(execution="columnar"),
        dict(execution="columnar", metering="off"),
        dict(execution="codegen"),
        dict(execution="codegen", metering="off"),
        # not refused: non-sequential strategies downgrade to scalar at
        # run time with a note rather than refusing up front
        dict(execution="columnar", strategy="chaos", chaos_seed=3),
        dict(execution="columnar", strategy="threads", threads=2),
        dict(execution="codegen", strategy="threads", threads=2),
        dict(execution="codegen", trace=True),
    ],
)
def test_valid_option_combinations_are_accepted(kwargs):
    assert ExecOptions(**kwargs)


# -- registry resolution: one table decides the kernel's tier ----------------


def _tiny_program():
    from repro.core import Program

    p = Program("tiny")
    T = p.table("T", "int x", orderby=("T",))

    @p.foreach(T)
    def echo(ctx, t):
        ctx.println(f"x={t.x}")

    p.put(T.new(1))
    return p


#: (options, resolved tier, fragment of the downgrade note or None)
RESOLUTION = [
    (dict(), "scalar", None),
    (dict(execution="scalar"), "scalar", None),
    (dict(execution="columnar"), "columnar", None),
    (dict(execution="codegen"), "codegen", None),
    (dict(execution="columnar", strategy="threads", threads=2),
     "scalar", "execution='columnar' ignored"),
    (dict(execution="columnar", plan_cache=False),
     "scalar", "plan_cache=False disables"),
    (dict(execution="codegen", strategy="threads", threads=2),
     "scalar", "execution='codegen' ignored"),
    (dict(execution="codegen", plan_cache=False),
     "scalar", "plan_cache=False disables"),
    (dict(execution="codegen", trace=True),
     "scalar", "emit no trace events"),
]


@pytest.mark.parametrize(
    "kwargs, tier, note",
    RESOLUTION,
    ids=[
        "-".join(f"{k}={v}" for k, v in sorted(kwargs.items())) or "default"
        for kwargs, _, _ in RESOLUTION
    ],
)
def test_registry_resolves_executor_and_notes_downgrades(kwargs, tier, note):
    from repro.core.kernel import StepKernel

    kernel = StepKernel(_tiny_program(), ExecOptions(**kwargs))
    assert kernel.executor.name == tier
    notes = "\n".join(kernel.stats.notes)
    if note is None:
        assert "ignored" not in notes, notes
    else:
        assert note in notes, notes
