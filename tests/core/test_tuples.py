"""Tests for immutable tuples and the builder/copy API."""

from __future__ import annotations

import pytest

from repro.core.errors import SchemaError
from repro.core.schema import TableSchema
from repro.core.tuples import JTuple, TableHandle


@pytest.fixture
def Ship() -> TableHandle:
    return TableHandle(
        TableSchema("Ship", "int frame -> int x, int y, int dx, int dy",
                    orderby=("Int", "seq frame"))
    )


class TestConstruction:
    def test_by_position(self, Ship):
        s = Ship.new(0, 10, 10, 150, 0)
        assert (s.frame, s.x, s.y, s.dx, s.dy) == (0, 10, 10, 150, 0)

    def test_by_name(self, Ship):
        s = Ship.new(frame=0, x=10, dx=150, y=10, dy=0)
        assert s.values == (0, 10, 10, 150, 0)

    def test_defaults(self, Ship):
        # "use default values for frame and dy" (§3)
        s = Ship.new(x=10, dx=150, y=10)
        assert s.frame == 0 and s.dy == 0

    def test_mixed_positional_and_named(self, Ship):
        s = Ship.new(1, 2, y=3)
        assert s.values == (1, 2, 3, 0, 0)

    def test_call_sugar(self, Ship):
        assert Ship(1, 2, 3, 4, 5) == Ship.new(1, 2, 3, 4, 5)

    def test_too_many_positional(self, Ship):
        with pytest.raises(SchemaError):
            Ship.new(1, 2, 3, 4, 5, 6)

    def test_field_given_twice(self, Ship):
        with pytest.raises(SchemaError, match="both positionally"):
            Ship.new(1, frame=2)

    def test_type_checked(self, Ship):
        with pytest.raises(SchemaError):
            Ship.new("zero", 1, 2, 3, 4)

    def test_unknown_kwarg(self, Ship):
        with pytest.raises(Exception):
            Ship.new(warp=9)


class TestImmutability:
    def test_setattr_blocked(self, Ship):
        s = Ship.new(0, 1, 2, 3, 4)
        with pytest.raises(AttributeError, match="immutable"):
            s.x = 99

    def test_delattr_blocked(self, Ship):
        s = Ship.new(0, 1, 2, 3, 4)
        with pytest.raises(AttributeError):
            del s.x

    def test_copy_builder(self, Ship):
        s = Ship.new(0, 10, 10, 150, 0)
        s2 = s.copy(frame=1, x=160)
        assert s2.values == (1, 160, 10, 150, 0)
        assert s.values == (0, 10, 10, 150, 0)  # original untouched

    def test_copy_no_updates_returns_self(self, Ship):
        s = Ship.new(0, 1, 2, 3, 4)
        assert s.copy() is s

    def test_copy_type_checked(self, Ship):
        s = Ship.new(0, 1, 2, 3, 4)
        with pytest.raises(SchemaError):
            s.copy(x="wide")


class TestAccess:
    def test_getitem_and_iter(self, Ship):
        s = Ship.new(0, 1, 2, 3, 4)
        assert s[2] == 2
        assert list(s) == [0, 1, 2, 3, 4]
        assert len(s) == 5

    def test_unknown_attribute(self, Ship):
        s = Ship.new(0, 1, 2, 3, 4)
        with pytest.raises(AttributeError, match="no field"):
            _ = s.warp

    def test_asdict(self, Ship):
        s = Ship.new(0, 1, 2, 3, 4)
        assert s.asdict() == {"frame": 0, "x": 1, "y": 2, "dx": 3, "dy": 4}

    def test_key_projection(self, Ship):
        assert Ship.new(7, 1, 2, 3, 4).key() == (7,)

    def test_repr(self, Ship):
        assert repr(Ship.new(0, 1, 2, 3, 4)).startswith("Ship(frame=0")


class TestIdentity:
    def test_equality_by_schema_and_values(self, Ship):
        assert Ship.new(0, 1, 2, 3, 4) == Ship.new(0, 1, 2, 3, 4)
        assert Ship.new(0, 1, 2, 3, 4) != Ship.new(0, 1, 2, 3, 5)

    def test_different_schema_never_equal(self, Ship):
        Other = TableHandle(TableSchema("Other", "int frame, int x, int y, int dx, int dy"))
        assert Ship.new(0, 1, 2, 3, 4) != Other.new(0, 1, 2, 3, 4)

    def test_hashable_in_sets(self, Ship):
        s = {Ship.new(0, 1, 2, 3, 4), Ship.new(0, 1, 2, 3, 4), Ship.new(1, 1, 2, 3, 4)}
        assert len(s) == 2

    def test_not_equal_to_plain_tuple(self, Ship):
        assert Ship.new(0, 1, 2, 3, 4) != (0, 1, 2, 3, 4)

    def test_handle_equality(self, Ship):
        assert Ship == TableHandle(Ship.schema)
        assert Ship != "Ship"


def test_direct_jtuple_field_lookup():
    schema = TableSchema("T", "int a, str b")
    t = JTuple(schema, (1, "x"))
    assert t.field("b") == "x"
    with pytest.raises(Exception):
        t.field("nope")
