"""Tests for table declarations and field parsing."""

from __future__ import annotations

import pytest

from repro.core.errors import SchemaError, UnknownFieldError
from repro.core.schema import Field, TableSchema, parse_fields


class TestParseFields:
    def test_paper_ship_declaration(self):
        fields = parse_fields("int frame -> int x, int y, int dx, int dy")
        assert [f.name for f in fields] == ["frame", "x", "y", "dx", "dy"]
        assert [f.is_key for f in fields] == [True, False, False, False, False]
        assert all(f.type == "int" for f in fields)

    def test_no_key(self):
        fields = parse_fields("int year, int month")
        assert all(not f.is_key for f in fields)

    def test_type_inheritance_within_group(self):
        fields = parse_fields("int a, b, c")
        assert [f.type for f in fields] == ["int"] * 3

    def test_java_type_aliases(self):
        fields = parse_fields("double v, String s, boolean b, long n")
        assert [f.type for f in fields] == ["float", "str", "bool", "int"]

    def test_multi_field_key(self):
        fields = parse_fields("int mat, int row, int col -> int value")
        assert [f.is_key for f in fields] == [True, True, True, False]

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError, match="unknown field type"):
            parse_fields("quux x")

    def test_bad_name_rejected(self):
        with pytest.raises(SchemaError):
            parse_fields("int 3x")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            parse_fields("int x, int x")

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            parse_fields("   ")

    def test_arrow_needs_both_sides(self):
        with pytest.raises(SchemaError):
            parse_fields("int x ->")
        with pytest.raises(SchemaError):
            parse_fields("-> int x")


class TestTableSchema:
    def test_basic(self):
        s = TableSchema("Ship", "int frame -> int x", orderby=("Int", "seq frame"))
        assert s.name == "Ship"
        assert s.has_key
        assert s.key_indexes == (0,)
        assert s.dep_indexes == (1,)
        assert s.field_position("x") == 1

    def test_lowercase_table_name_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("ship", "int x")

    def test_orderby_unknown_field_rejected(self):
        with pytest.raises(UnknownFieldError):
            TableSchema("T", "int x", orderby=("seq nope",))

    def test_orderby_literals_listed(self):
        s = TableSchema("T", "int x", orderby=("A", "seq x", "B"))
        assert s.literal_names() == ("A", "B")

    def test_defaults_by_type(self):
        s = TableSchema("T", "int x, double y, String s, boolean b")
        assert s.defaults() == (0, 0.0, "", False)

    def test_check_types_accepts_int_for_float(self):
        s = TableSchema("T", "double y")
        s.check_types((3,))  # int where float expected is fine

    def test_check_types_rejects_bool_as_int(self):
        s = TableSchema("T", "int x")
        with pytest.raises(SchemaError):
            s.check_types((True,))

    def test_check_types_rejects_str_as_int(self):
        s = TableSchema("T", "int x")
        with pytest.raises(SchemaError):
            s.check_types(("5",))

    def test_key_of(self):
        s = TableSchema("T", "int a, int b -> int c")
        assert s.key_of((1, 2, 3)) == (1, 2)

    def test_identity_semantics(self):
        a = TableSchema("T", "int x")
        b = TableSchema("T", "int x")
        assert a != b and a == a
        assert hash(a) != hash(b) or a is b

    def test_fields_from_objects(self):
        s = TableSchema("T", [Field("x", "int", True), Field("y", "float", False)])
        assert s.has_key and s.field_names == ("x", "y")

    def test_no_fields_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", [])

    def test_repr_mentions_key(self):
        s = TableSchema("T", "int a -> int b", orderby=("X",))
        assert "a*" in repr(s)
