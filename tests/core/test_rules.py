"""Tests for rule contexts: queries, causality checks, unsafe guard."""

from __future__ import annotations

import warnings

import pytest

from repro.core import (
    CausalityError,
    ExecOptions,
    Program,
    RuleError,
    Statistics,
    StratificationWarning,
    SumReducer,
    UnsafeOperationError,
)


def two_phase_program():
    """Data at literal A, aggregation trigger at literal B (SumMonth
    pattern): negative/aggregate queries from B over A are legal."""
    p = Program("twophase")
    Data = p.table("Data", "int g, int v", orderby=("A",))
    Go = p.table("Go", "int g", orderby=("B",))
    p.order("A", "B")
    return p, Data, Go


class TestQueries:
    def test_get_returns_matches(self):
        p, Data, Go = two_phase_program()
        got = {}

        @p.foreach(Go)
        def collect(ctx, go):
            got["rows"] = ctx.get(Data, go.g)
            got["all"] = ctx.get(Data)

        for v in range(4):
            p.put(Data.new(v % 2, v))
        p.put(Go.new(0))
        p.run()
        assert sorted(t.v for t in got["rows"]) == [0, 2]
        assert len(got["all"]) == 4

    def test_get_uniq_none_and_single(self):
        p, Data, Go = two_phase_program()
        got = {}

        @p.foreach(Go)
        def probe(ctx, go):
            got["missing"] = ctx.get_uniq(Data, 99)
            got["hit"] = ctx.get_uniq(Data, 1, 1)

        p.put(Data.new(1, 1))
        p.put(Go.new(0))
        p.run()
        assert got["missing"] is None
        assert got["hit"].v == 1

    def test_get_uniq_multiple_raises(self):
        p, Data, Go = two_phase_program()

        @p.foreach(Go)
        def probe(ctx, go):
            ctx.get_uniq(Data, 1)

        p.put(Data.new(1, 1))
        p.put(Data.new(1, 2))
        p.put(Go.new(0))
        with pytest.raises(RuleError, match="matched 2"):
            p.run()

    def test_get_min(self):
        p, Data, Go = two_phase_program()
        got = {}

        @p.foreach(Go)
        def probe(ctx, go):
            got["min"] = ctx.get_min(Data, by="v")
            got["none"] = ctx.get_min(Data, 42, by="v")

        for v in (5, 2, 9):
            p.put(Data.new(1, v))
        p.put(Go.new(0))
        p.run()
        assert got["min"].v == 2
        assert got["none"] is None

    def test_count_and_exists_and_absent(self):
        p, Data, Go = two_phase_program()
        got = {}

        @p.foreach(Go)
        def probe(ctx, go):
            got["count"] = ctx.count(Data, 1)
            got["exists"] = ctx.exists(Data, 1)
            got["absent"] = ctx.absent(Data, 3)

        p.put(Data.new(1, 1))
        p.put(Data.new(1, 2))
        p.put(Go.new(0))
        p.run()
        assert got == {"count": 2, "exists": True, "absent": True}

    def test_reduce_with_statistics(self):
        p, Data, Go = two_phase_program()
        got = {}

        @p.foreach(Go)
        def probe(ctx, go):
            got["acc"] = ctx.reduce(Data, 1, reducer=Statistics(), value=lambda t: t.v)
            got["sum"] = ctx.reduce(Data, 1, reducer=SumReducer(), value=lambda t: t.v)

        for v in (2, 4):
            p.put(Data.new(1, v))
        p.put(Go.new(0))
        p.run()
        assert got["acc"].mean == 3.0 and got["sum"] == 6

    def test_where_lambda(self):
        p, Data, Go = two_phase_program()
        got = {}

        @p.foreach(Go)
        def probe(ctx, go):
            got["odd"] = ctx.get(Data, where=lambda t: t.v % 2 == 1)

        for v in range(5):
            p.put(Data.new(0, v))
        p.put(Go.new(0))
        p.run()
        assert sorted(t.v for t in got["odd"]) == [1, 3]

    def test_par_loop_passthrough(self):
        p, Data, Go = two_phase_program()
        got = {}

        @p.foreach(Go)
        def probe(ctx, go):
            got["looped"] = [x * 2 for x in ctx.par_loop([1, 2, 3])]

        p.put(Go.new(0))
        p.run()
        assert got["looped"] == [2, 4, 6]


class TestCausalityChecks:
    def test_negative_query_of_future_raises_in_strict(self):
        p = Program("negfuture")
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def peek(ctx, t):
            ctx.absent(T, t.t + 1)  # negative query about the future

        p.put(T.new(0))
        with pytest.raises(CausalityError, match="stratification"):
            p.run(ExecOptions(causality_check="strict"))

    def test_negative_query_of_future_warns_by_default(self):
        p = Program("negwarn")
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def peek(ctx, t):
            ctx.absent(T, t.t + 1)

        p.put(T.new(0))
        with pytest.warns(StratificationWarning):
            p.run()

    def test_negative_query_of_past_is_clean(self):
        p = Program("negpast")
        T = p.table("T", "int t", orderby=("Int", "seq t"))
        got = {}

        @p.foreach(T)
        def peek(ctx, t):
            got[t.t] = ctx.absent(T, ranges={"t": {"lt": t.t}})

        p.put(T.new(0))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            p.run()
        assert got[0] is True

    def test_unbounded_negative_query_warns_once(self):
        p = Program("unbounded")
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def peek(ctx, t):
            ctx.absent(T, where=lambda x: x.t > 100)  # bound invisible
            ctx.absent(T, where=lambda x: x.t > 200)

        p.put(T.new(0))
        with pytest.warns(StratificationWarning) as rec:
            p.run()
        assert len([w for w in rec if issubclass(w.category, StratificationWarning)]) == 1

    def test_assume_stratified_silences(self):
        p = Program("assumed")
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T, assume_stratified=True)
        def peek(ctx, t):
            ctx.absent(T, where=lambda x: x.t > 100)

        p.put(T.new(0))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            p.run()

    def test_literal_level_bounds_are_understood(self):
        """SumMonth pattern: aggregate over a table whose literal is
        declared earlier never warns."""
        p, Data, Go = two_phase_program()

        @p.foreach(Go)
        def agg(ctx, go):
            ctx.count(Data)

        p.put(Data.new(0, 0))
        p.put(Go.new(0))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            p.run()


class TestContextDiscipline:
    def test_put_requires_tuple(self):
        p, Data, Go = two_phase_program()

        @p.foreach(Go)
        def bad(ctx, go):
            ctx.put("not a tuple")  # type: ignore[arg-type]

        p.put(Go.new(0))
        with pytest.raises(RuleError, match="expects a tuple"):
            p.run()

    def test_context_unusable_after_rule(self):
        p, Data, Go = two_phase_program()
        leaked = {}

        @p.foreach(Go)
        def leak(ctx, go):
            leaked["ctx"] = ctx

        p.put(Go.new(0))
        p.run()
        with pytest.raises(RuleError, match="after completion"):
            leaked["ctx"].put(Data.new(0, 0))

    def test_io_guard(self):
        p, Data, Go = two_phase_program()

        @p.foreach(Go)
        def sneaky(ctx, go):
            ctx.io_allowed()

        p.put(Go.new(0))
        with pytest.raises(UnsafeOperationError):
            p.run()

    def test_native_requires_unsafe(self):
        p, Data, Go = two_phase_program()

        @p.foreach(Go)
        def sneaky(ctx, go):
            ctx.native(Data)

        p.put(Go.new(0))
        with pytest.raises(UnsafeOperationError):
            p.run()

    def test_native_allowed_when_unsafe(self):
        p, Data, Go = two_phase_program()
        got = {}

        @p.foreach(Go, unsafe=True)
        def system_rule(ctx, go):
            got["store"] = ctx.native(Data)

        p.put(Go.new(0))
        r = p.run()
        assert got["store"] is r.database.store("Data")

    def test_println_captured_not_printed(self, capsys):
        p, Data, Go = two_phase_program()

        @p.foreach(Go)
        def talk(ctx, go):
            ctx.println("hello", go.g)

        p.put(Go.new(3))
        r = p.run()
        assert r.output == ["hello 3"]
        assert capsys.readouterr().out == ""

    def test_charge_accumulates(self):
        p, Data, Go = two_phase_program()

        @p.foreach(Go)
        def work(ctx, go):
            ctx.charge(123.0)

        p.put(Go.new(0))
        r = p.run()
        assert r.meter.costs["user_work"] == pytest.approx(123.0)
