"""Coverage for small public APIs: the causality re-export module,
RunResult helpers, Delta-tree introspection, and error paths not hit by
the main suites."""

from __future__ import annotations

import pytest

from repro.core import ExecOptions, Program
from repro.core.causality import (
    compare_timestamps,
    put_respects_causality,
    query_upper_bound,
)
from repro.core.delta import DeltaTree
from repro.core.ordering import KIND_SEQ, Timestamp


def ts(*vals):
    return Timestamp(tuple((KIND_SEQ, v) for v in vals), tuple(vals))


class TestCausalityModule:
    def test_put_respects_causality(self):
        assert put_respects_causality(ts(1), ts(2))
        assert put_respects_causality(ts(1), ts(1))
        assert not put_respects_causality(ts(2), ts(1))

    def test_reexports_are_callable(self):
        assert compare_timestamps(ts(1), ts(1)) == 0
        assert callable(query_upper_bound)


class TestDeltaIntrospection:
    def test_peek_min_node(self):
        d = DeltaTree()
        assert d.peek_min_node() is None
        p = Program()
        T = p.table("T", "int t", orderby=("Int", "seq t"))
        p.freeze()
        for v in (5, 2):
            tup = T.new(v)
            from repro.core.ordering import evaluate_orderby

            d.insert(tup, evaluate_orderby(T.schema.orderby, tup.asdict(), p.decls))
        node = d.peek_min_node()
        assert node is not None and list(node.here)[0].t == 2
        assert len(d) == 2  # peek does not consume

    def test_drain_consumes_in_order(self):
        d = DeltaTree()
        p = Program()
        T = p.table("T", "int t", orderby=("Int", "seq t"))
        p.freeze()
        from repro.core.ordering import evaluate_orderby

        for v in (3, 1, 2):
            tup = T.new(v)
            d.insert(tup, evaluate_orderby(T.schema.orderby, tup.asdict(), p.decls))
        order = [batch[0].t for batch in d.drain()]
        assert order == [1, 2, 3] and len(d) == 0


class TestRunResultHelpers:
    def _run(self, **kw):
        p = Program()
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def r(ctx, t):
            ctx.println(f"t={t.t}")

        p.put(T.new(1))
        return p.run(ExecOptions(**kw))

    def test_output_text(self):
        r = self._run()
        assert r.output_text() == "t=1"

    def test_virtual_time_fallback_for_threads(self):
        r = self._run(strategy="threads", threads=2)
        assert r.report is None
        assert r.virtual_time == pytest.approx(r.meter.total_cost)

    def test_repr_contains_strategy(self):
        assert "sequential" in repr(self._run())


class TestStoreErrorPaths:
    def test_default_discard_unsupported(self):
        from repro.core.errors import SchemaError
        from repro.core.schema import TableSchema
        from repro.core.tuples import TableHandle
        from repro.gamma import NativeArrayStore

        schema = TableSchema("M", "int k -> int v")
        store = NativeArrayStore(schema, (4,))
        T = TableHandle(schema)
        t = T.new(1, 5)
        store.insert(t)
        with pytest.raises(SchemaError, match="cannot discard"):
            store.discard(t)

    def test_unkeyed_lookup_key_raises(self):
        from repro.core.errors import SchemaError
        from repro.core.schema import TableSchema
        from repro.gamma import TreeSetStore

        store = TreeSetStore(TableSchema("U", "int a, int b"))
        with pytest.raises(SchemaError, match="no primary key"):
            store.lookup_key((1,))


class TestLangEdges:
    def test_top_level_put_works_and_rejects_queries(self):
        from repro.lang import compile_source
        from repro.lang.compile import CompileError

        # plain top-level puts are fine
        p = compile_source(
            "table T(int k -> int x) orderby (A, seq k)\nput new T(0, 5)\n"
        )
        assert p.run().table_sizes["T"] == 1
        # but query expressions inside a top-level put are rejected —
        # there is no database yet (§3: initial puts seed the Delta set)
        src = (
            "table T(int k -> int x) orderby (A, seq k)\n"
            "put new T(0, 5)\n"
            "put new T(1, get min T(0))\n"
        )
        with pytest.raises(CompileError, match="not allowed in top-level"):
            compile_source(src)

    def test_reducer_box_api(self):
        from repro.core.reducers import Statistics
        from repro.lang import ReducerBox
        from repro.lang.compile import CompileError

        box = ReducerBox(Statistics())
        box.step(4.0)
        box.step(6.0)
        assert box.read("mean") == 5.0
        assert "ReducerBox" in repr(box)
        with pytest.raises(CompileError, match="no field"):
            box.read("nonsense")

    def test_get_min_requires_seq_orderby(self):
        from repro.lang import compile_source
        from repro.lang.compile import CompileError

        src = """
        table T(int x) orderby (A)
        put new T(1)
        foreach (T t) { val m = get min T(1)  println(m == null) }
        """
        with pytest.raises(CompileError, match="no seq orderby"):
            compile_source(src).run()

    def test_builtin_reducer_takes_no_args(self):
        from repro.lang import compile_source
        from repro.lang.compile import CompileError

        src = """
        table T(int x) orderby (A, seq x)
        put new T(1)
        foreach (T t) { val s = new Statistics(5) }
        """
        with pytest.raises(CompileError, match="no arguments"):
            compile_source(src).run()
