"""Tests for the Delta tree: causal order, dedup, equivalence classes."""

from __future__ import annotations

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import DeltaTree
from repro.core.errors import OrderingError
from repro.core.ordering import OrderDecls, compare_timestamps, evaluate_orderby, parse_orderby
from repro.core.schema import TableSchema
from repro.core.tuples import TableHandle


def make_env():
    """Two tables sharing the Delta tree, Estimate < Done (Fig 5 style)."""
    decls = OrderDecls()
    decls.declare("Estimate", "Done")
    Est = TableHandle(
        TableSchema("Estimate", "int vertex, int distance",
                    orderby=("seq distance", "Estimate"))
    )
    Done = TableHandle(
        TableSchema("Done", "int vertex -> int distance",
                    orderby=("seq distance", "Done"))
    )
    decls.freeze()

    def ts(tup):
        return evaluate_orderby(tup.schema.orderby, tup.asdict(), decls)

    return Est, Done, ts


class TestInsertPop:
    def test_pop_in_distance_order(self):
        Est, _, ts = make_env()
        d = DeltaTree()
        for dist in (5, 1, 3):
            t = Est.new(dist, dist)
            d.insert(t, ts(t))
        dists = [batch[0].distance for batch in d.drain()]
        assert dists == [1, 3, 5]

    def test_equivalence_class_pops_together(self):
        Est, _, ts = make_env()
        d = DeltaTree()
        for v in range(4):
            t = Est.new(v, 7)
            d.insert(t, ts(t))
        batch = d.pop_min_class()
        assert len(batch) == 4
        assert not d

    def test_literal_level_orders_tables(self):
        Est, Done, ts = make_env()
        d = DeltaTree()
        dn = Done.new(0, 5)
        es = Est.new(1, 5)
        d.insert(dn, ts(dn))
        d.insert(es, ts(es))
        first = d.pop_min_class()
        second = d.pop_min_class()
        assert first == [es]  # Estimate < Done at equal distance
        assert second == [dn]

    def test_dedup_on_insert(self):
        Est, _, ts = make_env()
        d = DeltaTree()
        t = Est.new(1, 5)
        assert d.insert(t, ts(t))
        assert not d.insert(t, ts(t))
        assert not d.insert(Est.new(1, 5), ts(t))  # equal value, new object
        assert len(d) == 1

    def test_membership(self):
        Est, _, ts = make_env()
        d = DeltaTree()
        t = Est.new(1, 5)
        d.insert(t, ts(t))
        assert t in d
        d.pop_min_class()
        assert t not in d

    def test_reinsert_after_pop_allowed(self):
        Est, _, ts = make_env()
        d = DeltaTree()
        t = Est.new(1, 5)
        d.insert(t, ts(t))
        d.pop_min_class()
        assert d.insert(t, ts(t))

    def test_pop_empty(self):
        assert DeltaTree().pop_min_class() == []

    def test_interleaved_insert_pop(self):
        """Dijkstra style: popping a class inserts later classes."""
        Est, _, ts = make_env()
        d = DeltaTree()
        t0 = Est.new(0, 0)
        d.insert(t0, ts(t0))
        seen = []
        while d:
            batch = d.pop_min_class()
            for t in batch:
                seen.append(t.distance)
                if t.distance < 3:
                    nxt = Est.new(t.vertex + 1, t.distance + 1)
                    d.insert(nxt, ts(nxt))
        assert seen == [0, 1, 2, 3]

    def test_kind_mismatch_raises(self):
        decls = OrderDecls()
        decls.mention("A")
        decls.freeze()
        T1 = TableHandle(TableSchema("T1", "int x", orderby=("A",)))
        T2 = TableHandle(TableSchema("T2", "int x", orderby=("seq x",)))
        d = DeltaTree()
        t1 = T1.new(1)
        t2 = T2.new(1)
        d.insert(t1, evaluate_orderby(T1.schema.orderby, t1.asdict(), decls))
        with pytest.raises(OrderingError):
            d.insert(t2, evaluate_orderby(T2.schema.orderby, t2.asdict(), decls))

    def test_prefix_pops_before_extension(self):
        decls = OrderDecls()
        decls.mention("Req")
        decls.freeze()
        Short = TableHandle(TableSchema("Short", "int x", orderby=("Req",)))
        Long = TableHandle(TableSchema("Long", "int x", orderby=("Req", "par x")))
        d = DeltaTree()
        lg = Long.new(1)
        sh = Short.new(1)
        d.insert(lg, evaluate_orderby(Long.schema.orderby, lg.asdict(), decls))
        d.insert(sh, evaluate_orderby(Short.schema.orderby, sh.asdict(), decls))
        assert d.pop_min_class() == [sh]
        assert d.pop_min_class() == [lg]

    def test_par_level_collapses(self):
        decls = OrderDecls()
        decls.mention("R")
        decls.freeze()
        T = TableHandle(TableSchema("T", "int region", orderby=("R", "par region")))
        d = DeltaTree()
        for r in range(5):
            t = T.new(r)
            d.insert(t, evaluate_orderby(T.schema.orderby, t.asdict(), decls))
        assert len(d.pop_min_class()) == 5

    def test_clear(self):
        Est, _, ts = make_env()
        d = DeltaTree()
        t = Est.new(1, 1)
        d.insert(t, ts(t))
        d.clear()
        assert len(d) == 0 and t not in d

    def test_snapshot_in_causal_order(self):
        Est, Done, ts = make_env()
        d = DeltaTree()
        for dist in (3, 1):
            t = Est.new(0, dist)
            d.insert(t, ts(t))
        dn = Done.new(0, 1)
        d.insert(dn, ts(dn))
        snap = d.snapshot()
        assert len(snap) == 3
        # first leaf is distance 1 / Estimate
        assert snap[0][0][0] == ("seq", 1)


# -- property-based ------------------------------------------------------------


@st.composite
def tuple_batches(draw):
    Est, Done, ts = make_env()
    n = draw(st.integers(1, 40))
    tuples = []
    for _ in range(n):
        table = draw(st.sampled_from([Est, Done]))
        v = draw(st.integers(0, 5))
        dist = draw(st.integers(0, 5))
        if table is Done:
            # keyed table: keep (vertex -> distance) functional
            dist = v
        tuples.append(table.new(v, dist))
    return tuples, ts


@settings(max_examples=60, deadline=None)
@given(tuple_batches())
def test_pops_nondecreasing_and_complete(batch_ts):
    tuples, ts = batch_ts
    d = DeltaTree()
    inserted = set()
    for t in tuples:
        d.insert(t, ts(t))
        inserted.add(t)
    popped = []
    last_ts = None
    total = 0
    while d:
        batch = d.pop_min_class()
        assert batch
        total += len(batch)
        t0 = ts(batch[0])
        for t in batch:
            assert compare_timestamps(ts(t), t0) == 0  # one equivalence class
        if last_ts is not None:
            assert compare_timestamps(last_ts, t0) < 0  # strictly increasing classes
        last_ts = t0
        popped.extend(batch)
    assert set(popped) == inserted
    assert total == len(inserted)


@settings(max_examples=40, deadline=None)
@given(tuple_batches())
def test_len_tracks_unique_inserts(batch_ts):
    tuples, ts = batch_ts
    d = DeltaTree()
    uniq = set()
    for t in tuples:
        d.insert(t, ts(t))
        uniq.add(t)
    assert len(d) == len(uniq)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 20), min_size=1, max_size=50))
def test_matches_sorted_order_single_table(dists):
    Est, _, ts = make_env()
    d = DeltaTree()
    for i, dist in enumerate(dists):
        t = Est.new(i, dist)
        d.insert(t, ts(t))
    order = [t.distance for batch in d.drain() for t in sorted(batch, key=lambda x: x.vertex)]
    assert order == sorted(dists, key=functools.cmp_to_key(lambda a, b: a - b))
