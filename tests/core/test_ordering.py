"""Tests for orderby specs, order declarations, and timestamps."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import OrderingError
from repro.core.ordering import (
    KIND_LIT,
    KIND_PAR,
    KIND_SEQ,
    Lit,
    OrderDecls,
    Par,
    Seq,
    Timestamp,
    compare_timestamps,
    evaluate_orderby,
    parse_orderby,
)


class TestParseOrderby:
    def test_strings_become_entries(self):
        spec = parse_orderby(("Int", "seq frame", "par region"))
        assert spec == (Lit("Int"), Seq("frame"), Par("region"))

    def test_objects_pass_through(self):
        spec = parse_orderby((Lit("A"), Seq("x")))
        assert spec == (Lit("A"), Seq("x"))

    def test_lowercase_literal_rejected(self):
        with pytest.raises(OrderingError):
            parse_orderby(("int",))

    def test_bad_entry_type_rejected(self):
        with pytest.raises(OrderingError):
            parse_orderby((42,))

    def test_whitespace_tolerated(self):
        spec = parse_orderby(("  seq  x  ",))
        assert spec == (Seq("x"),)

    def test_empty_spec_is_legal(self):
        assert parse_orderby(()) == ()


class TestOrderDecls:
    def test_declared_chain_gives_ranks(self):
        d = OrderDecls()
        d.declare("Req", "PvWatts", "SumMonth")
        d.freeze()
        assert d.rank("Req") < d.rank("PvWatts") < d.rank("SumMonth")

    def test_transitive_closure(self):
        d = OrderDecls()
        d.declare("A", "B")
        d.declare("B", "C")
        d.freeze()
        assert d.declared_less("A", "C")
        assert not d.declared_less("C", "A")

    def test_unordered_literals_not_declared_less(self):
        d = OrderDecls()
        d.declare("A", "B")
        d.mention("X")
        d.freeze()
        assert not d.declared_less("A", "X")
        assert not d.declared_less("X", "A")
        assert not d.comparable("A", "X")
        assert d.comparable("A", "B")

    def test_cycle_detected(self):
        d = OrderDecls()
        d.declare("A", "B")
        d.declare("B", "A")
        with pytest.raises(OrderingError, match="cyclic"):
            d.freeze()

    def test_self_order_rejected(self):
        d = OrderDecls()
        with pytest.raises(OrderingError):
            d.declare("A", "A")

    def test_single_name_rejected(self):
        d = OrderDecls()
        with pytest.raises(OrderingError):
            d.declare("A")

    def test_mention_after_freeze_of_unknown_rejected(self):
        d = OrderDecls()
        d.declare("A", "B")
        d.freeze()
        with pytest.raises(OrderingError):
            d.mention("Z")

    def test_mention_after_freeze_of_known_ok(self):
        d = OrderDecls()
        d.declare("A", "B")
        d.freeze()
        d.mention("A")  # no error

    def test_declare_after_freeze_rejected(self):
        d = OrderDecls()
        d.declare("A", "B")
        d.freeze()
        with pytest.raises(OrderingError):
            d.declare("B", "C")

    def test_freeze_idempotent(self):
        d = OrderDecls()
        d.declare("A", "B")
        d.freeze()
        d.freeze()
        assert d.literals() == ("A", "B")

    def test_rank_deterministic_by_first_seen(self):
        d = OrderDecls()
        d.mention("Z")
        d.mention("A")
        d.freeze()
        # no order constraints: first-seen order decides
        assert d.rank("Z") < d.rank("A")

    def test_unknown_rank_raises(self):
        d = OrderDecls()
        d.declare("A", "B")
        d.freeze()
        with pytest.raises(OrderingError):
            d.rank("Nope")

    def test_use_before_freeze_raises(self):
        d = OrderDecls()
        d.declare("A", "B")
        with pytest.raises(OrderingError):
            d.rank("A")


def _decls(*chains):
    d = OrderDecls()
    for chain in chains:
        d.declare(*chain)
    d.freeze()
    return d


def ts(*comps) -> Timestamp:
    """Shorthand: ints are seq values, strings are literal ranks via a
    default decls, ('par',) is a par component."""
    key, display = [], []
    for c in comps:
        if isinstance(c, tuple) and c[0] == "par":
            key.append((KIND_PAR,))
            display.append("*")
        elif isinstance(c, tuple) and c[0] == "lit":
            key.append((KIND_LIT, c[1]))
            display.append(f"L{c[1]}")
        else:
            key.append((KIND_SEQ, c))
            display.append(c)
    return Timestamp(tuple(key), tuple(display))


class TestTimestampComparison:
    def test_seq_ordering(self):
        assert ts(1) < ts(2)
        assert ts(2) > ts(1)
        assert ts(1) == ts(1)

    def test_lexicographic(self):
        assert ts(1, 9) < ts(2, 0)
        assert ts(1, 0) < ts(1, 5)

    def test_prefix_sorts_first(self):
        assert compare_timestamps(ts(1), ts(1, 0)) < 0
        assert compare_timestamps(ts(1, 0), ts(1)) > 0

    def test_par_levels_equivalent(self):
        a = Timestamp(((KIND_SEQ, 1), (KIND_PAR,)), (1, "a"))
        b = Timestamp(((KIND_SEQ, 1), (KIND_PAR,)), (1, "b"))
        assert a.equivalent(b)
        assert compare_timestamps(a, b) == 0
        # but the tuples are distinguishable objects
        assert a.display != b.display

    def test_lit_ranks_compare(self):
        assert ts(("lit", 0)) < ts(("lit", 1))

    def test_kind_mismatch_raises(self):
        with pytest.raises(OrderingError, match="incomparable"):
            compare_timestamps(ts(("lit", 0)), ts(5))

    def test_incomparable_value_types_raise(self):
        with pytest.raises(OrderingError):
            compare_timestamps(ts("abc"), ts(5))

    def test_hash_consistent_with_eq(self):
        assert hash(ts(1, 2)) == hash(ts(1, 2))

    def test_equivalent_differs_from_python_eq_for_par(self):
        a = Timestamp(((KIND_PAR,),), ("x",))
        b = Timestamp(((KIND_PAR,),), ("y",))
        assert a == b  # same key
        assert a.equivalent(b)

    def test_repr_mentions_components(self):
        r = repr(ts(("lit", 3), 7))
        assert "seq=7" in r


class TestEvaluateOrderby:
    def test_ship_style(self):
        d = _decls()
        d2 = OrderDecls()
        d2.mention("Int")
        d2.freeze()
        spec = parse_orderby(("Int", "seq frame"))
        t = evaluate_orderby(spec, {"frame": 3, "x": 1}, d2)
        assert t.key == ((KIND_LIT, 0), (KIND_SEQ, 3))
        assert t.display == ("Int", 3)
        del d

    def test_par_field_erased_from_key(self):
        d = OrderDecls()
        d.mention("A")
        d.freeze()
        spec = parse_orderby(("A", "par region"))
        t1 = evaluate_orderby(spec, {"region": 1}, d)
        t2 = evaluate_orderby(spec, {"region": 2}, d)
        assert t1 == t2
        assert t1.display != t2.display


# -- property-based -----------------------------------------------------------

seq_ts = st.lists(st.integers(-50, 50), min_size=0, max_size=4).map(lambda xs: ts(*xs))


@given(seq_ts, seq_ts)
def test_comparison_antisymmetric(a, b):
    ca, cb = compare_timestamps(a, b), compare_timestamps(b, a)
    assert ca == -cb


@given(seq_ts, seq_ts, seq_ts)
def test_comparison_transitive(a, b, c):
    if compare_timestamps(a, b) <= 0 and compare_timestamps(b, c) <= 0:
        assert compare_timestamps(a, c) <= 0


@given(seq_ts)
def test_comparison_reflexive(a):
    assert compare_timestamps(a, a) == 0


@given(st.lists(seq_ts, min_size=1, max_size=8))
def test_sorting_by_comparison_is_stable_total_order(tss):
    import functools

    ordered = sorted(tss, key=functools.cmp_to_key(compare_timestamps))
    for x, y in zip(ordered, ordered[1:]):
        assert compare_timestamps(x, y) <= 0
