"""Tests for the §5.2 'additional parallelism' extensions and the §5
step-4 lifetime hints — the paper's listed-but-unexploited headroom,
implemented here as opt-in features.

* per-rule task granularity ("we could create one task per rule that
  is triggered");
* in-rule parallel reducer loops (``ctx.par_reduce``: tree-combined,
  metered as divisible work);
* :class:`RetentionHint` Gamma pruning ("use manual lifetime hints from
  the user to determine when tuples can be discarded").
"""

from __future__ import annotations

import pytest

from repro.core import (
    EngineError,
    ExecOptions,
    Program,
    RetentionHint,
    Statistics,
    SumReducer,
)


def fanout_program():
    """One table whose tuples trigger THREE rules."""
    p = Program("fanout")
    Src = p.table("Src", "int i", orderby=("A", "par i"))
    Out = p.table("Out", "int rule_id, int i", orderby=("B", "par i"))
    p.order("A", "B")

    for rid in range(3):
        @p.foreach(Src, name=f"r{rid}")
        def r(ctx, s, rid=rid):
            ctx.put(Out.new(rid, s.i))
            ctx.charge(50.0)

    for i in range(6):
        p.put(Src.new(i))
    return p


class TestPerRuleTasks:
    def test_same_output_both_granularities(self):
        a = fanout_program().run(ExecOptions())
        b = fanout_program().run(ExecOptions(task_granularity="rule"))
        assert a.table_sizes == b.table_sizes == {"Src": 6, "Out": 18}
        assert a.stats.rules["r0"].firings == b.stats.rules["r0"].firings == 6

    def test_more_tasks_created(self):
        tup = fanout_program().run(ExecOptions(strategy="forkjoin", threads=4))
        rule = fanout_program().run(
            ExecOptions(strategy="forkjoin", threads=4, task_granularity="rule")
        )
        # 6 Src tuples x 3 rules = 18 tasks vs 6 (plus the Out batch)
        assert rule.report.tasks > tup.report.tasks

    def test_exposes_more_parallelism(self):
        """With fewer tuples than cores, per-rule tasks beat per-tuple
        tasks because the three rules of one tuple can spread out."""
        def run(gran):
            p = Program("narrow")
            Src = p.table("Src", "int i", orderby=("A", "par i"))
            for rid in range(4):
                @p.foreach(Src, name=f"r{rid}")
                def r(ctx, s, rid=rid):
                    ctx.charge(200.0)
            p.put(Src.new(0))  # a single tuple
            return p.run(
                ExecOptions(strategy="forkjoin", threads=4, task_granularity=gran)
            ).virtual_time

        assert run("rule") < run("tuple")

    def test_duplicates_still_skipped(self):
        p = Program("dups")
        Src = p.table("Src", "int i", orderby=("A", "par i"))
        Out = p.table("Out", "int v", orderby=("B",))
        p.order("A", "B")
        fired = []

        @p.foreach(Src)
        def emit(ctx, s):
            ctx.put(Out.new(7))

        @p.foreach(Out)
        def record(ctx, o):
            fired.append(o.v)

        for i in range(5):
            p.put(Src.new(i))
        p.run(ExecOptions(task_granularity="rule"))
        assert fired == [7]

    def test_threads_strategy_compatible(self):
        a = fanout_program().run(
            ExecOptions(strategy="threads", threads=3, task_granularity="rule")
        )
        assert a.table_sizes["Out"] == 18

    def test_invalid_granularity_rejected(self):
        with pytest.raises(EngineError):
            ExecOptions(task_granularity="cell")


class TestParReduce:
    def _program(self, chunks):
        p = Program("parred")
        Data = p.table("Data", "int g, int v", orderby=("A",))
        Go = p.table("Go", "int g", orderby=("B",))
        p.order("A", "B")
        got = {}

        @p.foreach(Go)
        def agg(ctx, go):
            rows = ctx.get(Data, go.g)
            got["sum"] = ctx.par_reduce((t.v for t in rows), SumReducer(), chunks=chunks)
            got["stats"] = ctx.par_reduce(
                (float(t.v) for t in rows), Statistics(), chunks=chunks
            )

        for v in range(40):
            p.put(Data.new(0, v))
        p.put(Go.new(0))
        return p, got

    @pytest.mark.parametrize("chunks", [1, 3, 8, 64])
    def test_results_match_sequential(self, chunks):
        p, got = self._program(chunks)
        p.run()
        assert got["sum"] == sum(range(40))
        assert got["stats"].count == 40
        assert got["stats"].mean == pytest.approx(19.5)

    def test_empty_input(self):
        p = Program("empty")
        Go = p.table("Go", "int g", orderby=("B",))
        got = {}

        @p.foreach(Go)
        def agg(ctx, go):
            got["sum"] = ctx.par_reduce([], SumReducer())

        p.put(Go.new(0))
        p.run()
        assert got["sum"] == 0

    def test_divisible_work_speeds_up_forkjoin(self):
        def run(threads):
            p = Program("divide")
            Go = p.table("Go", "int g", orderby=("B",))

            @p.foreach(Go)
            def agg(ctx, go):
                ctx.par_reduce(range(1000), SumReducer(), chunks=16, cost_per_item=1.0)

            p.put(Go.new(0))
            return p.run(
                ExecOptions(strategy="forkjoin", threads=threads)
            ).virtual_time

        t1, t8 = run(1), run(8)
        assert t8 < t1 / 3  # a single rule's loop now parallelises

    def test_meter_records_splittable(self):
        p, _ = self._program(chunks=8)
        r = p.run()
        assert r.meter.splittable  # recorded through the merge chain
        assert r.meter.count("par_loop") == 2


class TestRetentionHints:
    def _program(self, retention):
        from repro.simcore.gc import GcModel

        p = Program("gen")
        T = p.table("T", "int gen, int i", orderby=("Int", "seq gen", "par i"))

        @p.foreach(T)
        def advance(ctx, t):
            if t.gen < 9:
                ctx.put(T.new(t.gen + 1, t.i))

        for i in range(4):
            p.put(T.new(0, i))
        # GC model scaled to this tiny heap so pressure differences are
        # visible (the default half-full point is ~200k tuples)
        return p.run(ExecOptions(retention=retention, gc_model=GcModel(half_full=20.0)))

    def test_without_hint_everything_retained(self):
        r = self._program({})
        assert r.table_sizes["T"] == 40

    def test_hint_keeps_last_generations(self):
        r = self._program({"T": RetentionHint("gen", keep_last=2)})
        assert r.table_sizes["T"] == 8  # generations 8 and 9 only
        remaining = {t.gen for t in r.database.store("T").scan()}
        assert remaining == {8, 9}
        assert r.stats.tables["T"].gamma_discarded == 32

    def test_hint_does_not_change_outputs(self):
        plain = self._program({})
        pruned = self._program({"T": RetentionHint("gen", keep_last=2)})
        assert plain.stats.rules["advance"].firings == pruned.stats.rules["advance"].firings

    def test_hint_reduces_gc_pressure(self):
        plain = self._program({})
        pruned = self._program({"T": RetentionHint("gen", keep_last=1)})
        assert pruned.report.gc_time < plain.report.gc_time

    def test_unknown_table_rejected(self):
        with pytest.raises(EngineError, match="unknown table"):
            self._program({"Ghost": RetentionHint("gen")})

    def test_unknown_field_rejected(self):
        with pytest.raises(Exception):
            self._program({"T": RetentionHint("nope")})

    def test_keep_last_validated(self):
        with pytest.raises(EngineError):
            RetentionHint("gen", keep_last=0)
