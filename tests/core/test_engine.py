"""Engine lifecycle tests: Fig 3's tuple lifecycle, optimisations,
set semantics, determinism, and failure modes."""

from __future__ import annotations

import pytest

from repro.core import (
    CausalityError,
    EngineError,
    ExecOptions,
    KeyInvariantError,
    Program,
)


def counter_program(limit: int = 5):
    p = Program("counter")
    T = p.table("T", "int t -> int v", orderby=("Int", "seq t"))
    Log = p.table("Log", "int t, int v", orderby=("Out", "seq t"))
    p.order("Int", "Out")

    @p.foreach(T)
    def step(ctx, t):
        ctx.println(f"t={t.t} v={t.v}")
        ctx.put(Log.new(t.t, t.v))
        if t.t < limit:
            ctx.put(T.new(t.t + 1, t.v * 2))

    p.put(T.new(0, 1))
    return p, T, Log


class TestLifecycle:
    def test_runs_to_completion(self):
        p, _, _ = counter_program()
        r = p.run()
        assert r.steps == 12  # 6 T classes + 6 Log classes
        assert r.output[0] == "t=0 v=1"
        assert r.table_sizes["T"] == 6 and r.table_sizes["Log"] == 6

    def test_gamma_holds_all_tuples(self):
        p, T, _ = counter_program()
        r = p.run()
        vals = sorted(t.v for t in r.database.store("T").scan())
        assert vals == [1, 2, 4, 8, 16, 32]

    def test_engine_single_use(self):
        from repro.core.engine import Engine

        p, _, _ = counter_program()
        e = Engine(p, ExecOptions())
        e.run()
        with pytest.raises(EngineError, match="once"):
            e.run()

    def test_max_steps_guard(self):
        p = Program("forever")
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def diverge(ctx, t):
            ctx.put(T.new(t.t + 1))  # the paper's infinite Ship loop

        p.put(T.new(0))
        with pytest.raises(EngineError, match="max_steps"):
            p.run(ExecOptions(max_steps=10))

    def test_virtual_time_positive(self):
        p, _, _ = counter_program()
        assert p.run().virtual_time > 0


class TestSetSemantics:
    def test_duplicate_puts_discarded(self):
        p = Program("dups")
        Src = p.table("Src", "int i", orderby=("A", "par i"))
        Out = p.table("Out", "int v", orderby=("B",))
        p.order("A", "B")
        fired = []

        @p.foreach(Src)
        def emit(ctx, s):
            ctx.put(Out.new(s.i % 2))  # many duplicates

        @p.foreach(Out)
        def count(ctx, o):
            fired.append(o.v)

        for i in range(10):
            p.put(Src.new(i))
        r = p.run()
        assert sorted(fired) == [0, 1]  # Out fired once per unique tuple
        assert r.stats.tables["Out"].duplicates == 8

    def test_rederived_tuple_after_pop_not_refired(self):
        p = Program("rederive")
        A = p.table("A", "int i", orderby=("A", "seq i"))
        B = p.table("B", "int v", orderby=("B",))
        p.order("A", "B")
        fires = []

        @p.foreach(A)
        def emit(ctx, a):
            ctx.put(B.new(7))  # same B from every A

        @p.foreach(B)
        def record(ctx, b):
            fires.append(b.v)

        for i in range(3):
            p.put(A.new(i))
        p.run()
        # B(7) derived three times, but Gamma dedup fires it exactly once
        assert fires == [7]

    def test_key_invariant_violation(self):
        p = Program("keys")
        K = p.table("K", "int k -> int v", orderby=("A", "par k"))

        @p.foreach(K)
        def clash(ctx, t):
            if t.k == 0:
                ctx.put(K.new(0, 99))  # same key, different value

        p.put(K.new(0, 1))
        with pytest.raises(KeyInvariantError):
            p.run()

    def test_exact_duplicate_with_key_is_fine(self):
        p = Program("keys2")
        K = p.table("K", "int k -> int v", orderby=("A", "par k"))

        @p.foreach(K)
        def rederive(ctx, t):
            if t.k == 0 and t.v == 1:
                ctx.put(K.new(0, 1))  # exact duplicate: discarded silently

        p.put(K.new(0, 1))
        r = p.run()
        assert r.table_sizes["K"] == 1


class TestOptimisations:
    def _program(self):
        p = Program("opt")
        Src = p.table("Src", "int i", orderby=("A", "par i"))
        Mid = p.table("Mid", "int i", orderby=("B", "par i"))
        Sink = p.table("Sink", "int total", orderby=("C",))
        p.order("A", "B", "C")

        @p.foreach(Src)
        def fan(ctx, s):
            ctx.put(Mid.new(s.i))

        @p.foreach(Mid)
        def mid(ctx, m):
            ctx.put(Sink.new(m.i))

        for i in range(6):
            p.put(Src.new(i))
        return p

    def test_no_delta_bypasses_tree(self):
        r = self._program().run(ExecOptions(no_delta=frozenset({"Mid"})))
        assert r.stats.tables["Mid"].delta_bypass == 6
        assert r.stats.tables["Mid"].delta_inserts == 0
        assert r.table_sizes["Sink"] == 6

    def test_no_delta_output_equivalent(self):
        plain = self._program().run()
        opt = self._program().run(ExecOptions(no_delta=frozenset({"Mid"})))
        assert plain.table_sizes == opt.table_sizes

    def test_no_gamma_skips_storage(self):
        r = self._program().run(ExecOptions(no_gamma=frozenset({"Mid"})))
        assert r.table_sizes["Mid"] == 0
        assert r.stats.tables["Mid"].gamma_skipped == 6
        assert r.table_sizes["Sink"] == 6  # rules still fired

    def test_no_delta_reduces_virtual_time(self):
        plain = self._program().run()
        opt = self._program().run(ExecOptions(no_delta=frozenset({"Mid", "Sink"})))
        assert opt.virtual_time < plain.virtual_time

    def test_no_delta_cascade_at_init(self):
        p = Program("init-cascade")
        A = p.table("A", "int i", orderby=("A",))
        B = p.table("B", "int i", orderby=("B",))
        p.order("A", "B")

        @p.foreach(A)
        def fan(ctx, a):
            ctx.put(B.new(a.i))

        p.put(A.new(1))
        r = p.run(ExecOptions(no_delta=frozenset({"A"})))
        assert r.table_sizes == {"A": 1, "B": 1}
        assert r.steps == 1  # only B went through Delta


class TestCausalityEnforcement:
    def _past_put_program(self):
        p = Program("cheat")
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def back(ctx, t):
            if t.t == 1:
                ctx.put(T.new(0))  # into the past!

        p.put(T.new(1))
        return p

    def test_put_into_past_raises_by_default(self):
        with pytest.raises(CausalityError, match="past"):
            self._past_put_program().run()

    def test_check_off_lets_it_through(self):
        r = self._past_put_program().run(ExecOptions(causality_check="off"))
        assert r.table_sizes["T"] == 2

    def test_put_into_present_allowed(self):
        p = Program("present")
        T = p.table("T", "int t, int j", orderby=("Int", "seq t", "par j"))
        fired = []

        @p.foreach(T)
        def same_time(ctx, t):
            fired.append(t.j)
            if t.j == 0:
                ctx.put(T.new(t.t, 1))  # same timestamp: present, legal

        p.put(T.new(0, 0))
        p.run()
        assert sorted(fired) == [0, 1]


class TestStrategies:
    @pytest.mark.parametrize("strategy,threads", [
        ("sequential", 1), ("forkjoin", 1), ("forkjoin", 4),
        ("forkjoin", 32), ("threads", 2), ("threads", 4),
    ])
    def test_output_identical_across_strategies(self, strategy, threads):
        ref = counter_program()[0].run()
        r = counter_program()[0].run(ExecOptions(strategy=strategy, threads=threads))
        assert r.output == ref.output
        assert r.table_sizes == ref.table_sizes

    def test_forkjoin_reports_machine(self):
        r = counter_program()[0].run(ExecOptions(strategy="forkjoin", threads=4))
        assert r.report is not None and r.report.n_cores == 4

    def test_threads_strategy_has_no_machine(self):
        r = counter_program()[0].run(ExecOptions(strategy="threads", threads=2))
        assert r.report is None

    def test_invalid_strategy_rejected(self):
        with pytest.raises(EngineError):
            ExecOptions(strategy="gpu")

    def test_invalid_threads_rejected(self):
        with pytest.raises(EngineError):
            ExecOptions(threads=0)

    def test_invalid_check_mode_rejected(self):
        with pytest.raises(EngineError):
            ExecOptions(causality_check="maybe")

    def test_parallel_batch_runs_in_one_step(self):
        p = Program("wide")
        W = p.table("W", "int i", orderby=("A", "par i"))

        @p.foreach(W)
        def noop(ctx, w):
            pass

        for i in range(20):
            p.put(W.new(i))
        r = p.run(ExecOptions(strategy="forkjoin", threads=8))
        assert r.steps == 1
        assert r.stats.max_batch == 20

    def test_more_threads_not_slower_for_wide_batches(self):
        def run(threads):
            p = Program("wide2")
            W = p.table("W", "int i", orderby=("A", "par i"))

            @p.foreach(W)
            def work(ctx, w):
                ctx.charge(100.0)

            for i in range(64):
                p.put(W.new(i))
            return p.run(ExecOptions(strategy="forkjoin", threads=threads)).virtual_time

        t1, t8 = run(1), run(8)
        assert t8 < t1 / 4  # wide independent work parallelises
