"""Tests for the Gamma database layer."""

from __future__ import annotations

import pytest

from repro.core.database import Database, InsertOutcome
from repro.core.errors import KeyInvariantError, UnknownTableError
from repro.core.ordering import OrderDecls
from repro.core.query import build_query
from repro.core.schema import TableSchema
from repro.core.tuples import TableHandle
from repro.gamma import StoreRegistry, TreeSetStore


@pytest.fixture
def env():
    decls = OrderDecls()
    decls.declare("A", "B")
    Keyed = TableHandle(TableSchema("Keyed", "int k -> int v", orderby=("A", "seq k")))
    Plain = TableHandle(TableSchema("Plain", "int x, int y", orderby=("B",)))
    decls.freeze()
    db = Database(
        {"Keyed": Keyed.schema, "Plain": Plain.schema},
        StoreRegistry(lambda s: TreeSetStore(s)),
        decls,
    )
    return db, Keyed, Plain


class TestInsert:
    def test_new_then_duplicate(self, env):
        db, Keyed, _ = env
        t = Keyed.new(1, 10)
        assert db.insert(t) is InsertOutcome.NEW
        assert db.insert(t) is InsertOutcome.DUPLICATE
        assert db.insert(Keyed.new(1, 10)) is InsertOutcome.DUPLICATE

    def test_key_conflict(self, env):
        db, Keyed, _ = env
        db.insert(Keyed.new(1, 10))
        with pytest.raises(KeyInvariantError, match="already bound"):
            db.insert(Keyed.new(1, 11))

    def test_unkeyed_table_allows_same_prefix(self, env):
        db, _, Plain = env
        assert db.insert(Plain.new(1, 1)) is InsertOutcome.NEW
        assert db.insert(Plain.new(1, 2)) is InsertOutcome.NEW

    def test_unknown_table(self, env):
        db, _, _ = env
        Ghost = TableHandle(TableSchema("Ghost", "int x"))
        with pytest.raises(UnknownTableError):
            db.insert(Ghost.new(1))

    def test_contains(self, env):
        db, Keyed, _ = env
        t = Keyed.new(1, 10)
        assert t not in db
        db.insert(t)
        assert t in db

    def test_discard(self, env):
        db, Keyed, _ = env
        t = Keyed.new(1, 10)
        db.insert(t)
        assert db.discard(t)
        assert t not in db
        assert not db.discard(t)


class TestQueriesAndSizes:
    def test_select(self, env):
        db, _, Plain = env
        for x in range(5):
            db.insert(Plain.new(x % 2, x))
        got = db.select(build_query(Plain, 1))
        assert sorted(t.y for t in got) == [1, 3]

    def test_iter_select_lazy(self, env):
        db, _, Plain = env
        db.insert(Plain.new(0, 1))
        it = db.iter_select(build_query(Plain))
        assert next(it).y == 1

    def test_sizes(self, env):
        db, Keyed, Plain = env
        db.insert(Keyed.new(1, 1))
        db.insert(Plain.new(1, 1))
        db.insert(Plain.new(1, 2))
        assert db.size(Plain) == 2
        assert db.size("Keyed") == 1
        assert db.total_tuples() == 3
        assert db.table_sizes() == {"Keyed": 1, "Plain": 2}
        assert db.heap_tuples() == 3


class TestTimestamps:
    def test_timestamp_uses_orderby(self, env):
        db, Keyed, Plain = env
        t1 = db.timestamp(Keyed.new(1, 10))
        t2 = db.timestamp(Keyed.new(2, 10))
        t3 = db.timestamp(Plain.new(0, 0))
        assert t1 < t2 < t3  # A-literals before B-literal

    def test_store_lookup_by_handle_and_name(self, env):
        db, Keyed, _ = env
        assert db.store(Keyed) is db.store("Keyed") is db.store(Keyed.schema)
