"""Tests for reduce/scan operators, incl. parallel-merge properties."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.reducers import (
    CountReducer,
    FnReducer,
    MaxReducer,
    MinReducer,
    Statistics,
    SumReducer,
    reduce_all,
    scan,
    tree_reduce,
)

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestBasics:
    def test_sum(self):
        assert reduce_all(SumReducer(), [1, 2, 3]) == 6

    def test_count(self):
        assert reduce_all(CountReducer(), "abcd") == 4

    def test_min_max(self):
        assert reduce_all(MinReducer(), [3, 1, 2]) == 1
        assert reduce_all(MaxReducer(), [3, 1, 2]) == 3

    def test_min_empty_is_none(self):
        assert reduce_all(MinReducer(), []) is None
        assert reduce_all(MaxReducer(), []) is None

    def test_statistics_fields(self):
        acc = reduce_all(Statistics(), [2.0, 4.0, 6.0])
        assert acc.count == 3
        assert acc.mean == pytest.approx(4.0)
        assert acc.min == 2.0 and acc.max == 6.0
        assert acc.variance == pytest.approx(8 / 3)
        assert acc.total == pytest.approx(12.0)

    def test_statistics_stddev(self):
        acc = reduce_all(Statistics(), [1.0, 1.0, 1.0])
        assert acc.stddev == 0.0

    def test_statistics_single_value_variance_zero(self):
        assert reduce_all(Statistics(), [5.0]).variance == 0.0

    def test_scan_prefixes(self):
        assert list(scan(SumReducer(), [1, 2, 3])) == [1, 3, 6]

    def test_scan_empty(self):
        assert list(scan(SumReducer(), [])) == []

    def test_fn_reducer(self):
        concat = FnReducer(list, lambda a, v: a + [v], lambda a, b: a + b)
        assert reduce_all(concat, "abc") == ["a", "b", "c"]

    def test_tree_reduce_depth(self):
        result, depth = tree_reduce(SumReducer(), [[1], [2], [3], [4]])
        assert result == 10
        assert depth == 2  # 4 leaves -> log2 = 2 combine levels

    def test_tree_reduce_empty(self):
        result, depth = tree_reduce(SumReducer(), [])
        assert result == 0 and depth == 0

    def test_tree_reduce_odd_chunks(self):
        result, _ = tree_reduce(SumReducer(), [[1, 2], [3], [4, 5]])
        assert result == 15

    def test_reducer_base_raises(self):
        from repro.core.reducers import Reducer

        r = Reducer()
        with pytest.raises(NotImplementedError):
            r.zero()


# -- §5.2's tree-combination property: parallel == sequential ------------------


@given(st.lists(floats, max_size=60), st.integers(1, 7))
def test_statistics_combine_matches_sequential(xs, k):
    stats = Statistics()
    seq = reduce_all(stats, xs)
    chunks = [xs[i::k] for i in range(k)]
    par, _ = tree_reduce(stats, chunks)
    assert par.count == seq.count
    if xs:
        assert par.mean == pytest.approx(seq.mean, rel=1e-9, abs=1e-9)
        assert par.m2 == pytest.approx(seq.m2, rel=1e-6, abs=1e-6)
        assert par.min == seq.min and par.max == seq.max


@given(st.lists(st.integers(-100, 100), max_size=50), st.integers(1, 5))
def test_sum_combine_matches_sequential(xs, k):
    chunks = [xs[i::k] for i in range(k)]
    par, _ = tree_reduce(SumReducer(), chunks)
    assert par == sum(xs)


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=50), st.integers(1, 5))
def test_min_combine_matches_sequential(xs, k):
    chunks = [xs[i::k] for i in range(k)]
    par, _ = tree_reduce(MinReducer(), chunks)
    assert par == min(xs)


@given(st.lists(floats, min_size=2, max_size=80))
def test_statistics_welford_matches_naive(xs):
    acc = reduce_all(Statistics(), xs)
    mean = sum(xs) / len(xs)
    var = sum((x - mean) ** 2 for x in xs) / len(xs)
    assert acc.mean == pytest.approx(mean, rel=1e-7, abs=1e-6)
    assert acc.variance == pytest.approx(var, rel=1e-5, abs=1e-4)
    assert not math.isnan(acc.stddev)
