"""Edge cases of ``Engine._apply_retention`` (§5 step 4).

The happy path — keep the last N generations, prune the rest — is
covered by ``tests/core/test_extensions.py``.  These tests pin down the
boundaries: hints on tables that never reach Gamma, retention firing
during initialisation before any engine step runs, interaction with
negative queries that observe the discards, and indexed stores staying
consistent through retention discards.
"""

from __future__ import annotations

from repro.core import ExecOptions, Program, RetentionHint


class TestNoGammaRetention:
    """A hint on a ``-noGamma`` table must be a no-op, not a crash: the
    store exists but never receives tuples, so there is nothing to
    scan, no max to track, and nothing to discard."""

    def _program(self):
        p = Program("nogamma-retention")
        T = p.table("T", "int gen, int i", orderby=("Int", "seq gen", "par i"))
        Out = p.table("Out", "int gen", orderby=("Out",))

        @p.foreach(T, assume_stratified=True)
        def advance(ctx, t):
            if t.i == 0:
                ctx.put(Out.new(t.gen))
            if t.gen < 5:
                ctx.put(T.new(t.gen + 1, t.i))

        for i in range(3):
            p.put(T.new(0, i))
        return p

    def test_hint_on_nogamma_table_is_noop(self):
        r = self._program().run(
            ExecOptions(
                no_gamma=frozenset({"T"}),
                retention={"T": RetentionHint("gen", keep_last=2)},
            )
        )
        assert r.table_sizes["T"] == 0
        assert r.stats.tables["T"].gamma_discarded == 0
        # the run itself is unaffected: all 6 generations produced
        assert r.table_sizes["Out"] == 6

    def test_same_outputs_as_without_hint(self):
        base = ExecOptions(no_gamma=frozenset({"T"}))
        with_hint = base.with_(retention={"T": RetentionHint("gen", keep_last=2)})
        assert (
            self._program().run(base).table_sizes
            == self._program().run(with_hint).table_sizes
        )


class TestInitOnlyRetention:
    """With every table ``-noDelta``, the whole program cascades inside
    the initial-puts task: zero engine steps ever run, yet lifetime
    hints must still prune Gamma (the engine applies retention once
    after initialisation)."""

    def _run(self, retention):
        p = Program("init-only")
        T = p.table("T", "int gen", orderby=("T",))

        @p.foreach(T, assume_stratified=True)
        def advance(ctx, t):
            if t.gen < 7:
                ctx.put(T.new(t.gen + 1))

        p.put(T.new(0))
        return p.run(
            ExecOptions(no_delta=frozenset({"T"}), retention=retention)
        )

    def test_zero_steps(self):
        r = self._run({})
        assert r.steps == 0
        assert r.table_sizes["T"] == 8

    def test_retention_fires_without_any_step(self):
        r = self._run({"T": RetentionHint("gen", keep_last=3)})
        assert r.steps == 0
        assert r.table_sizes["T"] == 3
        remaining = {t.gen for t in r.database.store("T").scan()}
        assert remaining == {5, 6, 7}
        assert r.stats.tables["T"].gamma_discarded == 5


class TestDiscardsObservedByNegativeQuery:
    """A rule firing after a prune must see the discarded tuples as
    *absent*: retention feeds straight into negative-query semantics
    (the bounded-memory sensors pattern)."""

    def _run(self, retention, index_mode="off", indexes=None):
        p = Program("observe-discards")
        Tick = p.table("Tick", "int gen", orderby=("Int", "seq gen", "Tick"))
        Probe = p.table("Probe", "int gen", orderby=("Int", "seq gen", "Probe"))
        Seen = p.table("Seen", "int gen, bool old_visible", orderby=("Out",))
        p.order("Tick", "Probe")

        @p.foreach(Tick, assume_stratified=True)
        def tick(ctx, t):
            ctx.put(Probe.new(t.gen))
            if t.gen < 6:
                ctx.put(Tick.new(t.gen + 1))

        @p.foreach(Probe, assume_stratified=True)
        def probe(ctx, pr):
            # negative query two generations back: with keep_last=2 the
            # tuple was discarded by the time this fires
            old = ctx.get_uniq(Tick, gen=pr.gen - 2)
            ctx.put(Seen.new(pr.gen, old is not None))

        p.put(Tick.new(0))
        return p.run(
            ExecOptions(
                retention=retention,
                index_mode=index_mode,
                indexes=indexes or {},
            )
        )

    @staticmethod
    def _visibility(result) -> dict[int, bool]:
        return {
            t.gen: t.old_visible
            for t in result.database.store("Seen").scan()
        }

    def test_without_hint_history_visible(self):
        vis = self._visibility(self._run({}))
        assert vis == {g: g >= 2 for g in range(7)}

    def test_discards_turn_negative_queries_absent(self):
        vis = self._visibility(
            self._run({"Tick": RetentionHint("gen", keep_last=2)})
        )
        # generation g probes g-2, which retention has already pruned
        assert vis == {g: False for g in range(7)}

    def test_indexed_store_sees_the_same_discards(self):
        """Retention discards must be withdrawn from secondary indexes
        too — a stale index entry would make the pruned tuple visible
        again (opaque rule bodies hide the query from the planner, so
        the index is requested explicitly)."""
        from repro.gamma import IndexSpec, IndexedStore

        hint = {"Tick": RetentionHint("gen", keep_last=2)}
        plain = self._run(hint)
        indexed = self._run(
            hint,
            index_mode="explicit",
            indexes={"Tick": (IndexSpec(("gen",)),)},
        )
        store = indexed.database.store("Tick")
        assert isinstance(store, IndexedStore)
        assert store.index_usage()["hash(gen)"] > 0
        assert self._visibility(indexed) == self._visibility(plain)
        assert indexed.output_text() == plain.output_text()
        assert indexed.table_sizes == plain.table_sizes
