"""Tests for Program declarations and option plumbing."""

from __future__ import annotations

import pytest

from repro.core import ExecOptions, Program, SchemaError, UnknownTableError
from repro.gamma import HashKeyStore


class TestDeclarations:
    def test_duplicate_table_rejected(self):
        p = Program()
        p.table("T", "int x")
        with pytest.raises(SchemaError, match="twice"):
            p.table("T", "int x")

    def test_rule_on_foreign_table_rejected(self):
        p = Program()
        q = Program()
        T = q.table("T", "int x")
        with pytest.raises(UnknownTableError):
            p.foreach(T)(lambda ctx, t: None)

    def test_initial_put_on_foreign_table_rejected(self):
        p = Program()
        q = Program()
        T = q.table("T", "int x")
        with pytest.raises(UnknownTableError):
            p.put(T.new(1))

    def test_table_after_run_rejected(self):
        p = Program()
        p.table("T", "int x", orderby=("A",))
        p.run()
        with pytest.raises(SchemaError, match="after"):
            p.table("U", "int x")

    def test_rules_for_index(self):
        p = Program()
        T = p.table("T", "int x")
        U = p.table("U", "int x")

        @p.foreach(T, name="r1")
        def r1(ctx, t): ...

        @p.foreach(T, name="r2")
        def r2(ctx, t): ...

        p.freeze()
        assert [r.name for r in p.rules_for("T")] == ["r1", "r2"]
        assert p.rules_for("U") == []
        del U

    def test_rule_default_name_is_function_name(self):
        p = Program()
        T = p.table("T", "int x")

        @p.foreach(T)
        def my_rule(ctx, t): ...

        assert p.rules[0].name == "my_rule"
        assert "my_rule" in repr(p.rules[0])

    def test_repr(self):
        p = Program("demo")
        p.table("T", "int x")
        assert "demo" in repr(p) and "1 tables" in repr(p)


class TestRunPlumbing:
    def test_run_kwargs_shorthand(self):
        p = Program()
        T = p.table("T", "int x", orderby=("A", "par x"))
        p.put(T.new(1))
        r = p.run(strategy="forkjoin", threads=3)
        assert r.strategy == "forkjoin" and r.threads == 3

    def test_rerun_same_program(self):
        p = Program()
        T = p.table("T", "int x", orderby=("A", "par x"))
        p.put(T.new(1))
        r1, r2 = p.run(), p.run()
        assert r1.table_sizes == r2.table_sizes

    def test_store_override_applied(self):
        p = Program()
        T = p.table("T", "int k -> int v", orderby=("A", "par k"))
        p.put(T.new(1, 2))
        r = p.run(ExecOptions(store_overrides={"T": lambda s: HashKeyStore(s)}))
        assert isinstance(r.database.store("T"), HashKeyStore)

    def test_with_functional_update(self):
        o = ExecOptions()
        o2 = o.with_(threads=9)
        assert o.threads == 4 and o2.threads == 9

    def test_options_immutable(self):
        o = ExecOptions()
        with pytest.raises(Exception):
            o.threads = 2  # type: ignore[misc]
