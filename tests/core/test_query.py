"""Tests for the query AST."""

from __future__ import annotations

import pytest

from repro.core.errors import SchemaError
from repro.core.query import QueryKind, build_query
from repro.core.schema import TableSchema
from repro.core.tuples import TableHandle


@pytest.fixture
def PvWatts() -> TableHandle:
    return TableHandle(
        TableSchema("PvWatts", "int year, int month, int day, str hour, int power")
    )


@pytest.fixture
def Done() -> TableHandle:
    return TableHandle(TableSchema("Done", "int vertex -> int distance"))


class TestBuildQuery:
    def test_positional_prefix(self, PvWatts):
        q = build_query(PvWatts, 2012, 3)
        assert q.eq == {0: 2012, 1: 3}

    def test_named_eq(self, PvWatts):
        q = build_query(PvWatts, month=4)
        assert q.eq == {1: 4}

    def test_mixing_positional_and_named(self, PvWatts):
        q = build_query(PvWatts, 2012, month=4)
        assert q.eq == {0: 2012, 1: 4}

    def test_conflicting_constraints_rejected(self, PvWatts):
        with pytest.raises(SchemaError, match="twice"):
            build_query(PvWatts, 2012, year=2013)

    def test_too_many_positional(self, PvWatts):
        with pytest.raises(SchemaError):
            build_query(PvWatts, 1, 2, 3, 4, 5, 6)

    def test_range_tuple_inclusive(self, PvWatts):
        q = build_query(PvWatts, ranges={"power": (10, 20)})
        idx = PvWatts.schema.field_position("power")
        assert q.ranges[idx] == (10, 20, True, True)

    def test_range_dict_operators(self, PvWatts):
        q = build_query(PvWatts, ranges={"power": {"lt": 5, "ge": 1}})
        idx = PvWatts.schema.field_position("power")
        assert q.ranges[idx] == (1, 5, True, False)

    def test_range_unknown_op(self, PvWatts):
        with pytest.raises(SchemaError):
            build_query(PvWatts, ranges={"power": {"between": (1, 2)}})

    def test_range_and_eq_conflict(self, PvWatts):
        with pytest.raises(SchemaError):
            build_query(PvWatts, power=3, ranges={"power": (1, 2)})

    def test_default_kind_positive(self, PvWatts):
        assert build_query(PvWatts).kind is QueryKind.POSITIVE

    def test_with_kind(self, PvWatts):
        q = build_query(PvWatts).with_kind(QueryKind.NEGATIVE)
        assert q.kind is QueryKind.NEGATIVE


class TestMatching:
    def test_eq_match(self, PvWatts):
        q = build_query(PvWatts, 2012, 3)
        assert q.matches(PvWatts.new(2012, 3, 1, "00:00", 5))
        assert not q.matches(PvWatts.new(2012, 4, 1, "00:00", 5))

    def test_range_match_boundaries(self, PvWatts):
        q = build_query(PvWatts, ranges={"power": {"lt": 10, "ge": 5}})
        mk = lambda p: PvWatts.new(2012, 1, 1, "h", p)  # noqa: E731
        assert q.matches(mk(5))
        assert q.matches(mk(9))
        assert not q.matches(mk(10))
        assert not q.matches(mk(4))

    def test_where_predicate(self, PvWatts):
        q = build_query(PvWatts, where=lambda t: t.power % 2 == 0)
        assert q.matches(PvWatts.new(2012, 1, 1, "h", 4))
        assert not q.matches(PvWatts.new(2012, 1, 1, "h", 5))

    def test_filter(self, PvWatts):
        tuples = [PvWatts.new(2012, m, 1, "h", m) for m in range(1, 5)]
        q = build_query(PvWatts, ranges={"month": {"le": 2}})
        assert [t.month for t in q.filter(tuples)] == [1, 2]


class TestKeyBinding:
    def test_fully_bound_key(self, Done):
        q = build_query(Done, vertex=3)
        assert q.key_if_fully_bound() == (3,)

    def test_unbound_key(self, Done):
        q = build_query(Done)
        assert q.key_if_fully_bound() is None

    def test_unkeyed_table(self, PvWatts):
        assert build_query(PvWatts, 2012).key_if_fully_bound() is None

    def test_eq_on(self, PvWatts):
        q = build_query(PvWatts, 2012, 3)
        assert q.eq_on(("year", "month")) == (2012, 3)
        assert q.eq_on(("year", "day")) is None

    def test_repr_readable(self, PvWatts):
        q = build_query(PvWatts, 2012, ranges={"power": {"lt": 5}}, where=lambda t: True)
        r = repr(q)
        assert "year=2012" in r and "power<5" in r and "[...]" in r
