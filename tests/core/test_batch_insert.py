"""Batched step machinery: ``Database.insert_batch`` (phase A) and
``DeltaTree.insert_batch`` (phase C) must be positionally faithful to
the one-at-a-time loops they replace."""

from __future__ import annotations

import pytest

from repro.core.database import Database, InsertOutcome
from repro.core.delta import DeltaTree
from repro.core.errors import KeyInvariantError, UnknownTableError
from repro.core.ordering import OrderDecls, evaluate_orderby
from repro.core.schema import TableSchema
from repro.core.tuples import TableHandle
from repro.gamma import StoreRegistry, TreeSetStore


@pytest.fixture
def env():
    decls = OrderDecls()
    decls.declare("A", "B")
    Keyed = TableHandle(TableSchema("Keyed", "int k -> int v", orderby=("A", "seq k")))
    Plain = TableHandle(TableSchema("Plain", "int x, int y", orderby=("B", "seq x")))
    decls.freeze()
    db = Database(
        {"Keyed": Keyed.schema, "Plain": Plain.schema},
        StoreRegistry(lambda s: TreeSetStore(s)),
        decls,
    )
    return db, Keyed, Plain


class TestDatabaseInsertBatch:
    def test_outcomes_positionally_aligned(self, env):
        db, Keyed, Plain = env
        db.insert(Plain.new(9, 9))
        batch = [
            Keyed.new(1, 10),   # NEW
            Keyed.new(1, 10),   # DUPLICATE (same key, same value)
            Plain.new(9, 9),    # DUPLICATE (pre-existing)
            Plain.new(2, 2),    # NEW
        ]
        assert db.insert_batch(batch) == [
            InsertOutcome.NEW,
            InsertOutcome.DUPLICATE,
            InsertOutcome.DUPLICATE,
            InsertOutcome.NEW,
        ]

    def test_matches_sequential_inserts(self, env):
        db, Keyed, Plain = env
        db2, _, _ = (
            Database(
                {"Keyed": Keyed.schema, "Plain": Plain.schema},
                StoreRegistry(lambda s: TreeSetStore(s)),
                db.decls,
            ),
            None,
            None,
        )
        batch = [Plain.new(i % 3, i % 2) for i in range(10)] + [Keyed.new(0, 5)]
        assert db.insert_batch(batch) == [db2.insert(t) for t in batch]
        assert db.table_sizes() == db2.table_sizes()

    def test_skip_tables_get_none(self, env):
        db, Keyed, Plain = env
        out = db.insert_batch(
            [Plain.new(1, 1), Keyed.new(1, 1)], skip=frozenset({"Plain"})
        )
        assert out == [None, InsertOutcome.NEW]
        assert db.size("Plain") == 0

    def test_key_invariant_raises_mid_batch(self, env):
        db, Keyed, _ = env
        with pytest.raises(KeyInvariantError):
            db.insert_batch([Keyed.new(1, 10), Keyed.new(1, 11)])
        # the first tuple landed before the violation, like the old loop
        assert db.size("Keyed") == 1

    def test_unknown_table_raises(self, env):
        db, _, _ = env
        Ghost = TableHandle(TableSchema("Ghost", "int x"))
        with pytest.raises(UnknownTableError):
            db.insert_batch([Ghost.new(1)])


class TestDeltaInsertBatch:
    def _ts(self, decls):
        return lambda tup: evaluate_orderby(tup.schema.orderby, tup.asdict(), decls)

    def test_intra_batch_duplicates_rejected(self):
        decls = OrderDecls()
        decls.declare("A", "B")
        T = TableHandle(TableSchema("T", "int x", orderby=("A", "seq x")))
        decls.freeze()
        ts = self._ts(decls)
        tree = DeltaTree()
        a, b = T.new(1), T.new(2)
        flags = tree.insert_batch([(a, ts(a)), (b, ts(b)), (a, ts(a))])
        assert flags == [True, True, False]
        assert len(tree) == 2
        # a second batch sees the earlier membership
        flags = tree.insert_batch([(b, ts(b)), (T.new(3), ts(T.new(3)))])
        assert flags == [False, True]
        assert tree.pop_min_class() == [a]
