"""Property test: DeltaTree minimal-class extraction against a
reference model.

The reference is the obvious specification: keep every pending tuple in
a list, and ``pop_min_class`` = stable-sort by timestamp
(:func:`compare_timestamps`) and take the leading group of equal
timestamps.  Stability makes the within-class order the insertion
order, which is exactly what the engine relies on for deterministic
batches.  Hypothesis drives arbitrary interleavings of inserts and
pops over two tables that share literal levels, with value ranges small
enough to force duplicate timestamps, duplicate tuples, and
re-insertion of previously popped tuples.
"""

from __future__ import annotations

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import DeltaTree
from repro.core.ordering import OrderDecls, compare_timestamps, evaluate_orderby
from repro.core.schema import TableSchema
from repro.core.tuples import TableHandle


def make_env():
    decls = OrderDecls()
    decls.declare("Estimate", "Done")
    Est = TableHandle(
        TableSchema(
            "Estimate", "int vertex, int distance", orderby=("seq distance", "Estimate")
        )
    )
    Done = TableHandle(
        TableSchema(
            "Done", "int vertex -> int distance", orderby=("seq distance", "Done")
        )
    )
    decls.freeze()

    def ts(tup):
        return evaluate_orderby(tup.schema.orderby, tup.asdict(), decls)

    return (Est, Done), ts


class ReferenceDelta:
    """Sort-and-group specification of the Delta set."""

    def __init__(self, ts):
        self._ts = ts
        self._pending: list = []  # insertion order

    def insert(self, tup) -> bool:
        if tup in self._pending:
            return False
        self._pending.append(tup)
        return True

    def pop_min_class(self) -> list:
        if not self._pending:
            return []
        ranked = sorted(  # stable: ties keep insertion order
            self._pending,
            key=functools.cmp_to_key(
                lambda a, b: compare_timestamps(self._ts(a), self._ts(b))
            ),
        )
        head_ts = self._ts(ranked[0])
        batch = [
            t for t in ranked if compare_timestamps(self._ts(t), head_ts) == 0
        ]
        for t in batch:
            self._pending.remove(t)
        return batch

    def __len__(self) -> int:
        return len(self._pending)


# an op is ("insert", table index, vertex, distance), a ("batch", [...])
# of such triples (exercising insert_batch's single membership update,
# including intra-batch duplicates), or ("pop",); tight value ranges
# force equal timestamps and duplicate tuples
_TRIPLE = st.tuples(st.integers(0, 1), st.integers(0, 4), st.integers(0, 6))
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), _TRIPLE),
        st.tuples(st.just("batch"), st.lists(_TRIPLE, max_size=8)),
        st.tuples(st.just("pop")),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=OPS)
def test_delta_tree_matches_sort_and_group_reference(ops):
    (Est, Done), ts = make_env()
    tree = DeltaTree()
    model = ReferenceDelta(ts)
    for op in ops:
        if op[0] == "insert":
            which, vertex, distance = op[1]
            tup = (Est if which == 0 else Done).new(vertex, distance)
            assert tree.insert(tup, ts(tup)) == model.insert(tup)
        elif op[0] == "batch":
            tups = [
                (Est if w == 0 else Done).new(v, d) for w, v, d in op[1]
            ]
            got = tree.insert_batch([(t, ts(t)) for t in tups])
            assert got == [model.insert(t) for t in tups]
        else:
            assert tree.pop_min_class() == model.pop_min_class()
        assert len(tree) == len(model)
    # drain whatever remains: every class must match, in causal order
    while model:
        assert tree.pop_min_class() == model.pop_min_class()
    assert not tree


@settings(max_examples=100, deadline=None)
@given(
    inserts=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 4), st.integers(0, 6)),
        min_size=1,
        max_size=40,
    )
)
def test_popped_tuple_can_reenter(inserts):
    """A tuple removed by pop_min_class is no longer a member and is
    accepted again on re-insertion (the engine's steady-state cycle)."""
    (Est, Done), ts = make_env()
    tree = DeltaTree()
    for which, vertex, distance in inserts:
        tup = (Est if which == 0 else Done).new(vertex, distance)
        tree.insert(tup, ts(tup))
    batch = tree.pop_min_class()
    for t in batch:
        assert t not in tree
        assert tree.insert(t, ts(t))
    assert len(tree) >= len(batch)
