"""Trace recording: stream structure, exporters, hashing."""

from __future__ import annotations

import json

import pytest

from repro.apps.sensors import run_sensors
from repro.apps.ship import run_ship
from repro.core import ExecOptions
from repro.trace import TraceRecorder, load_events, output_hash, trace_diff


@pytest.fixture(scope="module")
def traced():
    return run_sensors(n_ticks=8, n_sensors=3, options=ExecOptions(trace=True))


class TestStream:
    def test_untraced_run_has_no_recorder(self):
        assert run_ship(ExecOptions()).trace is None

    def test_bracketed_by_run_start_and_run_end(self, traced):
        events = traced.trace.events
        assert events[0].kind == "run-start" and events[0].meta
        assert events[-1].kind == "run-end"
        assert events[0].data["strategy"] == "sequential"

    def test_run_end_summarises_the_run(self, traced):
        end = traced.trace.run_end()
        assert end.data["steps"] == traced.steps
        assert end.data["n_output"] == len(traced.output)
        assert end.data["output"] == output_hash(traced.output)
        assert end.data["table_sizes"] == dict(sorted(traced.table_sizes.items()))

    def test_step_events_match_frontier_widths(self, traced):
        steps = [e for e in traced.trace.events if e.kind == "step"]
        assert [e.data["width"] for e in steps] == traced.stats.frontier_widths
        assert [e.data["step"] for e in steps] == list(range(1, traced.steps + 1))
        for e in steps:
            assert len(e.data["frontier"]) == e.data["width"]

    def test_semantic_events_exclude_meta(self, traced):
        sem = traced.trace.semantic_events()
        assert all(not e.meta for e in sem)
        assert len(sem) < len(traced.trace.events)

    def test_micro_events_carry_rule_attribution(self, traced):
        puts = [e for e in traced.trace.events if e.kind == "put"]
        queries = [e for e in traced.trace.events if e.kind == "query"]
        assert puts and queries
        assert all({"rule", "table", "tuple"} <= set(e.data) for e in puts)
        assert all(
            {"rule", "table", "kind", "n_results"} <= set(e.data) for e in queries
        )


class TestExporters:
    def test_jsonl_round_trip(self, traced, tmp_path):
        path = tmp_path / "run.jsonl"
        traced.trace.to_jsonl(path)
        loaded = TraceRecorder.from_jsonl(path)
        assert len(loaded.events) == len(traced.trace.events)
        assert trace_diff(traced.trace, loaded, include_meta=True) is None
        # every line is standalone JSON
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_load_events_accepts_paths_recorders_and_lists(self, traced, tmp_path):
        path = tmp_path / "run.jsonl"
        traced.trace.to_jsonl(path)
        n = len(traced.trace.events)
        assert len(load_events(traced.trace)) == n
        assert len(load_events(str(path))) == n
        assert len(load_events(list(traced.trace.events))) == n

    def test_chrome_export(self, traced, tmp_path):
        path = tmp_path / "run.trace.json"
        traced.trace.to_chrome(path)
        doc = json.loads(path.read_text())
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert {"task", "step"} <= cats
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["dur"] > 0 for e in slices)


class TestOutputHash:
    def test_sensitive_to_order_and_content(self):
        assert output_hash(["a", "b"]) != output_hash(["b", "a"])
        assert output_hash(["a", "b"]) != output_hash(["a", "c"])
        assert output_hash(["a", "b"]) == output_hash(["a", "b"])

    def test_line_boundaries_matter(self):
        assert output_hash(["ab"]) != output_hash(["a", "b"])
