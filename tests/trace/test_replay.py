"""Record → replay: a traced run can be re-executed decision-for-decision."""

from __future__ import annotations

import pytest

from repro.apps.sensors import build_sensor_program
from repro.apps.ship import build_ship_program
from repro.core import ExecOptions
from repro.core.engine import Engine
from repro.core.errors import EngineError
from repro.exec.chaos import FaultPlan
from repro.trace import ReplayError, ReplaySchedule, TraceRecorder, TraceReplayer

FAULTS = FaultPlan(raise_prob=0.2, duplicate_prob=0.2, delay_prob=0.2)


def _record(program, **opt_kw):
    return Engine(program, ExecOptions(trace=True, **opt_kw)).run()


class TestReplay:
    def test_chaos_run_replays_exactly(self):
        rec = _record(
            build_ship_program()[0], strategy="chaos", chaos_seed=7, fault_plan=FAULTS
        )
        assert TraceReplayer(rec.trace).verify(build_ship_program()[0]) is None

    def test_interleaved_chaos_run_replays_exactly(self):
        # sensors batches are 4 wide: the interleave mode and its pick
        # sequence must replay, not just the batch order
        rec = _record(
            build_sensor_program(10, 4).program,
            strategy="chaos",
            chaos_seed=5,
            fault_plan=FAULTS,
        )
        replayer = TraceReplayer(rec.trace)
        assert replayer.verify(build_sensor_program(10, 4).program) is None

    def test_replay_is_byte_identical(self):
        rec = _record(
            build_sensor_program(10, 4).program, strategy="chaos", chaos_seed=3
        )
        result = TraceReplayer(rec.trace).replay(build_sensor_program(10, 4).program)
        assert result.output_text() == rec.output_text()
        assert result.table_sizes == rec.table_sizes
        assert result.steps == rec.steps

    def test_sequential_run_replays(self):
        rec = _record(build_ship_program()[0])
        replayer = TraceReplayer(rec.trace)
        assert replayer.options().strategy == "sequential"
        assert replayer.verify(build_ship_program()[0]) is None

    def test_replay_from_jsonl_file(self, tmp_path):
        rec = _record(build_ship_program()[0], strategy="chaos", chaos_seed=1)
        path = tmp_path / "run.jsonl"
        rec.trace.to_jsonl(path)
        assert TraceReplayer(str(path)).verify(build_ship_program()[0]) is None


class TestReplayErrors:
    def test_trace_without_run_start_is_rejected(self):
        with pytest.raises(ReplayError, match="run-start"):
            TraceReplayer(TraceRecorder())

    def test_wrong_program_is_detected(self):
        rec = _record(
            build_ship_program()[0], strategy="chaos", chaos_seed=7, fault_plan=FAULTS
        )
        with pytest.raises(EngineError):
            TraceReplayer(rec.trace).replay(build_sensor_program(10, 4).program)

    def test_schedule_width_mismatch(self):
        rec = _record(build_sensor_program(8, 4).program, strategy="chaos", chaos_seed=2)
        sched = ReplaySchedule(list(rec.trace.events))
        assert len(sched) > 0
        with pytest.raises(ReplayError, match="width"):
            sched.decisions_for(1, 999)
        with pytest.raises(ReplayError, match="no recorded schedule"):
            sched.decisions_for(10_000, 1)
