"""``trace_diff``: pinpointing the first divergent event."""

from __future__ import annotations

from repro.trace import (
    TraceEvent,
    VOLATILE_KEYS,
    format_divergence,
    semantic_key,
    trace_diff,
)


def ev(seq, kind, data, step=1, meta=False):
    return TraceEvent(seq=seq, step=step, kind=kind, data=data, meta=meta)


class TestDiff:
    def test_identical_streams(self):
        a = [ev(0, "step", {"width": 2}), ev(1, "task", {"trigger": "T(1)"})]
        b = [ev(0, "step", {"width": 2}), ev(1, "task", {"trigger": "T(1)"})]
        assert trace_diff(a, b) is None

    def test_first_divergent_event_is_named(self):
        a = [ev(0, "step", {"width": 2}), ev(1, "task", {"trigger": "T(1)"})]
        b = [ev(0, "step", {"width": 2}), ev(1, "task", {"trigger": "T(2)"})]
        d = trace_diff(a, b)
        assert d is not None and d.index == 1
        assert "trigger" in d.reason
        assert "T(1)" in format_divergence(d) and "T(2)" in format_divergence(d)

    def test_kind_mismatch(self):
        d = trace_diff([ev(0, "put", {})], [ev(0, "query", {})])
        assert d is not None and "kind" in d.reason

    def test_step_attribution_mismatch(self):
        d = trace_diff(
            [ev(0, "task", {"trigger": "T"}, step=1)],
            [ev(0, "task", {"trigger": "T"}, step=2)],
        )
        assert d is not None and "step 1 vs 2" in d.reason

    def test_length_mismatch(self):
        a = [ev(0, "step", {"width": 1})]
        b = [ev(0, "step", {"width": 1}), ev(1, "task", {"trigger": "T"})]
        d = trace_diff(a, b)
        assert d is not None and d.index == 1
        assert d.left is None and d.right is not None
        assert "length" in d.reason

    def test_empty_traces_are_equivalent(self):
        assert trace_diff([], []) is None


class TestMetaAndVolatile:
    def test_meta_events_ignored_by_default(self):
        a = [ev(0, "sched", {"order": [0, 1]}, meta=True), ev(1, "step", {"width": 2})]
        b = [ev(0, "sched", {"order": [1, 0]}, meta=True), ev(1, "step", {"width": 2})]
        assert trace_diff(a, b) is None
        assert trace_diff(a, b, include_meta=True) is not None

    def test_volatile_keys_ignored(self):
        assert "cost" in VOLATILE_KEYS
        a = [ev(0, "task", {"trigger": "T", "cost": 10.0})]
        b = [ev(0, "task", {"trigger": "T", "cost": 99.0})]
        assert trace_diff(a, b) is None

    def test_seq_numbers_do_not_matter(self):
        a = ev(0, "task", {"trigger": "T"})
        b = ev(7, "task", {"trigger": "T"})
        assert semantic_key(a) == semantic_key(b)

    def test_tuples_and_lists_compare_equal(self):
        # JSONL round-trips turn tuples into lists; the key canonicalises
        a = ev(0, "sched", {"order": (0, 1)})
        b = ev(0, "sched", {"order": [0, 1]})
        assert semantic_key(a) == semantic_key(b)
