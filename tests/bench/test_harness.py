"""Tests for the benchmark harness utilities."""

from __future__ import annotations

import pytest

from repro.bench import (
    FigureRow,
    SpeedupSeries,
    comparison_block,
    figure_block,
    speedup_series,
    timed_average,
)


class TestTimedAverage:
    def test_discards_warmup(self):
        calls = []

        def fn():
            calls.append(len(calls))

        t = timed_average(fn, runs=6, discard=2)
        assert len(calls) == 6
        assert t >= 0

    def test_validates_counts(self):
        with pytest.raises(ValueError):
            timed_average(lambda: None, runs=2, discard=2)


class TestSpeedupSeries:
    def make(self):
        return SpeedupSeries(
            "demo", threads=(1, 2, 4), elapsed=(100.0, 55.0, 30.0), sequential=80.0
        )

    def test_relative_vs_one_thread(self):
        s = self.make()
        assert s.relative == pytest.approx((1.0, 100 / 55, 100 / 30))

    def test_absolute_uses_fastest_baseline(self):
        # footnote 11: vs the fastest of sequential / 1-thread parallel
        s = self.make()
        assert s.absolute == pytest.approx((0.8, 80 / 55, 80 / 30))

    def test_absolute_without_sequential(self):
        s = SpeedupSeries("d", (1, 2), (10.0, 6.0))
        assert s.absolute == s.relative

    def test_rows_and_format(self):
        s = self.make()
        rows = s.rows()
        assert rows[0][0] == 1 and rows[-1][0] == 4
        text = s.format()
        assert "demo" in text and "sequential reference" in text
        assert len(text.splitlines()) == 6

    def test_speedup_series_sweeps(self):
        seen = []

        def run(t):
            seen.append(t)
            return 100.0 / t

        s = speedup_series("x", (1, 2, 5), run, sequential=None)
        assert seen == [1, 2, 5]
        assert s.relative[-1] == pytest.approx(5.0)


class TestFigureFormatting:
    def test_figure_block(self):
        text = figure_block(
            "T", [FigureRow("a", 1.5, paper=2.0), FigureRow("b", 3.0)], note="n"
        )
        assert "### T" in text and "note: n" in text
        assert "2.00" in text and "—" in text

    def test_figure_row_ratio(self):
        assert FigureRow("a", 1.0, paper=2.0).ratio == 0.5
        assert FigureRow("a", 1.0).ratio is None
        assert FigureRow("a", 1.0, paper=0.0).ratio is None

    def test_comparison_block(self):
        text = comparison_block(
            "C", [("p", 2.0, 1.0)], paper_ratios={"p": 2.5}, note="why"
        )
        assert "2.00" in text and "2.50" in text and "why" in text

    def test_comparison_block_division_by_zero(self):
        text = comparison_block("C", [("p", 2.0, 0.0)])
        assert "inf" in text
