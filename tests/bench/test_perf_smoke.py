"""Unit tests for the perf-smoke gate (benchmarks/check_perf_smoke.py).

The gate itself runs in CI against real measurements; these tests pin
its *logic* — calibration normalisation, the 25 % tolerance, missing
entries, and the output-equality re-assertion — on synthetic data.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_perf_smoke", ROOT / "benchmarks" / "check_perf_smoke.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


checker = _load_checker()


def _bench(fast_wall: float, calibration: float = 0.1, outputs_equal: bool = True) -> dict:
    return {
        "meta": {"calibration_wall": calibration},
        "apps": {
            "dijkstra": {
                "sequential": {
                    "fast_wall": fast_wall,
                    "fast_virtual": 0.0,
                    "outputs_equal": outputs_equal,
                }
            }
        },
    }


def test_within_tolerance_passes():
    assert checker.check(_bench(0.48), _bench(0.40)) == []


def test_regression_beyond_tolerance_fails():
    failures = checker.check(_bench(0.55), _bench(0.40))
    assert len(failures) == 1
    assert "dijkstra/sequential" in failures[0]


def test_calibration_normalises_machine_speed():
    # 2x slower machine (2x calibration wall): same normalised time passes
    assert checker.check(_bench(0.80, calibration=0.2), _bench(0.40, calibration=0.1)) == []
    # but a genuine 2x engine regression still fails on the slow machine
    assert checker.check(_bench(1.60, calibration=0.2), _bench(0.40, calibration=0.1))


def test_missing_app_or_strategy_fails():
    current = _bench(0.40)
    del current["apps"]["dijkstra"]
    assert checker.check(current, _bench(0.40))
    current = _bench(0.40)
    current["apps"]["dijkstra"] = {}
    assert checker.check(current, _bench(0.40))


def test_output_divergence_fails_even_when_fast():
    failures = checker.check(_bench(0.30, outputs_equal=False), _bench(0.40))
    assert any("output" in f for f in failures)


def test_committed_artifacts_are_consistent():
    """BENCH_pr3.json and the committed baseline satisfy the gate and
    record the PR's acceptance numbers (>=1.5x sequential speedup with
    byte-identical outputs on both benchmark apps)."""
    bench = json.loads((ROOT / "BENCH_pr3.json").read_text())
    baseline = json.loads(
        (ROOT / "benchmarks" / "baselines" / "BENCH_pr3.baseline.json").read_text()
    )
    assert checker.check(bench, baseline) == []
    for app in ("dijkstra", "pvwatts"):
        seq = bench["apps"][app]["sequential"]
        assert seq["outputs_equal"] is True
        assert seq["speedup_fast_vs_pre_pr"] >= 1.5
        assert seq["outputs_equal_pre_pr"] is True
        for strategy in ("sequential", "forkjoin-4", "threads-2", "chaos"):
            assert bench["apps"][app][strategy]["fast_wall"] > 0


if "check_perf_smoke" in sys.modules:
    del sys.modules["check_perf_smoke"]
