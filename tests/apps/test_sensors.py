"""Sensor-stream app: event-driven style, kosher Println ordering,
retention hints (§3 + footnote 8 + §5 step 4)."""

from __future__ import annotations

import re

import pytest

from repro.apps.sensors import build_sensor_program, run_sensors
from repro.core import ExecOptions


def alert_keys(output: list[str]) -> list[tuple[int, int]]:
    out = []
    for line in output:
        m = re.match(r"tick (\d+): sensor (\d+)", line)
        assert m, line
        out.append((int(m.group(1)), int(m.group(2))))
    return out


class TestEventDriven:
    def test_alerts_detected(self):
        r = run_sensors()
        assert len(r.output) > 0
        assert all("spiked" in line for line in r.output)

    def test_output_in_causal_order_despite_shuffled_input(self):
        """Events are put in a random permutation; the Println table's
        orderby sorts the log by (tick, sensor) anyway."""
        ks = alert_keys(run_sensors().output)
        assert ks == sorted(ks)

    @pytest.mark.parametrize(
        "opts",
        [
            ExecOptions(strategy="forkjoin", threads=8),
            ExecOptions(strategy="threads", threads=3),
            ExecOptions(strategy="forkjoin", threads=4, task_granularity="rule"),
        ],
        ids=["forkjoin", "threads", "per-rule"],
    )
    def test_strategy_independent(self, opts):
        assert run_sensors(options=opts).output == run_sensors().output

    def test_no_alert_at_tick_zero(self):
        """Tick 0 has no previous reading, hence no alerts."""
        assert all(k[0] > 0 for k in alert_keys(run_sensors().output))

    def test_spike_rule_proves(self):
        handles = build_sensor_program(5, 2)
        rep = handles.program.check_causality()
        statuses = {f.rule: f.status for f in rep.findings}
        assert statuses["detect_spike"] == "proved"

    def test_deterministic_given_seed(self):
        assert run_sensors(seed=7).output == run_sensors(seed=7).output
        assert run_sensors(seed=7).output != run_sensors(seed=8).output


class TestRetention:
    def test_bounded_memory_same_output(self):
        plain = run_sensors()
        bounded = run_sensors(bounded_memory=True)
        assert bounded.output == plain.output

    def test_heap_bounded_to_two_ticks(self):
        r = run_sensors(n_ticks=40, n_sensors=4, bounded_memory=True)
        assert r.table_sizes["Reading"] == 2 * 4
        assert r.stats.tables["Reading"].gamma_discarded == 38 * 4

    def test_unbounded_heap_grows_linearly(self):
        r = run_sensors(n_ticks=40, n_sensors=4)
        assert r.table_sizes["Reading"] == 40 * 4

    def test_retention_reduces_gc_time(self):
        plain = run_sensors(n_ticks=60, n_sensors=8)
        bounded = run_sensors(n_ticks=60, n_sensors=8, bounded_memory=True)
        assert bounded.report.gc_time < plain.report.gc_time
