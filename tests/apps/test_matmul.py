"""MatrixMult case study: correctness of every variant + Fig 11 shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.baselines.matmul_base import matmul_naive, matmul_transposed
from repro.apps.matmul import build_matmul_program, random_matrix, run_matmul
from repro.core import ExecOptions

N = 24
A = random_matrix(N, 1)
B = random_matrix(N, 2)
TRUTH = A @ B
OPT = ExecOptions(no_delta=frozenset({"Matrix"}))


class TestCorrectness:
    @pytest.mark.parametrize("variant", ["boxed", "unboxed", "native"])
    def test_variants_compute_product(self, variant):
        _, c = run_matmul(A, B, OPT, variant)  # type: ignore[arg-type]
        assert (c == TRUTH).all()

    def test_baseline_naive(self):
        assert (matmul_naive(A, B) == TRUTH).all()

    def test_baseline_transposed(self):
        assert (matmul_transposed(A, B) == TRUTH).all()

    def test_negative_values_handled(self):
        a = -random_matrix(8, 3)
        b = random_matrix(8, 4)
        _, c = run_matmul(a, b, OPT, "native")
        assert (c == a @ b).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            build_matmul_program(np.zeros((2, 3), dtype=np.int64), np.zeros((2, 3), dtype=np.int64))

    def test_one_task_per_row(self):
        r, _ = run_matmul(A, B, OPT, "native")
        assert r.stats.tables["RowRequest"].puts == N
        assert r.stats.max_batch == N  # all rows in one parallel step


class TestParallelShape:
    # shape tests need enough rows/work for overheads to be second-order
    A2 = random_matrix(64, 5)
    B2 = random_matrix(64, 6)

    def _vtime(self, threads: int) -> float:
        r, _ = run_matmul(
            self.A2, self.B2, OPT.with_(strategy="forkjoin", threads=threads), "unboxed"
        )
        return r.virtual_time

    def test_fig11_near_linear_then_flattens(self):
        t1 = self._vtime(1)
        s8 = t1 / self._vtime(8)
        s16 = t1 / self._vtime(16)
        s24 = t1 / self._vtime(24)
        assert 5.0 < s8 <= 8.0        # near-linear early
        assert s16 > s8               # still climbing
        assert s24 > s16 * 0.9        # but flattening, not collapsing

    def test_output_independent_of_threads(self):
        _, c1 = run_matmul(A, B, OPT.with_(strategy="forkjoin", threads=1), "native")
        _, c32 = run_matmul(A, B, OPT.with_(strategy="forkjoin", threads=32), "native")
        assert (c1 == c32).all()

    def test_boxed_costs_more_virtual_time(self):
        rb, _ = run_matmul(A, B, OPT, "boxed")
        ru, _ = run_matmul(A, B, OPT, "unboxed")
        assert rb.virtual_time > ru.virtual_time
