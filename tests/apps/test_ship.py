"""Ship case study: Fig 2 reproduction and prover integration."""

from __future__ import annotations

import pytest

from repro.apps.ship import FIG2_TRACE, build_ship_program, run_ship, ship_trace
from repro.core import ExecOptions


class TestFig2:
    def test_trace_matches_paper_exactly(self):
        assert ship_trace(run_ship()) == FIG2_TRACE

    @pytest.mark.parametrize("strategy,threads", [("forkjoin", 8), ("threads", 2)])
    def test_trace_strategy_independent(self, strategy, threads):
        r = run_ship(ExecOptions(strategy=strategy, threads=threads))
        assert ship_trace(r) == FIG2_TRACE

    def test_one_step_per_frame(self):
        r = run_ship()
        assert r.steps == len(FIG2_TRACE)

    def test_each_frame_single_ship(self):
        """The -> invariant: one Ship per frame value."""
        frames = [t[0] for t in ship_trace(run_ship())]
        assert len(frames) == len(set(frames))

    def test_movement_phases(self):
        trace = ship_trace(run_ship())
        assert [t[1] for t in trace[:4]] == [10, 160, 310, 460]   # right
        assert [t[2] for t in trace[3:6]] == [10, 20, 30]          # down
        assert [t[1] for t in trace[5:]] == [460, 310, 160]        # left


class TestStaticChecking:
    def test_all_obligations_prove(self):
        p, _ = build_ship_program()
        rep = p.check_causality()
        assert rep.all_proved
        assert rep.findings[0].status == "proved"
        # one obligation per branch of the metadata
        assert len(rep.findings[0].obligations) == 5

    def test_strict_mode_passes(self):
        p, _ = build_ship_program()
        p.check_causality(strict=True)  # must not raise
