"""Median case study: correctness (incl. hypothesis), the two-iteration
store behaviour, and the Fig 13 speedup shape."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.baselines.median_base import median_sort_baseline, quickselect_reference
from repro.apps.median import (
    build_median_program,
    median_from_result,
    random_doubles,
    run_median,
)
from repro.core import ExecOptions


def true_median(values: np.ndarray) -> float:
    return float(np.sort(values)[(len(values) - 1) // 2])


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 101, 4096])
    def test_random_arrays(self, n):
        vals = random_doubles(n, seed=n)
        assert median_from_result(run_median(vals)) == true_median(vals)

    def test_all_equal_values(self):
        vals = np.full(64, 3.5)
        assert median_from_result(run_median(vals)) == 3.5

    def test_two_distinct_values(self):
        vals = np.array([1.0] * 10 + [2.0] * 11)
        assert median_from_result(run_median(vals)) == true_median(vals)

    def test_sorted_and_reversed_inputs(self):
        vals = np.arange(100, dtype=np.float64)
        assert median_from_result(run_median(vals)) == true_median(vals)
        assert median_from_result(run_median(vals[::-1].copy())) == true_median(vals)

    def test_single_region(self):
        vals = random_doubles(500)
        assert median_from_result(run_median(vals, n_regions=1)) == true_median(vals)

    def test_more_regions_than_elements(self):
        vals = random_doubles(5)
        assert median_from_result(run_median(vals, n_regions=24)) == true_median(vals)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_median_program(np.array([]))

    def test_baselines_agree(self):
        vals = random_doubles(2001)
        assert median_sort_baseline(vals) == quickselect_reference(vals) == true_median(vals)

    def test_output_line(self):
        r = run_median(random_doubles(32))
        assert any(line.startswith("median is") for line in r.output)

    def test_data_never_transits_delta(self):
        r = run_median(random_doubles(256))
        data_stats = r.stats.tables.get("Data")
        # bulk native writes only: Data generates no put/delta events at all
        assert data_stats is None or (
            data_stats.delta_inserts == 0 and data_stats.puts == 0
        )


class TestFig13Shape:
    VALS = random_doubles(60_000, seed=9)

    def _vtime(self, threads: int) -> float:
        return run_median(
            self.VALS, ExecOptions(strategy="forkjoin", threads=threads)
        ).virtual_time

    def test_speedup_profile(self):
        """Fig 13: ≈8.6x at 12 cores, ~14x at 32, saturating."""
        t1 = self._vtime(1)
        s12 = t1 / self._vtime(12)
        s32 = t1 / self._vtime(32)
        assert 6.0 < s12 < 12.0
        assert 10.0 < s32 < 20.0
        assert s32 > s12

    def test_deterministic_across_threads(self):
        r1 = run_median(self.VALS, ExecOptions(strategy="forkjoin", threads=1))
        r32 = run_median(self.VALS, ExecOptions(strategy="forkjoin", threads=32))
        assert median_from_result(r1) == median_from_result(r32)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=400,
    ),
    st.integers(1, 9),
)
def test_median_matches_numpy(values, n_regions):
    vals = np.array(values, dtype=np.float64)
    got = median_from_result(run_median(vals, n_regions=n_regions))
    assert got == true_median(vals)
