"""Disruptor PvWatts: threaded correctness + the Fig 10 / Table 1 model."""

from __future__ import annotations

import pytest

from repro.apps.pvwatts_disruptor import (
    DisruptorConfig,
    MonthConsumer,
    run_disruptor_simulated,
    run_disruptor_threaded,
)
from repro.csvio import expected_month_means, generate_csv_bytes
from repro.disruptor import BusySpinWaitStrategy, YieldingWaitStrategy


class TestThreaded:
    def test_matches_ground_truth(self, pvwatts_csv):
        means = run_disruptor_threaded(pvwatts_csv)
        truth = expected_month_means()
        assert set(means) == set(truth)
        for k in truth:
            assert means[k] == pytest.approx(truth[k], abs=1e-6)

    def test_small_ring_still_correct(self, pvwatts_csv):
        means = run_disruptor_threaded(
            pvwatts_csv, DisruptorConfig(ring_size=64, batch=16)
        )
        assert len(means) == 12

    def test_alternative_wait_strategy(self, pvwatts_csv):
        means = run_disruptor_threaded(
            pvwatts_csv,
            DisruptorConfig(wait_strategy_factory=YieldingWaitStrategy),
        )
        assert len(means) == 12

    def test_round_robin_input_same_answer(self, pvwatts_csv, pvwatts_csv_rr):
        a = run_disruptor_threaded(pvwatts_csv)
        b = run_disruptor_threaded(pvwatts_csv_rr)
        for k in a:
            assert a[k] == pytest.approx(b[k], abs=1e-6)

    def test_month_consumer_filters(self):
        c = MonthConsumer(3)
        c.on_event((2012, 3, 1, b"00:00", 10), 0, False)
        c.on_event((2012, 4, 1, b"00:00", 99), 1, False)
        c.on_event(None, 2, True)  # sentinel triggers the reducer
        assert c.result[(2012, 3)].mean == 10
        assert (2012, 4) not in c.result


class TestFig10Model:
    def test_by_month_speedup_band(self, pvwatts_csv):
        """Paper: 3.31x at 8 threads over the sequential JStar program.
        Here: vs the model's own total work on one core."""
        seq = run_disruptor_simulated(pvwatts_csv, threads=1)
        par = run_disruptor_simulated(pvwatts_csv, threads=8)
        speedup = seq.elapsed / par.elapsed
        assert 2.3 < speedup < 4.5

    def test_sorted_input_faster_absolute(self, pvwatts_csv, pvwatts_csv_rr):
        """Fig 10: round-robin ('sorted') input beats by-month in
        absolute time at every thread count > 1."""
        for threads in (2, 4, 8):
            bm = run_disruptor_simulated(pvwatts_csv, threads=threads)
            rr = run_disruptor_simulated(pvwatts_csv_rr, threads=threads)
            assert rr.elapsed <= bm.elapsed

    def test_by_month_stalls_producer(self, pvwatts_csv, pvwatts_csv_rr):
        """Month-long runs overload one consumer -> ring fills (§6.3)."""
        bm = run_disruptor_simulated(pvwatts_csv, threads=8)
        rr = run_disruptor_simulated(pvwatts_csv_rr, threads=8)
        assert bm.producer_stalls > rr.producer_stalls

    def test_monotone_in_threads(self, pvwatts_csv):
        elapsed = [
            run_disruptor_simulated(pvwatts_csv, threads=t).elapsed
            for t in (1, 2, 4, 8)
        ]
        assert elapsed == sorted(elapsed, reverse=True)

    def test_table1_blocking_beats_busyspin_oversubscribed(self, pvwatts_csv):
        blocking = run_disruptor_simulated(pvwatts_csv, threads=8)
        spinning = run_disruptor_simulated(
            pvwatts_csv,
            threads=8,
            config=DisruptorConfig(wait_strategy_factory=BusySpinWaitStrategy),
        )
        assert blocking.elapsed < spinning.elapsed
