"""PvWatts case study: correctness vs baseline and ground truth, the
§5.1 optimisations, custom Gamma stores, and parallel readers."""

from __future__ import annotations

import pytest

from repro.apps.baselines.pvwatts_base import baseline_output_lines, pvwatts_baseline
from repro.apps.pvwatts import (
    array_of_hashsets_store,
    build_pvwatts_program,
    hash_index_store,
    month_means_from_output,
    run_pvwatts,
)
from repro.core import ExecOptions
from repro.csvio import expected_month_means
from repro.gamma import ArrayOfHashSetsStore, HashIndexStore

OPT = ExecOptions(no_delta=frozenset({"PvWatts"}))


class TestCorrectness:
    def test_matches_ground_truth(self, pvwatts_csv):
        r = run_pvwatts(pvwatts_csv, OPT)
        means = month_means_from_output(r.output)
        truth = expected_month_means()
        assert set(means) == set(truth)
        for k in truth:
            assert means[k] == pytest.approx(truth[k], abs=5e-3)

    def test_matches_baseline(self, pvwatts_csv):
        r = run_pvwatts(pvwatts_csv, OPT)
        means = month_means_from_output(r.output)
        base = pvwatts_baseline(pvwatts_csv)
        assert {k: round(v, 3) for k, v in means.items()} == {
            k: round(v, 3) for k, v in base.items()
        }

    def test_baseline_output_formatting(self, pvwatts_csv):
        lines = baseline_output_lines(pvwatts_baseline(pvwatts_csv))
        assert len(lines) == 12 and lines[0].startswith("2012/1: ")

    def test_twelve_summonth_tuples(self, pvwatts_csv):
        """Set semantics: 8 760 SumMonth puts collapse to 12 (§6.2)."""
        r = run_pvwatts(pvwatts_csv, OPT)
        assert r.table_sizes["SumMonth"] == 12
        assert r.stats.tables["SumMonth"].puts == 8760
        assert r.stats.tables["SumMonth"].duplicates == 8760 - 12

    def test_all_records_stored(self, pvwatts_csv):
        r = run_pvwatts(pvwatts_csv, OPT)
        assert r.table_sizes["PvWatts"] == 8760

    def test_round_robin_input_same_answer(self, pvwatts_csv, pvwatts_csv_rr):
        a = month_means_from_output(run_pvwatts(pvwatts_csv, OPT).output)
        b = month_means_from_output(run_pvwatts(pvwatts_csv_rr, OPT).output)
        assert {k: round(v, 3) for k, v in a.items()} == {k: round(v, 3) for k, v in b.items()}


class TestOptimisations:
    def test_nodelta_bypasses_delta(self, pvwatts_csv):
        r = run_pvwatts(pvwatts_csv, OPT)
        assert r.stats.tables["PvWatts"].delta_bypass == 8760
        assert r.stats.tables["PvWatts"].delta_inserts == 0

    def test_nodelta_faster_than_plain(self, pvwatts_csv):
        """§6.2's 23.0 s -> 8.44 s effect, in virtual time."""
        plain = run_pvwatts(pvwatts_csv, ExecOptions())
        opt = run_pvwatts(pvwatts_csv, OPT)
        assert opt.virtual_time < plain.virtual_time
        ratio = plain.virtual_time / opt.virtual_time
        assert ratio > 1.3

    def test_nogamma_summonth_keeps_answer(self, pvwatts_csv):
        r = run_pvwatts(
            pvwatts_csv,
            OPT.with_(no_gamma=frozenset({"SumMonth"})),
        )
        assert len(month_means_from_output(r.output)) == 12
        assert r.table_sizes["SumMonth"] == 0

    @pytest.mark.parametrize(
        "store_factory",
        [array_of_hashsets_store, hash_index_store],
        ids=["array-of-hashsets", "hash-index"],
    )
    def test_custom_gamma_stores_same_answer(self, pvwatts_csv, store_factory):
        r = run_pvwatts(
            pvwatts_csv, OPT.with_(store_overrides={"PvWatts": store_factory()})
        )
        truth = expected_month_means()
        means = month_means_from_output(r.output)
        for k in truth:
            assert means[k] == pytest.approx(truth[k], abs=5e-3)

    def test_store_factories_build_expected_types(self):
        from repro.core.schema import TableSchema

        schema = TableSchema(
            "PvWatts", "int year, int month, int day, str hour, int power"
        )
        assert isinstance(array_of_hashsets_store()(schema), ArrayOfHashSetsStore)
        assert isinstance(hash_index_store()(schema), HashIndexStore)


class TestParallelReaders:
    @pytest.mark.parametrize("n_readers", [2, 4, 8])
    def test_region_readers_same_answer(self, pvwatts_csv, n_readers):
        r = run_pvwatts(pvwatts_csv, OPT, n_readers=n_readers)
        assert r.table_sizes["PvWatts"] == 8760
        assert len(month_means_from_output(r.output)) == 12

    def test_readers_run_in_one_step(self, pvwatts_csv):
        r = run_pvwatts(pvwatts_csv, OPT, n_readers=8)
        assert r.stats.max_batch >= 8  # the Fig 7 phase-1 batch

    def test_parallel_speedup_shape(self, pvwatts_csv):
        """Fig 8's headline: ~4x relative speedup at 8 threads."""
        opts = OPT.with_(
            strategy="forkjoin",
            store_overrides={"PvWatts": array_of_hashsets_store()},
        )
        t1 = run_pvwatts(pvwatts_csv, opts.with_(threads=1), n_readers=8).virtual_time
        t8 = run_pvwatts(pvwatts_csv, opts.with_(threads=8), n_readers=8).virtual_time
        assert 3.0 < t1 / t8 < 6.0

    def test_absolute_below_relative(self, pvwatts_csv):
        """§6.2: absolute speedup ≈35 % below relative (concurrent
        structures are slower than sequential ones)."""
        opts = OPT.with_(
            strategy="forkjoin",
            store_overrides={"PvWatts": array_of_hashsets_store()},
        )
        seq = run_pvwatts(
            pvwatts_csv,
            OPT.with_(store_overrides={"PvWatts": array_of_hashsets_store(concurrent=False)}),
            n_readers=8,
        ).virtual_time
        t1 = run_pvwatts(pvwatts_csv, opts.with_(threads=1), n_readers=8).virtual_time
        assert seq < t1  # sequential beats 1-thread parallel


class TestProgramStructure:
    def test_handles_exposed(self, pvwatts_csv):
        h = build_pvwatts_program({"f.csv": pvwatts_csv}, "f.csv")
        assert h.PvWatts.name == "PvWatts"
        assert h.program.rules_for("PvWatts")

    def test_missing_file_raises(self):
        h = build_pvwatts_program({}, "missing.csv")
        with pytest.raises(KeyError):
            h.program.run()
