"""ShortestPath case study: Dijkstra-through-the-Delta-tree correctness
(incl. hypothesis random graphs) and the Fig 12 plateau."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.baselines.shortestpath_base import dijkstra_baseline
from repro.apps.shortestpath import (
    GraphSpec,
    build_shortestpath_program,
    distances_from_result,
    make_graph,
    recommended_options,
    run_shortestpath,
)
from repro.core import ExecOptions

SPEC = GraphSpec(n_vertices=300, extra_edges=600, seed=3)


class TestGraphGeneration:
    def test_connected_tree_plus_extras(self):
        edges = make_graph(SPEC)
        # spanning tree both directions + extras both directions
        assert len(edges) >= 2 * (SPEC.n_vertices - 1)
        assert all(1 <= w <= SPEC.max_weight for _, _, w in edges)

    def test_deterministic(self):
        assert make_graph(SPEC) == make_graph(SPEC)

    def test_no_self_loops_from_extras(self):
        assert all(s != d for s, d, _ in make_graph(SPEC))


class TestCorrectness:
    def test_matches_heapq_baseline(self):
        r = run_shortestpath(SPEC)
        assert distances_from_result(r) == dijkstra_baseline(
            make_graph(SPEC), SPEC.n_vertices
        )

    def test_every_vertex_reached(self):
        r = run_shortestpath(SPEC)
        assert len(distances_from_result(r)) == SPEC.n_vertices

    def test_origin_distance_zero(self):
        r = run_shortestpath(SPEC)
        assert distances_from_result(r)[0] == 0

    def test_without_optimisations_same_answer(self):
        plain = run_shortestpath(SPEC, options=ExecOptions())
        opt = run_shortestpath(SPEC)
        assert distances_from_result(plain) == distances_from_result(opt)

    def test_trace_output(self):
        spec = GraphSpec(n_vertices=10, extra_edges=5)
        r = run_shortestpath(spec, trace=True)
        assert any("shortest path to 0 is 0" in line for line in r.output)
        assert len(r.output) == 10

    def test_estimate_nogamma_not_stored(self):
        r = run_shortestpath(SPEC)
        assert r.table_sizes["Estimate"] == 0
        assert r.table_sizes["Done"] == SPEC.n_vertices

    def test_gen_task_split(self):
        h = build_shortestpath_program(SPEC, n_gen_tasks=7)
        gens = [t for t in h.program.initial_puts if t.schema.name == "GenTask"]
        assert len(gens) == 7
        edges = make_graph(SPEC)
        covered = sorted((t.lo, t.hi) for t in gens)
        assert covered[0][0] == 0 and covered[-1][1] == len(edges)


class TestFig12Shape:
    def _vtime(self, threads: int) -> float:
        return run_shortestpath(
            SPEC, recommended_options(ExecOptions(strategy="forkjoin", threads=threads))
        ).virtual_time

    def test_mediocre_plateau(self):
        """Fig 12: max ≈4x by 8 cores — the Delta tree bound."""
        t1 = self._vtime(1)
        s4 = t1 / self._vtime(4)
        s8 = t1 / self._vtime(8)
        assert 1.5 < s4 < 5.0
        assert s8 < 5.0              # the plateau: far from linear
        assert s8 >= s4 * 0.85       # but not collapsing

    def test_delta_contention_attributed(self):
        r = run_shortestpath(
            SPEC, recommended_options(ExecOptions(strategy="forkjoin", threads=8))
        )
        assert r.meter.shared.get("delta", 0) > 0


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(2, 40),
    extra=st.integers(0, 60),
    seed=st.integers(0, 10_000),
)
def test_random_graphs_match_baseline(n, extra, seed):
    spec = GraphSpec(n_vertices=n, extra_edges=extra, seed=seed)
    r = run_shortestpath(spec, n_gen_tasks=4)
    assert distances_from_result(r) == dijkstra_baseline(make_graph(spec), n)
