"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import ExecOptions
from repro.csvio import generate_csv_bytes


@pytest.fixture(scope="session")
def pvwatts_csv() -> bytes:
    """One synthetic year of hourly records (8 760 rows)."""
    return generate_csv_bytes(n_years=1, seed=42)


@pytest.fixture(scope="session")
def pvwatts_csv_rr() -> bytes:
    """Same records in round-robin (paper's 'sorted') order."""
    return generate_csv_bytes(n_years=1, seed=42, order="round-robin")


@pytest.fixture
def seq_opts() -> ExecOptions:
    return ExecOptions(strategy="sequential")


@pytest.fixture
def fj_opts() -> ExecOptions:
    return ExecOptions(strategy="forkjoin", threads=4)
