"""Unit tests for the freeze()-time rule-body compiler
(:mod:`repro.plan.codegen`).

The compiler's contract is *refuse-or-match*: a rule either compiles to
a driver whose observable behaviour is byte-identical to the scalar
path — including error messages — or it refuses with a
human-readable reason and the rule keeps the scalar path.  These tests
pin both halves: the refusal reasons (each one a construct the
generated code cannot prove equivalent) and the identical-error cases
(``get uniq?`` multiplicity, causality violations).
"""

from __future__ import annotations

import pytest

from repro.core import CausalityError, ExecOptions, Program, RuleError
from repro.gamma import HashKeyStore
from repro.plan.codegen import (
    CodegenRefusal,
    compile_rule,
    compiled_for,
    dump_generated_source,
)


def _module_helper(ctx):  # a target for the ctx-escape refusal
    return ctx


def _make_tables(p: Program):
    Src = p.table("Src", "int k", orderby=("Src",))
    Item = p.table("Item", "int k, int v", orderby=("Item",))
    Probe = p.table("Probe", "int k", orderby=("Probe",))
    p.order("Src", "Item")
    p.order("Item", "Probe")
    return Src, Item, Probe


# -- refusal reasons ---------------------------------------------------------


def _refusal_rules():
    """One (rule, reason fragment) per refused construct; the rules
    never run — only their source is analysed."""
    p = Program("refusals")
    Src, Item, Probe = _make_tables(p)
    cases = []

    @p.foreach(Probe)
    def where_lambda(ctx, pr):
        ctx.get(Item, where=lambda it: it.v > 0)

    cases.append((p, where_lambda, "where= lambdas are opaque"))

    @p.foreach(Probe)
    def ctx_escapes(ctx, pr):
        _module_helper(ctx)

    cases.append((p, ctx_escapes, "rule context escapes the body"))

    @p.foreach(Probe)
    def cg_prefix(ctx, pr):
        _cg_x = pr.k
        ctx.println(_cg_x)

    cases.append((p, cg_prefix, "collide with generated code"))

    @p.foreach(Probe)
    def global_decl(ctx, pr):
        global _G
        _G = pr.k

    cases.append((p, global_decl, "global declarations"))

    @p.foreach(Probe)
    def nested_ctx(ctx, pr):
        def inner():
            ctx.println("hi")

        inner()

    cases.append((p, nested_ctx, "nested function 'inner' uses the rule context"))

    @p.foreach(Probe)
    def lambda_ctx(ctx, pr):
        f = lambda: ctx.println("hi")  # noqa: E731
        f()

    cases.append((p, lambda_ctx, "a lambda uses the rule context"))

    @p.foreach(Probe)
    def io_not_unsafe(ctx, pr):
        ctx.io_allowed()

    cases.append((p, io_not_unsafe, "not declared unsafe"))

    @p.foreach(Probe)
    def native_call(ctx, pr):
        ctx.native(Item)

    cases.append((p, native_call, "unsupported context method ctx.native"))

    @p.foreach(Probe)
    def dyn_ranges(ctx, pr):
        spec = {"v": (0, pr.k)}
        ctx.get(Item, ranges=spec)

    cases.append((p, dyn_ranges, "ranges= must be a literal dict"))

    @p.foreach(Probe)
    def dyn_table(ctx, pr):
        tbl = Item
        ctx.get(tbl, k=pr.k)

    cases.append((p, dyn_table, "not a statically-known table handle"))

    return cases


_REFUSALS = _refusal_rules()


@pytest.mark.parametrize(
    "program, rule, fragment",
    _REFUSALS,
    ids=[rule.name for _, rule, _ in _REFUSALS],
)
def test_refusal_reason(program, rule, fragment):
    with pytest.raises(CodegenRefusal) as err:
        compile_rule(rule, program)
    assert fragment in err.value.reason, err.value.reason


def test_compiled_rule_is_cached_on_the_program():
    p = Program("cache")
    Src, Item, Probe = _make_tables(p)

    @p.foreach(Probe, assume_stratified=True)
    def probe(ctx, pr):
        ctx.println(f"items: {len(ctx.get(Item, k=pr.k))}")

    compiled, reason = compiled_for(p, probe)
    assert reason is None
    assert "_cg_driver" in compiled.source
    assert compiled_for(p, probe)[0] is compiled  # second call: cache hit


# -- identical errors --------------------------------------------------------


def _uniq_program():
    p = Program("uniq")
    Src, Item, Probe = _make_tables(p)

    @p.foreach(Src, unsafe=True)
    def seed(ctx, s):
        ctx.put(Item.new(s.k, 1))
        ctx.put(Item.new(s.k, 2))
        ctx.put(Probe.new(s.k))

    @p.foreach(Probe, assume_stratified=True)
    def probe(ctx, pr):
        ctx.get_uniq(Item, k=pr.k)

    p.put(Src.new(0))
    return p


def test_get_uniq_multiplicity_error_is_byte_identical():
    with pytest.raises(RuleError) as scalar_err:
        _uniq_program().run(ExecOptions())
    with pytest.raises(RuleError) as codegen_err:
        _uniq_program().run(ExecOptions(execution="codegen"))
    assert str(codegen_err.value) == str(scalar_err.value)
    assert "get uniq? Item matched 2 tuples" in str(codegen_err.value)


def _past_put_program():
    p = Program("cheat")
    T = p.table("T", "int t", orderby=("Int", "seq t"))

    @p.foreach(T)
    def back(ctx, t):
        if t.t == 1:
            ctx.put(T.new(0))  # into the past!

    p.put(T.new(1))
    return p


def test_causality_error_is_byte_identical():
    with pytest.raises(CausalityError) as scalar_err:
        _past_put_program().run(ExecOptions())
    with pytest.raises(CausalityError) as codegen_err:
        _past_put_program().run(ExecOptions(execution="codegen"))
    assert str(codegen_err.value) == str(scalar_err.value)


def test_causality_check_off_skips_the_generated_check_too():
    ref = _past_put_program().run(ExecOptions(causality_check="off"))
    got = _past_put_program().run(
        ExecOptions(causality_check="off", execution="codegen")
    )
    assert got.table_sizes == ref.table_sizes == {"T": 2}


# -- the adjudication gate ---------------------------------------------------


def _absent_program(assume: bool):
    p = Program("gate")
    Src, Item, Probe = _make_tables(p)

    @p.foreach(Src, unsafe=True)
    def seed(ctx, s):
        ctx.put(Item.new(s.k, s.k * 10))
        ctx.put(Probe.new(s.k))

    @p.foreach(Probe, assume_stratified=assume)
    def probe(ctx, pr):
        ctx.println(f"missing {pr.k}: {ctx.absent(Item, k=pr.k + 100)}")

    for k in range(3):
        p.put(Src.new(k))
    return p


def test_negative_query_needs_stratification_promise():
    got = _absent_program(assume=False).run(ExecOptions(execution="codegen"))
    assert any(
        "codegen: rule 'probe' kept scalar" in n
        and "dynamic adjudication" in n
        for n in got.stats.notes
    ), got.stats.notes


def test_assume_stratified_unlocks_negative_queries():
    ref = _absent_program(assume=True).run(ExecOptions())
    got = _absent_program(assume=True).run(ExecOptions(execution="codegen"))
    assert got.output_text() == ref.output_text()
    assert any(
        "rule 'probe' fired 3 generated / 0 scalar" in n
        for n in got.stats.notes
    ), got.stats.notes


def test_causality_check_off_also_unlocks_negative_queries():
    ref = _absent_program(assume=False).run(ExecOptions(causality_check="off"))
    got = _absent_program(assume=False).run(
        ExecOptions(causality_check="off", execution="codegen")
    )
    assert got.output_text() == ref.output_text()
    assert any(
        "rule 'probe' fired 3 generated" in n for n in got.stats.notes
    ), got.stats.notes


# -- keyed direct lookups ----------------------------------------------------


def _keyed_program():
    p = Program("keyed")
    Src = p.table("Src", "int k", orderby=("Src",))
    Rec = p.table("Rec", "int k -> int v", orderby=("Rec",))
    Probe = p.table("Probe", "int k", orderby=("Probe",))
    p.order("Src", "Rec")
    p.order("Rec", "Probe")

    @p.foreach(Src, unsafe=True)
    def seed(ctx, s):
        ctx.put(Rec.new(s.k, s.k * 10))
        ctx.put(Probe.new(s.k))

    @p.foreach(Probe, assume_stratified=True)
    def probe(ctx, pr):
        rec = ctx.get_uniq(Rec, k=pr.k)
        ctx.println(f"rec {pr.k}: {rec.v if rec is not None else None}")
        ctx.println(f"gone {pr.k}: {ctx.absent(Rec, k=pr.k + 100)}")

    for k in range(5):
        p.put(Src.new(k))
    return p, probe


def test_keyed_store_takes_the_direct_lookup_branch():
    overrides = {"Rec": lambda s: HashKeyStore(s)}
    _, ref_probe = _keyed_program()
    p_ref, _ = _keyed_program()
    ref = p_ref.run(ExecOptions(store_overrides=overrides))
    p_got, probe = _keyed_program()
    got = p_got.run(ExecOptions(store_overrides=overrides, execution="codegen"))
    assert got.output_text() == ref.output_text()
    src = dump_generated_source(probe)
    # both query sites compile the bind-time keyed branch; whether it is
    # taken depends on the store the kernel actually chose
    assert src is not None and "_s0_lookup" in src and "lookup" in src
