"""Unit tests for the compiled-plan layer (:mod:`repro.plan`).

The contract under test: for every call shape and every store kind, the
planned path must be observationally identical to the legacy
build-query-per-firing path — same results, same validation errors,
same meter charges — while compiling each shape exactly once.
"""

from __future__ import annotations

import pytest

from repro.core import ExecOptions, Program
from repro.core.errors import SchemaError
from repro.core.ordering import evaluate_orderby
from repro.core.reducers import SumReducer


def plan_program():
    """One program exercising every query style the context offers."""
    from repro.solver import RuleMeta

    p = Program("plans")
    Edge = p.table("Edge", "int src, int dst, int w", orderby=("Init", "par src"))
    Dist = p.table("Dist", "int v, int d", orderby=("Run", "seq d", "par v"))
    Done = p.table("Done", "int v", orderby=("End",))
    p.order("Init", "Run", "End")

    meta = RuleMeta(Dist)
    t = meta.trigger
    meta.branch().query(Edge, src=t["v"])

    @p.foreach(Dist, meta=meta)
    def relax(ctx, dist):
        # positional-prefix positive query
        for e in ctx.get(Edge, dist.v):
            # named-eq + where
            better = ctx.get(Dist, v=e.dst, where=lambda t: t.d <= dist.d + e.w)
            if not better:
                ctx.put(Dist.new(e.dst, dist.d + e.w))
        # negative query on an Init-ordered table: statically past-bounded
        if ctx.absent(Edge, src=dist.v, where=lambda t: t.w < 0):
            ctx.put(Done.new(dist.v))

    @p.foreach(Done, assume_stratified=True)
    def summarise(ctx, done):
        # pair-form range + aggregate reduce
        total = ctx.reduce(
            Dist,
            reducer=SumReducer(),
            value=lambda t: t.d,
            ranges={"d": (0, 100)},
        )
        # op-dict range form
        n_far = ctx.count(Dist, ranges={"d": {"ge": 2, "lt": 100}})
        # get_min aggregate
        best = ctx.get_min(Dist, by="d")
        # get_uniq on a fully-constrained shape
        me = ctx.get_uniq(Edge, src=0, dst=1)
        assert me is not None
        ctx.println(f"v={done.v} total={total} far={n_far} min={best.d}")

    for (s, d, w) in [(0, 1, 1), (0, 2, 4), (1, 2, 1), (2, 3, 2)]:
        p.put(Edge.new(s, d, w))
    p.put(Dist.new(0, 0))
    return p


@pytest.mark.parametrize("index_mode", ["off", "auto"])
def test_planned_equals_legacy(index_mode):
    """Same outputs, table sizes, meter counters *and* per-counter costs
    with the plan cache on and off, for plain and indexed stores."""
    ref = plan_program().run(ExecOptions(plan_cache=False, index_mode=index_mode))
    got = plan_program().run(ExecOptions(plan_cache=True, index_mode=index_mode))
    assert got.output_text() == ref.output_text()
    assert got.table_sizes == ref.table_sizes
    assert got.meter.counters == ref.meter.counters
    assert got.meter.costs == pytest.approx(ref.meter.costs)
    assert got.meter.shared == pytest.approx(ref.meter.shared)
    assert got.virtual_time == pytest.approx(ref.virtual_time)


def test_planned_equals_legacy_forkjoin():
    ref = plan_program().run(ExecOptions(strategy="forkjoin", threads=4, plan_cache=False))
    got = plan_program().run(ExecOptions(strategy="forkjoin", threads=4))
    assert got.output_text() == ref.output_text()
    assert got.meter.counters == ref.meter.counters
    assert got.virtual_time == pytest.approx(ref.virtual_time)


def test_shapes_compile_once():
    from repro.core.engine import Engine

    p = plan_program()
    e = Engine(p, ExecOptions())
    assert e._plans is not None
    warm = len(e._plans._prepared)
    assert warm > 0  # freeze-time warming resolved the static shapes
    e.run()
    n_plans = len(e._plans)
    assert n_plans > 0
    # a second engine over the same program compiles the same shapes
    e2 = Engine(p, ExecOptions())
    e2.run()
    assert len(e2._plans) == n_plans


def test_validation_errors_survive_planning():
    p = Program("bad")
    T = p.table("T", "int a, int b", orderby=("T",))
    boom: list[Exception] = []

    @p.foreach(T)
    def r(ctx, t):
        try:
            ctx.get(T, nosuch=1)
        except SchemaError as e:
            boom.append(e)
        try:
            ctx.get(T, nosuch=1)  # second call: same error, not a cached plan
        except SchemaError as e:
            boom.append(e)

    p.put(T.new(1, 2))
    p.run()
    assert len(boom) == 2


def test_bad_range_spec_rejected():
    p = Program("badrange")
    T = p.table("T", "int a", orderby=("T", "seq a"))
    errs: list[Exception] = []

    @p.foreach(T, assume_stratified=True)
    def r(ctx, t):
        try:
            ctx.count(T, ranges={"a": [1, 2, 3]})
        except SchemaError as e:
            errs.append(e)

    p.put(T.new(1))
    p.run()
    assert len(errs) == 1


def test_compiled_timestamper_matches_evaluate_orderby():
    from repro.plan.timestamps import CompiledTimestamper

    p = Program("ts")
    A = p.table("A", "int x, int y", orderby=("Lit1", "seq x", "par y"))
    B = p.table("B", "int x", orderby=("OnlyLit",))
    p.order("Lit1", "OnlyLit")
    p.freeze()
    for handle, values in [(A, (3, 7)), (A, (0, 0)), (B, (5,))]:
        schema = handle.schema
        compiled = CompiledTimestamper(schema, p.decls)
        tup = handle.new(*values)
        fields = dict(zip(schema.field_names, tup.values))
        expect = evaluate_orderby(schema.orderby, fields, p.decls)
        got = compiled.timestamp(tup.values)
        assert got.key == expect.key
        assert got.display == expect.display


def test_all_literal_orderby_is_constant():
    from repro.plan.timestamps import CompiledTimestamper

    p = Program("const")
    B = p.table("B", "int x", orderby=("OnlyLit",))
    p.freeze()
    c = CompiledTimestamper(B.schema, p.decls)
    t1 = c.timestamp((1,))
    t2 = c.timestamp((2,))
    assert t1 is t2  # one shared Timestamp for the whole table


def test_compiled_bound_matches_query_upper_bound():
    from repro.core.query import QueryKind, build_query
    from repro.core.rules import query_upper_bound
    from repro.plan.compile import compile_bound

    p = Program("bounds")
    T = p.table("T", "int a, int b", orderby=("L", "seq a", "par b"))
    p.freeze()

    cases = [
        dict(eq={"a": 3}),
        dict(ranges={"a": (0, 9)}),
        dict(ranges={"a": {"lt": 9}}),
        dict(ranges={"a": {"ge": 1}}),  # no upper bound -> None at runtime
        dict(eq={"b": 1}),  # seq level unconstrained -> no static bound
    ]
    for kw in cases:
        q = build_query(T, kind=QueryKind.NEGATIVE, **kw.get("eq", {}), ranges=kw.get("ranges"))
        expect = query_upper_bound(q, p.decls)
        cb = compile_bound(T.schema, q, p.decls)
        if cb is None:
            assert expect is None
        else:
            assert cb.evaluate(q) == expect
