"""Service verb semantics over a real socket: lifecycle, sequencing,
idempotent replay, per-tenant stats, durability verbs, retraction."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import ServiceCallError, ServiceClient
from tests.serve._progs import (
    oracle_output,
    running_service,
    telemetry_factory,
    telemetry_script,
)


def run(coro):
    return asyncio.run(coro)


async def _client(service) -> ServiceClient:
    return await ServiceClient.connect("127.0.0.1", service.port)


def test_ping_lists_programs():
    async def go():
        async with running_service() as svc:
            async with await _client(svc) as c:
                pong = await c.ping()
                assert pong["pong"] is True
                assert set(pong["programs"]) >= {"telemetry", "sensors"}
                assert pong["tenants"] == 0

    run(go())


def test_lifecycle_settles_match_single_shot_run():
    batches = telemetry_script(seed=11, n_tuples=160)
    oracle = oracle_output(telemetry_factory, batches)

    async def go():
        async with running_service() as svc:
            async with await _client(svc) as c:
                opened = await c.open("acme", "telemetry")
                assert opened["created"] and not opened["resumed"]
                assert opened["last_seq"] == 0

                increments = []
                for i, batch in enumerate(batches):
                    fed = await c.feed("acme", batch)
                    assert fed["admitted"] == len(batch)
                    assert fed["seq"] == i + 1
                    increments.extend((await c.settle("acme"))["output"])

                closed = await c.close("acme")
                # both views of the stream equal the single-shot run:
                # the concatenated settle increments and the cumulative
                # output reported at close
                assert increments == oracle
                assert closed["output"] == oracle
                assert closed["fed_tuples"] == sum(len(b) for b in batches)
                assert closed["settles"] == len(batches)

    run(go())


def test_open_is_idempotent_but_program_is_pinned():
    async def go():
        async with running_service() as svc:
            async with await _client(svc) as c:
                await c.open("t", "telemetry")
                again = await c.open("t", "telemetry")
                assert again["resumed"] and not again["created"]
                with pytest.raises(ServiceCallError) as err:
                    await c.open("t", "sensors")
                assert err.value.code == "protocol"
                assert "telemetry" in err.value.message

    run(go())


def test_duplicate_feed_is_acknowledged_not_reapplied():
    batches = telemetry_script(seed=5, n_tuples=64)

    async def go():
        async with running_service() as svc:
            async with await _client(svc) as c:
                await c.open("t", "telemetry")
                first = await c.feed("t", batches[0], seq=1)
                assert not first["duplicate"]
                replay = await c.feed("t", batches[0], seq=1)
                assert replay["duplicate"] and replay["admitted"] == 0
                stats = await c.stats("t")
                assert stats["last_seq"] == 1
                assert stats["fed_tuples"] == len(batches[0])

    run(go())


def test_feed_gap_is_refused_and_names_expected_seq():
    batches = telemetry_script(seed=5, n_tuples=64)

    async def go():
        async with running_service() as svc:
            async with await _client(svc) as c:
                await c.open("t", "telemetry")
                await c.feed("t", batches[0], seq=1)
                with pytest.raises(ServiceCallError) as err:
                    await c.feed("t", batches[1], seq=5)
                assert err.value.code == "protocol"
                assert "seq 1" in err.value.message
                # the gap refusal mutated nothing: the in-order feed lands
                ok = await c.feed("t", batches[1], seq=2)
                assert not ok["duplicate"]

    run(go())


def test_unknown_addressees_have_distinct_codes():
    async def go():
        async with running_service() as svc:
            async with await _client(svc) as c:
                with pytest.raises(ServiceCallError) as err:
                    await c.open("t", "no-such-program")
                assert err.value.code == "unknown-program"
                with pytest.raises(ServiceCallError) as err:
                    await c.settle("ghost")
                assert err.value.code == "unknown-tenant"
                with pytest.raises(ServiceCallError) as err:
                    await c.call("transmogrify")
                assert err.value.code == "unknown-verb"
                with pytest.raises(ServiceCallError) as err:
                    await c.open("/etc/passwd", "telemetry")
                assert err.value.code == "protocol"

    run(go())


def test_feed_events_must_be_a_list():
    async def go():
        async with running_service() as svc:
            async with await _client(svc) as c:
                await c.open("t", "telemetry")
                with pytest.raises(ServiceCallError) as err:
                    await c.call("feed", tenant="t", seq=1, events="nope")
                assert err.value.code == "protocol"

    run(go())


def test_unknown_table_feed_rejected_session_survives():
    async def go():
        async with running_service() as svc:
            async with await _client(svc) as c:
                await c.open("t", "telemetry")
                with pytest.raises(ServiceCallError) as err:
                    await c.feed("t", [["+", "Bogus", [1]]], seq=1)
                assert err.value.code == "unknown-table"
                # admission errors keep the session open; seq unchanged
                ok = await c.feed("t", [["+", "Reading", [0, 0, 5]]], seq=1)
                assert ok["admitted"] == 1

    run(go())


def test_options_override_allowlist():
    async def go():
        async with running_service() as svc:
            async with await _client(svc) as c:
                # retraction/admission are tenant-grade knobs ...
                opened = await c.open("t", "telemetry",
                                      options={"retraction": True})
                assert opened["created"]
                stats = await c.stats("t")
                assert stats["retraction"] is True
                # ... execution strategy is not
                with pytest.raises(ServiceCallError) as err:
                    await c.open("u", "telemetry",
                                 options={"strategy": "threads"})
                assert err.value.code == "engine"
                assert "strategy" in err.value.message

    run(go())


def test_retract_verb_deletes_and_refuses_inserts():
    async def go():
        async with running_service() as svc:
            async with await _client(svc) as c:
                await c.open("t", "telemetry", options={"retraction": True})
                await c.feed("t", [
                    ["+", "Reading", [0, 0, 950]],
                    ["+", "Reading", [0, 1, 990]],
                ])
                settled = await c.settle("t")
                assert len(settled["output"]) == 2

                with pytest.raises(ServiceCallError) as err:
                    await c.retract("t", [["+", "Reading", [0, 2, 10]]])
                assert err.value.code == "protocol"
                assert "retract verb" in err.value.message

                await c.retract("t", [["-", "Reading", [0, 0, 950]]])
                settled = await c.settle("t")
                # retraction settles report the full (repaired) output
                assert settled["output"] == ["tick 0: sensor 1 hot at 990"]

    run(go())


def test_stats_verb_service_and_tenant_views(tmp_path):
    batches = telemetry_script(seed=2, n_tuples=96)

    async def go():
        async with running_service(data_dir=tmp_path / "state") as svc:
            async with await _client(svc) as c:
                await c.open("a", "telemetry")
                await c.open("b", "telemetry")
                for batch in batches:
                    await c.feed("a", batch)
                await c.settle("a")

                tstats = await c.stats("a")
                assert tstats["tenant"] == "a"
                assert tstats["program"] == "telemetry"
                assert tstats["fed_tuples"] == sum(len(b) for b in batches)
                assert tstats["settles"] == 1
                assert tstats["durable_seq"] == len(batches)
                engine = tstats["engine"]
                assert engine["steps"] > 0
                assert len(engine["settles"]) == 1, "per-settle record missing"

                sstats = (await c.stats())["service"]
                assert sstats["feeds"] == len(batches)
                assert sstats["fed_tuples"] == tstats["fed_tuples"]
                assert sstats["settles"] == 1
                assert sstats["checkpoints"] >= 1
                assert sstats["peak_tenants"] == 2
                top = await c.stats()
                assert top["tenants"] == ["a", "b"]
                assert top["limits"]["max_tenants"] == svc.config.max_tenants

    run(go())


def test_snapshot_verb_requires_data_dir():
    async def go():
        async with running_service() as svc:  # no data_dir
            async with await _client(svc) as c:
                await c.open("t", "telemetry")
                with pytest.raises(ServiceCallError) as err:
                    await c.snapshot("t")
                assert err.value.code == "protocol"
                assert "data directory" in err.value.message

    run(go())


def test_snapshot_verb_advances_durable_seq(tmp_path):
    batches = telemetry_script(seed=9, n_tuples=64)

    async def go():
        async with running_service(
            data_dir=tmp_path / "state", checkpoint_every_settles=0
        ) as svc:
            async with await _client(svc) as c:
                await c.open("t", "telemetry")
                await c.feed("t", batches[0])
                assert (await c.stats("t"))["durable_seq"] == 0
                snap = await c.snapshot("t")
                assert snap["durable_seq"] == 1
                assert (tmp_path / "state" / "t" / "snapshot.json").exists()

    run(go())


def test_close_reaps_tenant_and_durable_state(tmp_path):
    async def go():
        async with running_service(data_dir=tmp_path / "state") as svc:
            async with await _client(svc) as c:
                await c.open("t", "telemetry")
                await c.feed("t", [["+", "Reading", [0, 0, 1]]])
                await c.settle("t")
                snap = tmp_path / "state" / "t" / "snapshot.json"
                assert snap.exists()
                await c.close("t")
                assert not snap.exists()
                with pytest.raises(ServiceCallError) as err:
                    await c.settle("t")
                assert err.value.code == "unknown-tenant"

    run(go())


def test_concurrent_tenants_on_separate_connections():
    """Two tenants driven from two connections interleave freely and
    each still matches its own single-shot run."""
    scripts = {
        "a": telemetry_script(seed=1, n_tuples=120),
        "b": telemetry_script(seed=2, n_tuples=120),
    }
    oracles = {k: oracle_output(telemetry_factory, v) for k, v in scripts.items()}

    async def drive(svc, tenant):
        async with await _client(svc) as c:
            await c.open(tenant, "telemetry")
            out = []
            for batch in scripts[tenant]:
                await c.feed(tenant, batch)
                out.extend((await c.settle(tenant))["output"])
            closed = await c.close(tenant)
            return out, closed["output"]

    async def go():
        async with running_service() as svc:
            results = await asyncio.gather(
                drive(svc, "a"), drive(svc, "b")
            )
        for tenant, (increments, cumulative) in zip(("a", "b"), results):
            assert increments == oracles[tenant]
            assert cumulative == oracles[tenant]

    run(go())
