"""Admission control and backpressure: refusals are structured,
retryable, and mutate nothing — the identical request is valid later.

The deterministic tests pin the service's in-flight byte counter
directly (simulating concurrent feeds holding the quota); the
end-to-end test lets real concurrent feeds fight over a small quota and
shows the client's retry loop drains everyone through.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import ServiceCallError, ServiceClient
from repro.serve.protocol import encode_frame
from tests.serve._progs import (
    oracle_output,
    running_service,
    telemetry_factory,
    telemetry_script,
)


def run(coro):
    return asyncio.run(coro)


async def _client(service) -> ServiceClient:
    return await ServiceClient.connect("127.0.0.1", service.port)


def test_tenant_limit_is_retryable_and_frees_on_close():
    async def go():
        async with running_service(max_tenants=2) as svc:
            async with await _client(svc) as c:
                await c.open("a", "telemetry")
                await c.open("b", "telemetry")
                with pytest.raises(ServiceCallError) as err:
                    await c.open("c", "telemetry")
                assert err.value.code == "tenant-limit"
                assert err.value.retryable
                # the refusal did not register the tenant anywhere
                assert (await c.stats())["tenants"] == ["a", "b"]
                # re-open of a live tenant is not an admission event
                assert (await c.open("a", "telemetry"))["resumed"]
                await c.close("a")
                assert (await c.open("c", "telemetry"))["created"]
                rejections = (await c.stats())["service"]["rejections"]
                assert rejections.get("tenant-limit") == 1

    run(go())


def test_overloaded_feed_refused_then_identical_retry_succeeds():
    batches = telemetry_script(seed=4, n_tuples=96)
    oracle = oracle_output(telemetry_factory, [batches[0]])

    async def go():
        async with running_service() as svc:
            async with await _client(svc) as c:
                await c.open("t", "telemetry")
                # simulate concurrent feeds holding the whole quota
                svc._inflight_bytes = svc.config.max_inflight_bytes
                with pytest.raises(ServiceCallError) as err:
                    await c.feed("t", batches[0], seq=1)
                assert err.value.code == "overloaded"
                assert err.value.retryable
                # the refusal mutated nothing: same seq, no tuples, no
                # engine steps
                stats = await c.stats("t")
                assert stats["last_seq"] == 0
                assert stats["fed_tuples"] == 0
                assert stats["engine"]["steps"] == 0

                # load drains; the *identical* request now lands
                svc._inflight_bytes = 0
                fed = await c.feed("t", batches[0], seq=1)
                assert fed["admitted"] == len(batches[0])
                await c.settle("t")
                assert (await c.close("t"))["output"] == oracle
                rejections = (await c.stats())["service"]["rejections"]
                assert rejections.get("overloaded") == 1

    run(go())


def test_client_retry_loop_rides_out_backpressure():
    batches = telemetry_script(seed=4, n_tuples=64)

    async def go():
        async with running_service() as svc:
            async with await _client(svc) as c:
                await c.open("t", "telemetry")
                svc._inflight_bytes = svc.config.max_inflight_bytes

                async def drain_soon():
                    await asyncio.sleep(0.08)
                    svc._inflight_bytes = 0

                drainer = asyncio.create_task(drain_soon())
                fed = await c.feed("t", batches[0], retries=6, backoff=0.03)
                await drainer
                assert fed["admitted"] == len(batches[0])

    run(go())


def test_concurrent_feeds_over_small_quota_all_land():
    """Real contention: a quota of about one frame, several tenants
    feeding big batches concurrently with retries.  Everyone gets
    through and every tenant's output still matches its single-shot
    run."""
    n_tenants = 5
    scripts = {
        f"t{i}": telemetry_script(seed=i, n_tuples=200, ticks_per_batch=26)
        for i in range(n_tenants)
    }
    frame_bytes = max(
        len(encode_frame({"id": 1, "verb": "feed", "tenant": "t0",
                          "seq": 1, "events": batch}))
        for batches in scripts.values()
        for batch in batches
    )
    oracles = {
        t: oracle_output(telemetry_factory, batches)
        for t, batches in scripts.items()
    }

    async def drive(svc, tenant):
        async with await _client(svc) as c:
            await c.open(tenant, "telemetry")
            out = []
            for batch in scripts[tenant]:
                await c.feed(tenant, batch, retries=12, backoff=0.02)
                out.extend((await c.settle(tenant))["output"])
            closed = await c.close(tenant)
            return out, closed["output"]

    async def go():
        async with running_service(
            max_inflight_bytes=int(frame_bytes * 1.5)
        ) as svc:
            results = await asyncio.gather(
                *(drive(svc, t) for t in scripts)
            )
        for tenant, (increments, cumulative) in zip(scripts, results):
            assert increments == oracles[tenant], tenant
            assert cumulative == oracles[tenant], tenant

    run(go())


def test_frame_too_large_is_refused_and_connection_dropped():
    async def go():
        async with running_service(max_frame_bytes=2048) as svc:
            async with await _client(svc) as c:
                await c.open("t", "telemetry")
                big = [["+", "Reading", [0, i % 8, 1]] for i in range(2000)]
                with pytest.raises(ServiceCallError) as err:
                    await c.feed("t", big, seq=1)
                assert err.value.code == "frame-too-large"
                assert not err.value.retryable
                # the stream may be desynchronised, so the service
                # dropped the connection after answering
                from repro.core.errors import ProtocolError

                with pytest.raises((ProtocolError, ConnectionError)):
                    await c.ping()
            # a fresh connection is unaffected, and the tenant kept its
            # state (nothing was admitted)
            async with await _client(svc) as c2:
                stats = await c2.stats("t")
                assert stats["last_seq"] == 0
                assert stats["fed_tuples"] == 0
                small = [["+", "Reading", [0, 0, 7]]]
                assert (await c2.feed("t", small, seq=1))["admitted"] == 1

    run(go())
