"""Wire-protocol unit tests: framing, event encoding, error mapping."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.delta import Delete, Insert
from repro.core.errors import (
    BackpressureError,
    CausalityError,
    EngineError,
    FrameTooLargeError,
    OverloadedError,
    ProtocolError,
    RetractionError,
    TenantLimitError,
    UnknownProgramError,
    UnknownTableError,
    UnknownTenantError,
    UnknownVerbError,
)
from repro.core.tuples import JTuple
from repro.serve.protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    decode_events,
    encode_frame,
    error_code,
    error_payload,
    read_frame,
    read_frame_with_size,
    wire_events,
)
from tests.serve._progs import telemetry_factory


def _reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def _read(data: bytes, max_bytes: int = MAX_FRAME_BYTES):
    async def go():
        # the reader must be created inside the running loop
        return await read_frame(_reader(data), max_bytes)

    return asyncio.run(go())


# -- framing -------------------------------------------------------------------


def test_frame_roundtrip():
    msg = {"id": 7, "verb": "feed", "events": [["+", "Reading", [0, 1, 2]]]}
    frame = encode_frame(msg)
    assert frame[: HEADER.size] == HEADER.pack(len(frame) - HEADER.size)
    assert _read(frame) == msg


def test_read_frame_with_size_reports_body_bytes():
    msg = {"id": 1, "verb": "ping"}
    frame = encode_frame(msg)

    async def go():
        return await read_frame_with_size(_reader(frame))

    got, nbytes = asyncio.run(go())
    assert got == msg
    assert nbytes == len(frame) - HEADER.size


def test_multiple_frames_then_clean_eof():
    data = encode_frame({"a": 1}) + encode_frame({"b": 2})

    async def go():
        reader = _reader(data)
        return [await read_frame(reader), await read_frame(reader),
                await read_frame(reader)]

    assert asyncio.run(go()) == [{"a": 1}, {"b": 2}, None]


def test_truncated_header_is_protocol_error():
    with pytest.raises(ProtocolError, match="mid-header"):
        _read(encode_frame({"a": 1})[:2])


def test_truncated_body_is_protocol_error():
    with pytest.raises(ProtocolError, match="mid-frame"):
        _read(encode_frame({"a": 1})[:-3])


def test_oversized_prefix_refused_without_reading_body():
    # only the 4-byte header is present; the refusal must come from the
    # length prefix alone
    with pytest.raises(FrameTooLargeError, match="exceeds"):
        _read(HEADER.pack(1 << 30))


def test_frame_over_custom_limit_refused():
    frame = encode_frame({"blob": "x" * 2048})
    with pytest.raises(FrameTooLargeError):
        _read(frame, max_bytes=64)


def test_invalid_json_is_protocol_error():
    body = b"{nope"
    with pytest.raises(ProtocolError, match="not valid JSON"):
        _read(HEADER.pack(len(body)) + body)


def test_non_object_payload_is_protocol_error():
    body = json.dumps([1, 2, 3]).encode()
    with pytest.raises(ProtocolError, match="JSON object"):
        _read(HEADER.pack(len(body)) + body)


# -- event encoding ------------------------------------------------------------


def test_wire_events_roundtrip_through_decode():
    program = telemetry_factory()
    schema = program.schemas()["Reading"]
    events = [
        Insert(JTuple(schema, (0, 1, 950))),
        Delete(JTuple(schema, (0, 1, 950))),
        JTuple(schema, (1, 2, 10)),  # bare tuple == insert sugar
    ]
    triples = wire_events(events)
    assert triples == [
        ["+", "Reading", [0, 1, 950]],
        ["-", "Reading", [0, 1, 950]],
        ["+", "Reading", [1, 2, 10]],
    ]
    decoded = decode_events(program.schemas(), triples)
    assert [type(ev) for ev in decoded] == [Insert, Delete, Insert]
    assert decoded[0].tuple.values == (0, 1, 950)
    assert decoded[0].tuple.schema is schema


def test_wire_events_rejects_non_events():
    with pytest.raises(ProtocolError, match="cannot encode"):
        wire_events([{"not": "an event"}])


def test_decode_events_refuses_unknown_table():
    program = telemetry_factory()
    with pytest.raises(UnknownTableError, match="Bogus"):
        decode_events(program.schemas(), [["+", "Bogus", [1]]])


@pytest.mark.parametrize(
    "triple",
    [
        ["+", "Reading"],  # too short
        ["*", "Reading", [0, 1, 2]],  # bad op
        ["+", "Reading", 7],  # values not a list
        "not a triple",
    ],
)
def test_decode_events_refuses_malformed_triples(triple):
    program = telemetry_factory()
    with pytest.raises(ProtocolError, match="triple"):
        decode_events(program.schemas(), [triple])


# -- error mapping -------------------------------------------------------------


@pytest.mark.parametrize(
    "exc, code, retryable",
    [
        (ProtocolError("x"), "protocol", False),
        (FrameTooLargeError("x"), "frame-too-large", False),
        (UnknownVerbError("x"), "unknown-verb", False),
        (UnknownProgramError("x"), "unknown-program", False),
        (UnknownTenantError("x"), "unknown-tenant", False),
        (BackpressureError("x"), "backpressure", True),
        (TenantLimitError("x"), "tenant-limit", True),
        (OverloadedError("x"), "overloaded", True),
        (CausalityError("x"), "admission", False),
        (RetractionError("x"), "retraction", False),
        (UnknownTableError("x"), "unknown-table", False),
        (EngineError("x"), "engine", False),
        (ValueError("x"), "internal", False),
    ],
)
def test_error_code_taxonomy(exc, code, retryable):
    assert error_code(exc) == (code, retryable)


def test_error_payload_shape():
    payload = error_payload(42, OverloadedError("drain first"))
    assert payload == {
        "id": 42,
        "ok": False,
        "error": {
            "code": "overloaded",
            "message": "drain first",
            "retryable": True,
        },
    }
