"""Shared programs and drivers for the service test battery.

Scripts travel as *wire triples* (``["+"|"-", table, values]``) so the
same script can be decoded against any fresh program instance — the
service decodes it against the tenant's program, the oracle against its
own.  That mirrors production (tuples cross the wire by table name, not
by schema identity) and is what makes "byte-identical to a single-shot
sequential run of the same script" a meaningful cross-process claim.
"""

from __future__ import annotations

import contextlib

from repro.core import ExecOptions, Program
from repro.serve import ProgramRegistry, ServiceConfig, SessionService
from repro.serve.protocol import decode_events

#: readings at or above this raise an alert line
HOT = 900


def telemetry_factory() -> Program:
    """The model serving workload: a stream of readings, a threshold
    rule, causally ordered log output — Congress's event-queue shape in
    miniature.  Equivalence classes are one tick wide (``par sensor``),
    so feeds batch naturally at tick boundaries."""
    p = Program("telemetry")
    Reading = p.table(
        "Reading",
        "int tick, int sensor -> int value",
        orderby=("Int", "seq tick", "Reading", "par sensor"),
    )
    Alert = p.table(
        "Alert",
        "int tick, int sensor -> int value",
        orderby=("Int", "seq tick", "Alert", "par sensor"),
    )
    Println = p.table(
        "Println",
        "int tick, int sensor -> str text",
        orderby=("Int", "seq tick", "Out", "seq sensor"),
    )
    p.order("Int", "Out")
    p.order("Reading", "Alert", "Out")

    @p.foreach(Reading)
    def threshold(ctx, r):
        if r.value >= HOT:
            ctx.put(Alert.new(r.tick, r.sensor, r.value))

    @p.foreach(Alert)
    def report(ctx, a):
        ctx.put(
            Println.new(a.tick, a.sensor, f"tick {a.tick}: sensor {a.sensor} hot at {a.value}")
        )

    @p.foreach(Println, unsafe=True)
    def emit(ctx, line):
        ctx.println(line.text)

    return p


def sensors_factory() -> Program:
    """The richer example app (negative query against the previous
    tick) with no initial puts — the caller owns the stream."""
    from repro.apps.sensors import build_sensor_stream

    handles, _events = build_sensor_stream(n_ticks=0, n_sensors=4)
    return handles.program


def make_registry() -> ProgramRegistry:
    registry = ProgramRegistry()
    registry.register("telemetry", telemetry_factory)
    registry.register("sensors", sensors_factory)
    return registry


def telemetry_script(
    seed: int, n_tuples: int, n_sensors: int = 8, ticks_per_batch: int = 4
) -> list[list[list]]:
    """A deterministic per-seed stream of wire triples, pre-chunked into
    causally aligned feed batches (whole ticks per batch)."""
    batches: list[list[list]] = []
    cur: list[list] = []
    tick = 0
    mixer = seed * 2654435761 % 2**31
    for i in range(n_tuples):
        sensor = i % n_sensors
        if sensor == 0 and i:
            tick += 1
            if tick % ticks_per_batch == 0:
                batches.append(cur)
                cur = []
        value = (i * 1103515245 + mixer) % 1000
        cur.append(["+", "Reading", [tick, sensor, value]])
    if cur:
        batches.append(cur)
    return batches


def oracle_output(factory, batches: list[list[list]], options: ExecOptions | None = None) -> list[str]:
    """The single-shot sequential run of one script: all events in one
    feed, one settle, on a fresh program instance."""
    program = factory()
    opts = options if options is not None else ExecOptions()
    with program.session(opts) as s:
        events = [
            ev
            for batch in batches
            for ev in decode_events(program.schemas(), batch)
        ]
        s.feed(events)
        result = s.close()
    return list(result.output)


@contextlib.asynccontextmanager
async def running_service(registry=None, **config_kw):
    """An in-process service bound to an ephemeral port."""
    service = SessionService(
        registry if registry is not None else make_registry(),
        ServiceConfig(**config_kw),
    )
    await service.start()
    try:
        yield service
    finally:
        await service.stop(checkpoint=False)
