"""Subprocess entry for the crash-recovery battery: serve the standard
test registry until killed.

Usage: python _serve_child.py <data-dir> <ready-file>

Writes ``{"port": N}`` to <ready-file> once listening; the parent polls
that instead of racing the bind, then SIGKILLs this process mid-stream.
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parents[2]
for entry in (str(_REPO), str(_REPO / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.serve import ServiceConfig, run_service  # noqa: E402
from tests.serve._progs import make_registry  # noqa: E402


def main() -> None:
    data_dir, ready_file = sys.argv[1], sys.argv[2]
    run_service(
        make_registry(),
        ServiceConfig(data_dir=data_dir, checkpoint_every_settles=1),
        ready_file=ready_file,
    )


if __name__ == "__main__":
    main()
