"""Property-based testing of the wire path, extending the retraction
property battery (tests/session/test_retraction_props.py) through the
service: random interleavings of several tenants' insert/delete/settle
scripts, each tenant checked against a from-scratch recompute on its
surviving facts.

Scripts are valid by construction — inserts pick keys not currently
live (re-asserting a retracted key with a fresh generation value is
allowed and exercised), deletes pick live facts.  The scripts travel as
wire triples and the tenants' batches are interleaved round-robin, so
every example exercises multi-tenant dispatch, per-tenant sequencing,
and retraction repair through the socket."""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExecOptions
from repro.serve import ServiceClient
from tests.serve._progs import oracle_output, running_service, telemetry_factory

N_TICKS = 4
N_SENSORS = 3
ALL_KEYS = [(t, s) for t in range(N_TICKS) for s in range(N_SENSORS)]
N_TENANTS = 3


def _value(key: tuple[int, int], gen: int) -> int:
    # straddles the HOT threshold so retraction repairs real output
    return 850 + ((key[0] * 7 + key[1] * 13 + gen * 29) % 12) * 20


@st.composite
def tenant_scripts(draw):
    """One tenant's script: causally batched inserts/deletes plus the
    surviving facts for the scratch recompute."""
    n_batches = draw(st.integers(min_value=2, max_value=4))
    live: dict[tuple[int, int], int] = {}
    gen: dict[tuple[int, int], int] = {}
    batches: list[list[list]] = []
    for _ in range(n_batches):
        batch: list[list] = []
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            if live and draw(st.booleans()):
                key = draw(st.sampled_from(sorted(live)))
                batch.append(["-", "Reading", [key[0], key[1], live.pop(key)]])
            else:
                free = [k for k in ALL_KEYS if k not in live]
                if not free:
                    continue
                key = draw(st.sampled_from(free))
                value = _value(key, gen.get(key, 0))
                gen[key] = gen.get(key, 0) + 1
                live[key] = value
                batch.append(["+", "Reading", [key[0], key[1], value]])
        if batch:
            batches.append(batch)
    survivors = [
        ["+", "Reading", [k[0], k[1], v]] for k, v in sorted(live.items())
    ]
    return batches, survivors


async def _run_interleaved(scripts: list[tuple[list, list]]) -> None:
    async with running_service() as svc:
        async with await ServiceClient.connect("127.0.0.1", svc.port) as c:
            tenants = [f"t{i}" for i in range(len(scripts))]
            for tenant in tenants:
                await c.open(tenant, "telemetry", options={"retraction": True})
            # round-robin interleave: batch j of every tenant before
            # batch j+1 of any
            max_batches = max(len(batches) for batches, _ in scripts)
            for j in range(max_batches):
                for tenant, (batches, _) in zip(tenants, scripts):
                    if j < len(batches):
                        await c.feed(tenant, batches[j])
                        await c.settle(tenant)
            for tenant, (_, survivors) in zip(tenants, scripts):
                closed = await c.close(tenant)
                scratch = oracle_output(
                    telemetry_factory,
                    [survivors] if survivors else [],
                    options=ExecOptions(retraction=True),
                )
                assert closed["output"] == scratch, tenant


@settings(max_examples=15, deadline=None)
@given(st.lists(tenant_scripts(), min_size=N_TENANTS, max_size=N_TENANTS))
def test_interleaved_tenant_scripts_equal_scratch_recompute(scripts):
    asyncio.run(_run_interleaved(scripts))
