"""Concurrency/soak battery: many tenants live at once, all feeding
interleaved over their own connections, every tenant differentially
checked byte-for-byte against a single-shot sequential run of its
script.  A second leg kills the service mid-soak (no graceful
checkpoint) and restores every tenant from its durable snapshot.

Scale is environment-tunable so CI runs a reduced soak and the full
acceptance numbers run on demand:

    SERVE_SOAK_TENANTS=100 SERVE_SOAK_TUPLES=10000 \
        python -m pytest tests/serve/test_concurrency_soak.py -q

(100 tenants x 10k tuples = 1M fed tuples.)  Tenants share a pool of
``SERVE_SOAK_SCRIPTS`` distinct scripts so the oracle cost stays flat
while every tenant is still asserted individually.
"""

from __future__ import annotations

import asyncio
import os

from repro.serve import ServiceClient, ServiceConfig, SessionService
from tests.serve._progs import (
    make_registry,
    oracle_output,
    telemetry_factory,
    telemetry_script,
)

N_TENANTS = int(os.environ.get("SERVE_SOAK_TENANTS", "12"))
TUPLES_PER_TENANT = int(os.environ.get("SERVE_SOAK_TUPLES", "400"))
N_SCRIPTS = int(os.environ.get("SERVE_SOAK_SCRIPTS", "10"))
SETTLE_EVERY = 2  # batches per settle


def _scripts() -> dict[int, list[list[list]]]:
    return {
        seed: telemetry_script(seed=seed, n_tuples=TUPLES_PER_TENANT)
        for seed in range(min(N_SCRIPTS, N_TENANTS))
    }


def _oracles(scripts: dict[int, list]) -> dict[int, list[str]]:
    return {
        seed: oracle_output(telemetry_factory, batches)
        for seed, batches in scripts.items()
    }


def _seed_for(tenant_index: int) -> int:
    return tenant_index % min(N_SCRIPTS, N_TENANTS)


class _Gate:
    """All tenants open before any feeds: the soak is a test of
    *concurrent* tenancy, not of tenants passing in the night."""

    def __init__(self, n: int):
        self.remaining = n
        self.event = asyncio.Event()

    async def arrive(self) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.event.set()
        await self.event.wait()


async def _drive_tenant(
    port: int,
    tenant: str,
    batches: list,
    oracle: list[str],
    gate: _Gate | None,
    *,
    start_batch: int = 0,
    increments: list[str] | None = None,
) -> int:
    """One tenant's full life over its own connection.  Returns the
    number of tuples fed; asserts the differential invariant."""
    out = increments if increments is not None else []
    fed = 0
    async with await ServiceClient.connect("127.0.0.1", port) as client:
        opened = await client.open(tenant, "telemetry")
        assert opened["last_seq"] == start_batch, tenant
        if gate is not None:
            await gate.arrive()
        for i in range(start_batch, len(batches)):
            response = await client.feed(
                tenant, batches[i], seq=i + 1, retries=8, backoff=0.05
            )
            fed += response["admitted"]
            if (i + 1) % SETTLE_EVERY == 0:
                out.extend((await client.settle(tenant))["output"])
        out.extend((await client.settle(tenant))["output"])
        closed = await client.close(tenant)
    assert out == oracle, f"settle increments diverged for {tenant}"
    assert closed["output"] == oracle, f"cumulative output diverged for {tenant}"
    return fed


def test_soak_interleaved_tenants_match_single_shot():
    scripts = _scripts()
    oracles = _oracles(scripts)
    total_expected = sum(
        sum(len(b) for b in scripts[_seed_for(i)]) for i in range(N_TENANTS)
    )

    async def go():
        service = SessionService(
            make_registry(),
            ServiceConfig(max_tenants=N_TENANTS + 8),
        )
        await service.start()
        try:
            gate = _Gate(N_TENANTS)
            fed = await asyncio.gather(
                *(
                    _drive_tenant(
                        service.port,
                        f"tenant-{i:04d}",
                        scripts[_seed_for(i)],
                        oracles[_seed_for(i)],
                        gate,
                    )
                    for i in range(N_TENANTS)
                )
            )
        finally:
            await service.stop(checkpoint=False)
        assert sum(fed) == total_expected
        stats = service.stats
        assert stats.fed_tuples == total_expected
        assert stats.peak_tenants == N_TENANTS, "tenants were not concurrent"
        assert stats.closes == N_TENANTS

    asyncio.run(go())


def test_soak_kill_and_restore_mid_stream(tmp_path):
    """Feed half of every tenant's script, drop the service without a
    graceful checkpoint (simulated crash), bring a fresh service up on
    the same data directory, replay the lost tail, and still match the
    single-shot run per tenant."""
    n_tenants = max(4, N_TENANTS // 2)
    scripts = _scripts()
    oracles = _oracles(scripts)
    data_dir = tmp_path / "state"
    increments: dict[str, list[str]] = {
        f"tenant-{i:04d}": [] for i in range(n_tenants)
    }

    async def first_half():
        service = SessionService(
            make_registry(),
            ServiceConfig(
                data_dir=data_dir,
                max_tenants=n_tenants + 4,
                checkpoint_every_settles=1,
            ),
        )
        await service.start()
        durable: dict[str, int] = {}
        try:
            gate = _Gate(n_tenants)

            async def drive_half(i: int) -> None:
                tenant = f"tenant-{i:04d}"
                batches = scripts[_seed_for(i)]
                half = len(batches) // 2
                async with await ServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    await client.open(tenant, "telemetry")
                    await gate.arrive()
                    last_durable = 0
                    for j in range(half):
                        await client.feed(
                            tenant, batches[j], seq=j + 1,
                            retries=8, backoff=0.05,
                        )
                        if (j + 1) % SETTLE_EVERY == 0:
                            settled = await client.settle(tenant)
                            increments[tenant].extend(settled["output"])
                            last_durable = settled["durable_seq"]
                    # one more feed, never settled: applied in memory
                    # but not durable — the crash loses it and the
                    # replay must cover it
                    await client.feed(
                        tenant, batches[half], seq=half + 1,
                        retries=8, backoff=0.05,
                    )
                    durable[tenant] = last_durable

            await asyncio.gather(*(drive_half(i) for i in range(n_tenants)))
        finally:
            # the crash: no graceful checkpoint, in-memory state gone
            await service.stop(checkpoint=False)
        return durable

    async def second_half(durable: dict[str, int]):
        service = SessionService(
            make_registry(),
            ServiceConfig(
                data_dir=data_dir,
                max_tenants=n_tenants + 4,
                checkpoint_every_settles=1,
            ),
        )
        await service.start()
        try:
            async def drive_rest(i: int) -> None:
                tenant = f"tenant-{i:04d}"
                batches = scripts[_seed_for(i)]
                await _drive_tenant(
                    service.port,
                    tenant,
                    batches,
                    oracles[_seed_for(i)],
                    None,
                    start_batch=durable[tenant],
                    increments=increments[tenant],
                )

            await asyncio.gather(*(drive_rest(i) for i in range(n_tenants)))
            assert service.stats.restores == n_tenants
        finally:
            await service.stop(checkpoint=False)

    async def go():
        durable = await first_half()
        # every tenant settled at least once, so something is durable,
        # and everyone has applied-but-lost feeds to replay
        assert all(seq > 0 for seq in durable.values())
        await second_half(durable)

    asyncio.run(go())
