"""Crash recovery across real processes: SIGKILL the service mid-feed,
restart it over the same data directory, replay from the durable
sequence number, and verify exactly-once admission — no tenant tuple is
duplicated or lost, and the recovered stream is byte-identical to a
single-shot sequential run that never crashed."""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import ServiceClient
from repro.serve.protocol import write_frame
from tests.serve._progs import oracle_output, telemetry_factory, telemetry_script

CHILD = Path(__file__).with_name("_serve_child.py")

N_TUPLES = 320
DURABLE_BATCHES = 3  # settled + checkpointed before the kill


def _spawn(data_dir: Path, ready: Path) -> tuple[subprocess.Popen, int]:
    proc = subprocess.Popen(
        [sys.executable, str(CHILD), str(data_dir), str(ready)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    deadline = time.time() + 30
    while not ready.exists():
        if proc.poll() is not None:
            raise AssertionError(
                f"service child died before ready: "
                f"{proc.stderr.read().decode()}"
            )
        if time.time() > deadline:
            proc.kill()
            raise AssertionError("service child never became ready")
        time.sleep(0.02)
    port = json.loads(ready.read_text())["port"]
    ready.unlink()
    return proc, port


def test_sigkill_mid_feed_then_replay_is_exactly_once(tmp_path):
    batches = telemetry_script(seed=21, n_tuples=N_TUPLES)
    assert len(batches) > DURABLE_BATCHES + 1
    oracle = oracle_output(telemetry_factory, batches)
    total_tuples = sum(len(b) for b in batches)
    data_dir = tmp_path / "state"

    proc, port = _spawn(data_dir, tmp_path / "ready-1")
    increments: list[str] = []
    try:
        async def before_crash():
            async with await ServiceClient.connect("127.0.0.1", port) as c:
                opened = await c.open("acme", "telemetry")
                assert opened["created"]
                # durable prefix: feed + settle (checkpoint per settle)
                for batch in batches[:DURABLE_BATCHES]:
                    await c.feed("acme", batch)
                    settled = await c.settle("acme")
                    increments.extend(settled["output"])
                    assert settled["durable_seq"] == settled["settle"]
                # applied but NOT durable: feed without settling
                fed = await c.feed("acme", batches[DURABLE_BATCHES])
                assert fed["durable_seq"] == DURABLE_BATCHES
                # and one feed we kill the service under: write the
                # frame, don't wait for the answer
                await write_frame(
                    c._writer,
                    {
                        "id": 999,
                        "verb": "feed",
                        "tenant": "acme",
                        "seq": DURABLE_BATCHES + 2,
                        "events": batches[DURABLE_BATCHES + 1],
                    },
                )
                os.kill(proc.pid, signal.SIGKILL)

        asyncio.run(before_crash())
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            proc.kill()

    snap = data_dir / "acme" / "snapshot.json"
    assert snap.exists(), "durable checkpoint survived the kill"

    proc2, port2 = _spawn(data_dir, tmp_path / "ready-2")
    try:
        async def after_restart():
            async with await ServiceClient.connect("127.0.0.1", port2) as c:
                opened = await c.open("acme", "telemetry")
                assert opened["resumed"] and not opened["created"]
                # everything past the last checkpoint is gone — the
                # applied-but-unsettled feeds included
                assert opened["last_seq"] == DURABLE_BATCHES
                assert opened["durable_seq"] == DURABLE_BATCHES

                # replaying an already-durable feed is acknowledged
                # without re-admission (idempotent client replay)
                dup = await c.feed(
                    "acme", batches[DURABLE_BATCHES - 1], seq=DURABLE_BATCHES
                )
                assert dup["duplicate"] and dup["admitted"] == 0

                # replay the lost tail in order
                for i, batch in enumerate(batches[DURABLE_BATCHES:]):
                    fed = await c.feed(
                        "acme", batch, seq=DURABLE_BATCHES + 1 + i
                    )
                    assert not fed["duplicate"]
                    assert fed["admitted"] == len(batch)
                settled = await c.settle("acme")
                increments.extend(settled["output"])
                closed = await c.close("acme")
                return closed

        closed = asyncio.run(after_restart())
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait(timeout=30)

    # exactly-once: every admitted tuple counted once across the crash
    assert closed["fed_tuples"] == total_tuples
    # byte-identical to the run that never crashed, in both views
    assert closed["output"] == oracle
    assert increments == oracle


def test_restart_refuses_mismatched_reopen(tmp_path):
    """A durable tenant is pinned to its program and options; a
    conflicting re-open after restart is refused, not silently
    honoured."""
    batches = telemetry_script(seed=8, n_tuples=64)
    data_dir = tmp_path / "state"

    proc, port = _spawn(data_dir, tmp_path / "ready-1")
    try:
        async def seed_tenant():
            async with await ServiceClient.connect("127.0.0.1", port) as c:
                await c.open("t", "telemetry", options={"retraction": True})
                await c.feed("t", batches[0])
                await c.settle("t")
        asyncio.run(seed_tenant())
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()

    proc2, port2 = _spawn(data_dir, tmp_path / "ready-2")
    try:
        async def reopen():
            from repro.serve import ServiceCallError

            async with await ServiceClient.connect("127.0.0.1", port2) as c:
                # verbs against the not-yet-restored tenant point at open
                with pytest.raises(ServiceCallError) as err:
                    await c.settle("t")
                assert err.value.code == "unknown-tenant"
                assert "send open" in err.value.message

                with pytest.raises(ServiceCallError) as err:
                    await c.open("t", "sensors")
                assert err.value.code == "protocol"

                with pytest.raises(ServiceCallError) as err:
                    await c.open("t", "telemetry", options={"retraction": False})
                assert err.value.code == "protocol"

                opened = await c.open("t", "telemetry",
                                      options={"retraction": True})
                assert opened["resumed"]
                assert (await c.stats("t"))["retraction"] is True
        asyncio.run(reopen())
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait(timeout=30)
