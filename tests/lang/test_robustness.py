"""Robustness fuzz: the front-end must fail *cleanly* on arbitrary
input — always LangSyntaxError/CompileError with a location, never an
internal exception."""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import CompileError, LangSyntaxError, compile_source, parse_program, tokenize

printable = st.text(alphabet=string.printable, max_size=200)


@settings(max_examples=150, deadline=None)
@given(printable)
def test_tokenizer_never_crashes(source):
    try:
        toks = tokenize(source)
    except LangSyntaxError:
        return
    assert toks[-1].kind == "eof"


@settings(max_examples=150, deadline=None)
@given(printable)
def test_parser_fails_cleanly(source):
    try:
        parse_program(source)
    except LangSyntaxError as e:
        assert e.line >= 1
    # parsing successfully is fine too (e.g. empty/whitespace input)


@settings(max_examples=80, deadline=None)
@given(printable)
def test_compiler_fails_cleanly(source):
    try:
        compile_source(source)
    except (LangSyntaxError, CompileError):
        pass


# targeted mutations of a valid program: drop/duplicate single tokens
VALID = (
    "table T(int t -> int v) orderby (Int, seq t)\n"
    "put new T(0, 1)\n"
    "foreach (T x) { if (x.t < 3) { put new T(x.t + 1, x.v) } }\n"
)


@settings(max_examples=120, deadline=None)
@given(st.integers(0, 200), st.sampled_from(["drop", "dup"]))
def test_token_level_mutations_fail_cleanly(pos, mode):
    toks = VALID.split()
    if pos >= len(toks):
        return
    if mode == "drop":
        mutated = toks[:pos] + toks[pos + 1 :]
    else:
        mutated = toks[: pos + 1] + [toks[pos]] + toks[pos + 1 :]
    source = " ".join(mutated)
    try:
        program = compile_source(source)
        program.run()  # may still be a valid program — must then run
    except (LangSyntaxError, CompileError):
        pass
    except Exception as exc:
        # runtime errors from a *semantically* changed program are fine
        # as long as they are the runtime's typed errors
        from repro.core.errors import JStarError

        assert isinstance(exc, JStarError), exc
