"""Lexer and parser tests for the JStar concrete syntax."""

from __future__ import annotations

import pytest

from repro.lang import LangSyntaxError, parse_expression, parse_program, tokenize
from repro.lang import ast as A


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("table Ship(int frame -> int x)")
        kinds = [(t.kind, t.text) for t in toks[:6]]
        assert kinds[0] == ("keyword", "table")
        assert kinds[1] == ("name", "Ship")
        assert ("op", "->") in kinds

    def test_numbers(self):
        toks = tokenize("42 3.25")
        assert (toks[0].kind, toks[0].text) == ("int", "42")
        assert (toks[1].kind, toks[1].text) == ("float", "3.25")

    def test_string_with_escapes(self):
        (tok, _) = tokenize(r'"a\"b\n"')
        assert tok.text == 'a"b\n'

    def test_line_comment(self):
        toks = tokenize("a // comment\n b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_block_comment(self):
        toks = tokenize("a /* x\ny */ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_unterminated_string(self):
        with pytest.raises(LangSyntaxError, match="unterminated string"):
            tokenize('"abc')

    def test_unterminated_block_comment(self):
        with pytest.raises(LangSyntaxError, match="unterminated block"):
            tokenize("/* abc")

    def test_unexpected_char(self):
        with pytest.raises(LangSyntaxError, match="unexpected character"):
            tokenize("a @ b")

    def test_line_numbers(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_multichar_ops_greedy(self):
        toks = tokenize("a <= b -> c == d += e")
        ops = [t.text for t in toks if t.kind == "op"]
        assert ops == ["<=", "->", "==", "+="]


class TestExpressionParser:
    def test_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, A.Binary) and e.op == "+"
        assert isinstance(e.right, A.Binary) and e.right.op == "*"

    def test_comparison_and_logic(self):
        e = parse_expression("a < b && c == d || e")
        assert isinstance(e, A.Binary) and e.op == "||"

    def test_field_access_chain(self):
        e = parse_expression("s.frame")
        assert isinstance(e, A.FieldAccess) and e.field == "frame"

    def test_unary(self):
        e = parse_expression("-x + !y")
        assert isinstance(e, A.Binary)
        assert isinstance(e.left, A.Unary) and e.left.op == "-"

    def test_new_positional(self):
        e = parse_expression("new Ship(0, 10+1)")
        assert isinstance(e, A.NewTuple) and e.table == "Ship"
        assert len(e.args) == 2

    def test_new_named_brackets(self):
        # §3: new Ship() [frame=0; x=10; dx=150]
        e = parse_expression("new Ship() [frame=0; x=10; dx=150]")
        assert isinstance(e, A.NewTuple)
        assert [f for f, _ in e.named] == ["frame", "x", "dx"]

    def test_get_plain(self):
        e = parse_expression("get PvWatts(s.year, s.month)")
        assert isinstance(e, A.GetQuery) and e.mode == "all"
        assert len(e.args) == 2

    def test_get_uniq_with_predicate(self):
        # Fig 5: get uniq? Done(dist.vertex, [distance < dist.distance])
        e = parse_expression("get uniq? Done(dist.vertex, [distance < dist.distance])")
        assert isinstance(e, A.GetQuery) and e.mode == "uniq"
        assert e.preds[0][0] == "distance" and e.preds[0][1] == "<"

    def test_get_min(self):
        e = parse_expression("get min Tuple1(3)")
        assert isinstance(e, A.GetQuery) and e.mode == "min"

    def test_null_comparison(self):
        e = parse_expression("get uniq? Done(7) == null")
        assert isinstance(e, A.Binary) and e.op == "=="
        assert isinstance(e.right, A.Literal) and e.right.value is None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(LangSyntaxError):
            parse_expression("1 + 2 extra")


class TestProgramParser:
    def test_table_with_orderby(self):
        tree = parse_program(
            "table Ship(int frame -> int x, int y) orderby (Int, seq frame, par x)"
        )
        t = tree.tables[0]
        assert t.name == "Ship"
        assert "->" in t.fields_text
        assert t.orderby == ("Int", "seq frame", "par x")

    def test_order_chain(self):
        tree = parse_program("order Req < PvWatts < SumMonth;")
        assert tree.orders[0].names == ("Req", "PvWatts", "SumMonth")

    def test_order_single_name_rejected(self):
        with pytest.raises(LangSyntaxError):
            parse_program("order Req;")

    def test_top_level_put(self):
        tree = parse_program("table T(int x)\nput new T(5)")
        assert tree.puts[0].value.table == "T"

    def test_top_level_put_requires_new(self):
        with pytest.raises(LangSyntaxError):
            parse_program("put 5")

    def test_rule_with_statements(self):
        tree = parse_program(
            """
            table T(int x) orderby (Int, seq x)
            foreach (T t) {
              val y = t.x + 1
              if (y < 10) { put new T(y) } else { println("done") }
              for (u : get T(0)) { println(u.x) }
            }
            """
        )
        rule = tree.rules[0]
        assert rule.trigger_table == "T" and rule.trigger_var == "t"
        kinds = [type(s).__name__ for s in rule.body]
        assert kinds == ["ValDecl", "IfStmt", "ForStmt"]

    def test_unsafe_rule(self):
        tree = parse_program("table T(int x)\nunsafe foreach (T t) { println(1) }")
        assert tree.rules[0].unsafe

    def test_add_assign_statement(self):
        tree = parse_program(
            """
            table T(int x)
            foreach (T t) { val s = new Statistics()  s += t.x }
            """
        )
        body = tree.rules[0].body
        assert isinstance(body[1], A.AddAssign)

    def test_for_requires_plain_get(self):
        with pytest.raises(LangSyntaxError, match="plain 'get"):
            parse_program(
                "table T(int x)\nforeach (T t) { for (u : get uniq? T(1)) { } }"
            )

    def test_unknown_declaration(self):
        with pytest.raises(LangSyntaxError, match="expected a declaration"):
            parse_program("banana")

    def test_error_carries_line_number(self):
        try:
            parse_program("table T(int x)\n\norder Req;")
        except LangSyntaxError as e:
            assert e.line == 3
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")
