"""Tests for the auto-generated read-loop rules and the complete,
verbatim Fig 4 (including its `put PvWattsRequest(...)` line)."""

from __future__ import annotations

import pytest

from repro.core import ExecOptions
from repro.csvio import expected_month_means, generate_csv_bytes
from repro.lang import compile_source
from repro.lang.compile import CompileError

FIG4_VERBATIM = """
table PvWattsRequest(String filename) orderby (Req);
table PvWatts(int year, int month, int day, String hour, int power) orderby (PvWatts);
table SumMonth(int year, int month) orderby (SumMonth);
order Req < PvWatts < SumMonth;

put PvWattsRequest("large1000.csv");

foreach (PvWatts pv) {put new SumMonth(pv.year, pv.month);}

foreach (SumMonth s) {
  val stats = new Statistics()
  for (record : get PvWatts(s.year, s.month)) {
    stats += record.power
  }
  println(s.year + "/" + s.month + ": " + stats.mean)
}
"""


class TestVerbatimFig4:
    @pytest.fixture(scope="class")
    def result(self):
        data = generate_csv_bytes(n_years=1, seed=42)
        p = compile_source(FIG4_VERBATIM, files={"large1000.csv": data})
        return p.run(ExecOptions(no_delta=frozenset({"PvWatts"})))

    def test_all_twelve_months_correct(self, result):
        truth = expected_month_means()
        assert len(result.output) == 12
        for line in result.output:
            ym, mean = line.split(": ")
            y, m = ym.split("/")
            assert float(mean) == pytest.approx(truth[(int(y), int(m))], abs=5e-3)

    def test_read_loop_rule_generated(self, result):
        assert "read_loop_PvWatts" in result.stats.rules
        assert result.stats.rules["read_loop_PvWatts"].firings == 1
        assert result.table_sizes["PvWatts"] == 8760

    def test_string_field_decoded(self, result):
        sample = next(iter(result.database.store("PvWatts").scan()))
        assert isinstance(sample.hour, str) and ":" in sample.hour


class TestGenerationRules:
    def test_no_companion_table_no_rule(self):
        p = compile_source(
            'table FooRequest(String filename) orderby (Req)\nput FooRequest("x")'
        )
        assert p.rules == []  # nothing to read into

    def test_wrong_request_shape_no_rule(self):
        p = compile_source(
            "table Foo(int x) orderby (A)\n"
            "table FooRequest(int id) orderby (Req)\n"
        )
        assert p.rules == []

    def test_missing_file_raises(self):
        src = (
            "table Foo(int x) orderby (Data)\n"
            "table FooRequest(String filename) orderby (Req)\n"
            "order Req < Data\n"
            'put FooRequest("ghost.csv")'
        )
        p = compile_source(src, files={})
        with pytest.raises(CompileError, match="no file"):
            p.run()

    def test_constructor_sugar_without_new(self):
        from repro.lang import parse_expression
        from repro.lang import ast as A

        e = parse_expression('PvWattsRequest("f.csv")')
        assert isinstance(e, A.NewTuple) and e.table == "PvWattsRequest"

    def test_sugar_with_named_brackets(self):
        from repro.lang import parse_expression
        from repro.lang import ast as A

        e = parse_expression("Ship() [frame=1; x=2]")
        assert isinstance(e, A.NewTuple)
        assert e.named == (("frame", A.Literal(1, e.named[0][1].line)),
                           ("x", A.Literal(2, e.named[1][1].line)))

    def test_float_fields_parse(self):
        src = (
            "table Reading(int id, double value) orderby (Data, seq id)\n"
            "table ReadingRequest(String filename) orderby (Req)\n"
            "order Req < Data\n"
            'put ReadingRequest("r.csv")\n'
            "foreach (Reading r) { println(r.value * 2) }"
        )
        p = compile_source(src, files={"r.csv": b"1,2.5\n2,0.25\n"})
        r = p.run()
        assert r.output == ["5.0", "0.5"]
        store = r.database.store("Reading")
        assert {t.value for t in store.scan()} == {2.5, 0.25}
