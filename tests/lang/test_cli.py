"""Tests for the `python -m repro.lang` command-line runner."""

from __future__ import annotations

import pytest

from repro.lang.__main__ import main

SHIP = """
table Ship(int frame -> int x, int y, int dx, int dy) orderby (Int, seq frame)
put new Ship(0, 10, 10, 150, 0);
foreach (Ship s) {
  if (s.x < 400) { put new Ship(s.frame+1, s.x+150, s.y, s.dx, s.dy) }
  println("x=" + s.x)
}
"""

BAD_SYNTAX = "table ???"

PAST_PUT = """
table T(int t) orderby (Int, seq t)
put new T(5)
foreach (T x) { put new T(x.t - 1) }
"""


@pytest.fixture
def ship_file(tmp_path):
    f = tmp_path / "ship.jstar"
    f.write_text(SHIP)
    return str(f)


class TestCli:
    def test_run_prints_output(self, ship_file, capsys):
        assert main([ship_file]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == ["x=10", "x=160", "x=310", "x=460"]

    def test_parallel_flags(self, ship_file, capsys):
        assert main([ship_file, "--threads", "4", "--no-delta", "Ship"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 4

    def test_check_mode_proved(self, ship_file, capsys):
        assert main([ship_file, "--check"]) == 0
        assert "proved" in capsys.readouterr().out

    def test_check_mode_prover_selection(self, ship_file, capsys):
        assert main([ship_file, "--check", "--prover", "simplex"]) == 0
        assert main([ship_file, "--check", "--prover", "cross-check"]) == 0
        del capsys

    def test_check_mode_failure_exit_code(self, tmp_path, capsys):
        f = tmp_path / "bad.jstar"
        f.write_text(PAST_PUT)
        assert main([str(f), "--check"]) == 2
        assert "UNPROVED" in capsys.readouterr().out

    def test_syntax_error_exit_code(self, tmp_path, capsys):
        f = tmp_path / "syntax.jstar"
        f.write_text(BAD_SYNTAX)
        assert main([str(f)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/x.jstar"]) == 1
        assert "error" in capsys.readouterr().err

    def test_runtime_error_exit_code(self, tmp_path, capsys):
        f = tmp_path / "runtime.jstar"
        f.write_text(PAST_PUT)
        assert main([str(f)]) == 1  # CausalityError at runtime
        assert "past" in capsys.readouterr().err

    def test_report_flag(self, ship_file, capsys):
        assert main([ship_file, "--threads", "2", "--report"]) == 0
        err = capsys.readouterr().err
        assert "virtual machine" in err

    def test_graph_flag(self, ship_file, capsys):
        assert main([ship_file, "--graph"]) == 0
        assert "Ship ==>" in capsys.readouterr().out
