"""Compilation + execution tests for textual JStar programs, including
the paper's Fig 4 and Fig 5 listings near-verbatim."""

from __future__ import annotations

import pytest

from repro.apps.baselines.shortestpath_base import dijkstra_baseline
from repro.apps.ship import FIG2_TRACE
from repro.core import ExecOptions
from repro.core.errors import StratificationWarning
from repro.lang import CompileError, compile_source


class TestBasics:
    def test_ship_program_matches_fig2(self):
        p = compile_source(
            """
            table Ship(int frame -> int x, int y, int dx, int dy)
                orderby (Int, seq frame)
            put new Ship(0, 10, 10, 150, 0);
            foreach (Ship s) {
              if (s.dx > 0) {
                if (s.x + s.dx >= 460) { put new Ship(s.frame+1, 460, s.y, 0, 10) }
                else { put new Ship(s.frame+1, s.x + s.dx, s.y, s.dx, s.dy) }
              } else { if (s.dy > 0) {
                if (s.y + s.dy >= 30) { put new Ship(s.frame+1, s.x, 30, -150, 0) }
                else { put new Ship(s.frame+1, s.x, s.y + s.dy, s.dx, s.dy) }
              } else {
                if (s.x + s.dx > 10) { put new Ship(s.frame+1, s.x + s.dx, s.y, s.dx, s.dy) }
              } }
            }
            """
        )
        r = p.run()
        trace = sorted(tuple(t.values) for t in r.database.store("Ship").scan())
        assert trace == FIG2_TRACE

    def test_defaults_in_named_constructor(self):
        # §3: "use default values for frame and dy"
        p = compile_source(
            """
            table Ship(int frame -> int x, int y, int dx, int dy)
                orderby (Int, seq frame)
            put new Ship() [x=10; dx=150; y=10]
            """
        )
        r = p.run()
        (ship,) = r.database.store("Ship").scan()
        assert ship.values == (0, 10, 10, 150, 0)

    def test_string_concat_like_java(self):
        p = compile_source(
            """
            table T(int x) orderby (A, seq x)
            put new T(3)
            foreach (T t) { println("x=" + t.x + "!") }
            """
        )
        assert p.run().output == ["x=3!"]

    def test_java_integer_division(self):
        p = compile_source(
            """
            table T(int x) orderby (A, seq x)
            put new T(7)
            foreach (T t) { println(t.x / 2)  println((0 - t.x) / 2) }
            """
        )
        assert p.run().output == ["3", "-3"]  # truncation toward zero

    def test_val_bindings_and_arith(self):
        p = compile_source(
            """
            table T(int x) orderby (A, seq x)
            put new T(5)
            foreach (T t) {
              val y = t.x * 2 + 1
              val z = y % 4
              println(y)  println(z)  println(y != z)  println(!(y < z))
            }
            """
        )
        assert p.run().output == ["11", "3", "True", "True"]

    def test_statistics_reducer_box(self):
        # Fig 4's idiom: val stats = new Statistics(); stats += v; stats.mean
        p = compile_source(
            """
            table Data(int g, int v) orderby (A)
            table Go(int g) orderby (B)
            order A < B;
            put new Data(0, 2)  put new Data(0, 4)  put new Data(0, 9)
            put new Go(0)
            foreach (Go g) {
              val stats = new Statistics()
              for (d : get Data(g.g)) { stats += d.v }
              println(stats.mean)  println(stats.count)
            }
            """
        )
        assert p.run().output == ["5.0", "3"]

    def test_unknown_table_in_put(self):
        src = "table T(int x)\nput new T(1)\nforeach (T t) { put new U(1) }"
        with pytest.raises(CompileError, match="unknown table"):
            compile_source(src).run()

    def test_unknown_variable(self):
        p = compile_source("table T(int x) orderby (A, seq x)\nput new T(1)\nforeach (T t) { println(nope) }")
        with pytest.raises(CompileError, match="unknown variable"):
            p.run()

    def test_field_access_on_null(self):
        p = compile_source(
            """
            table T(int k -> int v) orderby (A, seq k)
            put new T(1, 5)
            foreach (T t) {
              val missing = get uniq? T(99)
              println(missing.v)
            }
            """
        )
        # the unbounded get uniq? also trips the dynamic causality
        # checker (warn mode) before the null access raises
        with pytest.warns(StratificationWarning):
            with pytest.raises(CompileError, match="null"):
                p.run()

    def test_plus_assign_requires_reducer(self):
        p = compile_source(
            """
            table T(int x) orderby (A, seq x)
            put new T(1)
            foreach (T t) { val s = 0  s += t.x }
            """
        )
        with pytest.raises(CompileError, match="needs a reducer"):
            p.run()


class TestFig4PvWatts:
    """Fig 4 near-verbatim (the CSV read-loop is replaced by initial
    puts — the paper elides its body as '...code to read...' anyway)."""

    SRC = """
        table PvWatts(int year, int month, int day, String hour, int power)
            orderby (PvWatts);
        table SumMonth(int year, int month) orderby (SumMonth);
        order Req < PvWatts < SumMonth;

        foreach (PvWatts pv) { put new SumMonth(pv.year, pv.month); }
        foreach (SumMonth s) {
          val stats = new Statistics()
          for (record : get PvWatts(s.year, s.month)) {
            stats += record.power
          }
          println(s.year + "/" + s.month + ": " + stats.mean)
        }
    """

    def _program(self):
        p = compile_source(self.SRC, "fig4")
        PvWatts = p.tables["PvWatts"]
        data = {(2012, 1): [100, 200], (2012, 2): [50, 150, 100]}
        for (y, m), powers in data.items():
            for d, power in enumerate(powers):
                p.put(PvWatts.new(y, m, d + 1, "12:00", power))
        return p

    def test_monthly_means(self):
        r = self._program().run()
        assert sorted(r.output) == ["2012/1: 150.0", "2012/2: 100.0"]

    def test_set_semantics_dedups_summonth(self):
        r = self._program().run()
        assert r.table_sizes["SumMonth"] == 2

    def test_rules_prove_with_order_declared(self):
        rep = self._program().check_causality()
        assert rep.all_proved, rep.summary()

    def test_strategy_independent(self):
        seq = self._program().run().output
        par = self._program().run(ExecOptions(strategy="forkjoin", threads=8)).output
        assert sorted(seq) == sorted(par)


class TestFig5Dijkstra:
    """Fig 5 near-verbatim (graph injected as Edge puts; the paper's
    generation code is elided there too)."""

    SRC = """
        table Edge(int src, int dst, int value) orderby (Edge);
        /** Estimated shortest distance to vertex. */
        table Estimate(int vertex, int distance) orderby (Int, seq distance, Estimate);
        put new Estimate(0, 0); // Set the origin.
        /** Final shortest-path to each vertex. */
        table Done(int vertex -> int distance) orderby (Int, seq distance, Done)
        order Edge < Int;
        order Estimate < Done;

        /**
         * This implements Dijkstra's shortest path algorithm.
         * The Estimate tuples are ordered by increasing distance.
         */
        foreach (Estimate dist) {
          if (get uniq? Done(dist.vertex, [distance < dist.distance]) == null) {
            put new Done(dist.vertex, dist.distance);
            for (edge : get Edge(dist.vertex)) {
              if (get uniq? Done(edge.dst) == null) {
                put new Estimate(edge.dst, dist.distance + edge.value);
              }
            }
          }
        }
    """

    def _run(self, edges, n):
        p = compile_source(self.SRC, "fig5")
        Edge = p.tables["Edge"]
        for s, d, w in edges:
            p.put(Edge.new(s, d, w))
        # the unbounded get uniq? Done(edge.dst) is exactly the query §4
        # cannot verify — warn mode flags it at runtime (see
        # repro.apps.shortestpath's module docstring)
        with pytest.warns(StratificationWarning, match="no statically bounded"):
            r = p.run(ExecOptions(causality_check="warn"))
        return {t.vertex: t.distance for t in r.database.store("Done").scan()}

    def test_small_graph(self):
        edges = [(0, 1, 4), (0, 2, 1), (2, 1, 2), (1, 3, 1), (2, 3, 5)]
        dist = self._run(edges, 4)
        assert dist == {0: 0, 2: 1, 1: 3, 3: 4}

    def test_random_graph_matches_baseline(self):
        from repro.apps.shortestpath import GraphSpec, make_graph

        spec = GraphSpec(n_vertices=60, extra_edges=120, seed=4)
        edges = make_graph(spec)
        assert self._run(edges, spec.n_vertices) == dijkstra_baseline(
            edges, spec.n_vertices
        )

    def test_delta_tree_is_the_priority_queue(self):
        """No queue appears in the source; ordering falls out of the
        Estimate orderby — check Done tuples complete in distance order
        by replaying with trace prints."""
        edges = [(0, 1, 2), (1, 2, 2), (0, 2, 5)]
        p = compile_source(self.SRC.replace(
            "put new Done(dist.vertex, dist.distance);",
            'println("done " + dist.vertex + " @ " + dist.distance)\n'
            "put new Done(dist.vertex, dist.distance);",
        ))
        Edge = p.tables["Edge"]
        for s, d, w in edges:
            p.put(Edge.new(s, d, w))
        with pytest.warns(StratificationWarning, match="no statically bounded"):
            r = p.run()
        dists = [int(line.rsplit("@", 1)[1]) for line in r.output]
        assert dists == sorted(dists)
