"""Tests for automatic causality-metadata extraction from textual rules
(the paper's compiler-to-SMT pipeline, §4)."""

from __future__ import annotations

import warnings

import pytest

from repro.core import StratificationWarning
from repro.lang import compile_source
from repro.solver import check_program
from repro.solver.obligations import RuleMeta

SHIP_HEADER = """
table Ship(int frame -> int x, int y, int dx, int dy) orderby (Int, seq frame)
put new Ship(0, 10, 10, 150, 0)
"""


def rule_of(src: str):
    p = compile_source(src)
    return p, p.rules[-1]


class TestExtraction:
    def test_simple_put_gets_meta_and_proves(self):
        p, rule = rule_of(
            SHIP_HEADER + "foreach (Ship s) { put new Ship(s.frame+1, s.x, s.y, s.dx, s.dy) }"
        )
        assert isinstance(rule.meta, RuleMeta)
        assert check_program(p).all_proved

    def test_put_into_past_fails_statically(self):
        p, rule = rule_of(
            SHIP_HEADER + "foreach (Ship s) { put new Ship(s.frame-1, s.x, s.y, s.dx, s.dy) }"
        )
        assert isinstance(rule.meta, RuleMeta)
        with pytest.warns(StratificationWarning):
            rep = check_program(p)
        assert rep.findings[-1].status == "failed"

    def test_branch_conditions_used(self):
        # provable ONLY with the if-condition as hypothesis
        p, rule = rule_of(
            SHIP_HEADER
            + "foreach (Ship s) { if (s.x >= s.frame) { put new Ship(s.x+1, 0, 0, 0, 0) } }"
        )
        assert check_program(p).all_proved

    def test_else_branch_negation_used(self):
        p, _ = rule_of(
            SHIP_HEADER
            + """foreach (Ship s) {
                if (s.frame > s.x) { put new Ship(s.frame+1, 0,0,0,0) }
                else { put new Ship(s.x+1, 0,0,0,0) }
              }"""
        )
        # else-branch knows frame <= x, so putting at x+1 is in the future
        assert check_program(p).all_proved

    def test_opaque_condition_dropped_soundly(self):
        # the condition can't be translated (string compare), but the
        # put is provable without it
        p, rule = rule_of(
            SHIP_HEADER
            + """foreach (Ship s) {
                if ("a" == "b") { put new Ship(s.frame+1, 0,0,0,0) }
              }"""
        )
        assert isinstance(rule.meta, RuleMeta)
        assert check_program(p).all_proved

    def test_val_bindings_inline(self):
        p, _ = rule_of(
            SHIP_HEADER
            + """foreach (Ship s) {
                val next = s.frame + 2
                put new Ship(next, 0,0,0,0)
              }"""
        )
        assert check_program(p).all_proved

    def test_defaulted_fields_become_constants(self):
        # new T() [v=...] leaves t to default 0: put at t=0 from a
        # trigger at t>=1 violates causality and the prover sees it
        src = """
        table T(int t -> int v) orderby (Int, seq t)
        put new T(1, 0)
        foreach (T x) { put new T() [v=5] }
        """
        p, rule = rule_of(src)
        assert isinstance(rule.meta, RuleMeta)
        with pytest.warns(StratificationWarning):
            rep = check_program(p)
        assert rep.findings[-1].status == "failed"

    def test_negative_query_bounded_by_predicate_proves(self):
        # Fig 5's guard: [distance < dist.distance] bounds the region
        src = """
        table Estimate(int vertex, int distance) orderby (Int, seq distance, Estimate)
        table Done(int vertex -> int distance) orderby (Int, seq distance, Done)
        order Estimate < Done
        put new Estimate(0, 0)
        foreach (Estimate dist) {
          if (get uniq? Done(dist.vertex, [distance < dist.distance]) == null) {
            put new Done(dist.vertex, dist.distance)
          }
        }
        """
        p, rule = rule_of(src)
        assert isinstance(rule.meta, RuleMeta)
        rep = check_program(p)
        assert rep.all_proved, rep.summary()

    def test_unbounded_negative_query_fails_like_paper(self):
        # Fig 5's second guard (get uniq? Done(edge.dst)) has no bound:
        # the prover must NOT claim it proved
        src = """
        table Edge(int src, int dst, int value) orderby (Edge)
        table Estimate(int vertex, int distance) orderby (Int, seq distance, Estimate)
        table Done(int vertex -> int distance) orderby (Int, seq distance, Done)
        order Edge < Int
        order Estimate < Done
        put new Estimate(0, 0)
        foreach (Estimate dist) {
          for (edge : get Edge(dist.vertex)) {
            if (get uniq? Done(edge.dst) == null) {
              put new Estimate(edge.dst, dist.distance + edge.value)
            }
          }
        }
        """
        p, rule = rule_of(src)
        assert isinstance(rule.meta, RuleMeta)
        with pytest.warns(StratificationWarning):
            rep = check_program(p)
        assert rep.findings[-1].status == "failed"

    def test_loop_var_constrained_by_invariant(self):
        """The Estimate put above IS provable given the Edge invariant
        value >= 0 — exactly the §4 invariant workflow."""
        src = """
        table Edge(int src, int dst, int value) orderby (Edge)
        table Estimate(int vertex, int distance) orderby (Int, seq distance, Estimate)
        order Edge < Int
        put new Estimate(0, 0)
        foreach (Estimate dist) {
          for (edge : get Edge(dist.vertex)) {
            put new Estimate(edge.dst, dist.distance + edge.value)
          }
        }
        """
        p, rule = rule_of(src)
        with pytest.warns(StratificationWarning, match="unproved"):
            rep_no_inv = check_program(p)
        put_obs = [
            o
            for f in rep_no_inv.findings
            for o in f.obligations
            if o.kind == "put-causality"
        ]
        assert not put_obs[0].proved  # unprovable without the invariant
        rep_inv = check_program(
            p, invariants={"Edge": lambda f: [f["value"] >= 0]}
        )
        put_obs = [
            o
            for f in rep_inv.findings
            for o in f.obligations
            if o.kind == "put-causality"
        ]
        assert put_obs[0].proved

    def test_queries_in_for_headers_registered(self):
        src = """
        table A(int t) orderby (Int, seq t)
        put new A(0)
        foreach (A a) {
          for (x : get A(a.t + 1)) { println(x.t) }
        }
        """
        p, rule = rule_of(src)
        assert isinstance(rule.meta, RuleMeta)
        queries = [q for b in rule.meta.branches for q in b.queries]
        assert len(queries) == 1  # positive query registered

    def test_min_query_registered_as_aggregate(self):
        from repro.core.query import QueryKind

        src = """
        table A(int t) orderby (Int, seq t)
        put new A(1)
        foreach (A a) {
          val m = get min A([t < a.t])
          println(m == null)
        }
        """
        p, rule = rule_of(src)
        queries = [q for b in rule.meta.branches for q in b.queries]
        assert queries[0].kind is QueryKind.AGGREGATE
        rep = check_program(p)
        assert rep.all_proved, rep.summary()
