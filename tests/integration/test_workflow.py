"""End-to-end tests of the paper's §2 workflow claims: parallelism and
data-structure decisions change *only* ExecOptions, never the program;
plus cross-cutting behaviour (stats + solver + engine together)."""

from __future__ import annotations

import warnings

import pytest

from repro.apps.pvwatts import (
    array_of_hashsets_store,
    build_pvwatts_program,
    hash_index_store,
    month_means_from_output,
)
from repro.core import ExecOptions, Program, StratificationWarning
from repro.solver import check_program
from repro.stats import execution_graph
from repro.viz import graph_ascii, to_dot


class TestStageSeparation:
    """One program object, many architecture configurations."""

    CONFIGS = [
        ExecOptions(),
        ExecOptions(no_delta=frozenset({"PvWatts"})),
        ExecOptions(strategy="forkjoin", threads=8, no_delta=frozenset({"PvWatts"})),
        ExecOptions(
            strategy="forkjoin",
            threads=4,
            no_delta=frozenset({"PvWatts"}),
            store_overrides={"PvWatts": array_of_hashsets_store()},
        ),
        ExecOptions(
            no_delta=frozenset({"PvWatts"}),
            no_gamma=frozenset({"SumMonth"}),
            store_overrides={"PvWatts": hash_index_store(concurrent=False)},
        ),
    ]

    def test_same_source_every_configuration(self, pvwatts_csv):
        results = []
        for cfg in self.CONFIGS:
            handles = build_pvwatts_program({"f.csv": pvwatts_csv}, "f.csv", n_readers=2)
            r = handles.program.run(cfg)
            results.append(
                {k: round(v, 3) for k, v in month_means_from_output(r.output).items()}
            )
        assert all(res == results[0] for res in results)

    def test_configurations_differ_in_time_not_answer(self, pvwatts_csv):
        handles = build_pvwatts_program({"f.csv": pvwatts_csv}, "f.csv")
        plain = handles.program.run(self.CONFIGS[0])
        opt = handles.program.run(self.CONFIGS[1])
        assert plain.virtual_time != opt.virtual_time


class TestProfileThenDecide:
    """§2 stages 2-4: run, inspect stats, choose a strategy."""

    def test_stats_identify_hot_table(self, pvwatts_csv):
        handles = build_pvwatts_program({"f.csv": pvwatts_csv}, "f.csv")
        r = handles.program.run()
        hot = max(r.stats.tables.items(), key=lambda kv: kv[1].puts)[0]
        assert hot == "PvWatts"  # exactly the table the paper optimises

    def test_execution_graph_renders(self, pvwatts_csv):
        handles = build_pvwatts_program({"f.csv": pvwatts_csv}, "f.csv")
        r = handles.program.run(ExecOptions(no_delta=frozenset({"PvWatts"})))
        g = execution_graph(r.stats)
        dot = to_dot(g)
        txt = graph_ascii(g)
        assert "PvWatts" in dot and "SumMonth" in dot
        assert "==>" in txt

    def test_machine_report_phases(self, pvwatts_csv):
        handles = build_pvwatts_program({"f.csv": pvwatts_csv}, "f.csv")
        r = handles.program.run(
            ExecOptions(strategy="forkjoin", threads=8, no_delta=frozenset({"PvWatts"}))
        )
        rep = r.report
        assert rep.busy > 0 and rep.elapsed >= rep.busy / rep.n_cores


class TestStaticAndDynamicChecksAgree:
    def test_statically_failing_program_also_warns_dynamically(self, pvwatts_csv):
        """§6.1: dropping the order declaration fails the prover AND
        triggers the runtime stratification warning."""
        handles = build_pvwatts_program(
            {"f.csv": pvwatts_csv}, "f.csv", declare_order=False
        )
        with pytest.warns(StratificationWarning):
            check_program(handles.program)
        with pytest.warns(StratificationWarning):
            handles.program.run()

    def test_proved_program_runs_clean(self, pvwatts_csv):
        handles = build_pvwatts_program({"f.csv": pvwatts_csv}, "f.csv")
        check_program(handles.program, strict=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", StratificationWarning)
            handles.program.run()


class TestEventDrivenStyle:
    """§3: external input tuples enter through the Delta set and trigger
    rules — the event-driven idiom."""

    def test_inputs_trigger_rules_in_causal_order(self):
        p = Program("events")
        Event = p.table("Event", "int at, str what", orderby=("Int", "seq at"))
        log: list[str] = []

        @p.foreach(Event)
        def handle(ctx, e):
            log.append(f"{e.at}:{e.what}")

        # deliberately out of order: the Delta tree sequences them
        p.put(Event.new(3, "c"))
        p.put(Event.new(1, "a"))
        p.put(Event.new(2, "b"))
        p.run()
        assert log == ["1:a", "2:b", "3:c"]
