"""Differential harness for the codegen execution tier.

``execution="codegen"`` is a pure performance feature: the §1.3
determinism contract demands it change *time*, never results.  This
harness runs every example program with the codegen tier armed and
asserts byte-identical ``output_text()`` and equal ``table_sizes``
against the sequential scalar reference.

The codegen tier differs from the columnar one in one visible way:
generated rule bodies emit no trace events, so ``trace=True``
*downgrades* the whole run to the scalar path (registry row) instead of
running generated code untraced.  The traced legs here therefore assert
the downgrade note *and* full trace parity — the downgraded run is the
scalar run, byte for byte, trace events included.

Extra legs beyond the 5-app matrix:

* a program whose hot rule queries with an opaque ``where`` lambda —
  codegen refuses that body (a lambda can close over anything), keeps
  the rule scalar with a ``kept scalar`` note, and results must still
  be identical; the other rules in the same program fire generated;
* a 20-seed chaos fuzz leg: chaos is not sequential, so the codegen
  knob must downgrade itself with a note and the run must still match
  the reference byte for byte;
* report legs: the per-rule fired-counts notes and the
  ``dump_generated_source`` inspection hook advertised by them.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.apps.median import run_median
from repro.apps.pvwatts import run_pvwatts
from repro.apps.sensors import run_sensors
from repro.apps.ship import run_ship
from repro.apps.shortestpath import GraphSpec, run_shortestpath
from repro.core import ExecOptions, Program
from repro.csvio.synth import generate_csv_bytes
from repro.plan.codegen import dump_generated_source
from repro.solver import RuleMeta
from repro.stats.report import run_report
from repro.trace import format_divergence, trace_diff

APPS = ["ship", "pvwatts", "shortestpath", "sensors", "median"]


@pytest.fixture(scope="module", autouse=True)
def _dump_generated_sources_for_ci():
    """With CODEGEN_DUMP_DIR set (the CI codegen job), write every
    generated driver module to disk after the suite — on failure the
    directory is uploaded as an artifact, so a differential break
    ships the exact code that diverged."""
    yield
    out = os.environ.get("CODEGEN_DUMP_DIR")
    if not out:
        return
    from repro.plan.codegen import all_generated_sources

    os.makedirs(out, exist_ok=True)
    for qualname, src in all_generated_sources().items():
        safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in qualname)
        with open(os.path.join(out, f"{safe}.py"), "w") as f:
            f.write(src)


@pytest.fixture(scope="module")
def small_csv() -> bytes:
    lines = generate_csv_bytes(n_years=1).split(b"\n")
    return b"\n".join(lines[:1500]) + b"\n"


@pytest.fixture(scope="module")
def apps(small_csv):
    vals = np.random.default_rng(9).random(500)
    spec = GraphSpec(n_vertices=90, extra_edges=140, seed=3)
    return {
        "ship": lambda o: run_ship(o),
        "pvwatts": lambda o: run_pvwatts(small_csv, o, n_readers=2),
        "shortestpath": lambda o: run_shortestpath(spec, o, n_gen_tasks=4),
        "sensors": lambda o: run_sensors(n_ticks=12, n_sensors=4, options=o),
        "median": lambda o: run_median(vals, o, n_regions=6),
    }


@pytest.fixture(scope="module")
def references(apps):
    """The sequential scalar runs every codegen run must match."""
    return {name: run(ExecOptions()) for name, run in apps.items()}


@pytest.fixture(scope="module")
def traced_references(apps):
    return {name: run(ExecOptions(trace=True)) for name, run in apps.items()}


def _assert_results(got, ref, label: str) -> None:
    assert got.output_text() == ref.output_text(), f"output diverged: {label}"
    assert got.table_sizes == ref.table_sizes, f"table sizes diverged: {label}"


def _assert_same(got, ref, label: str) -> None:
    _assert_results(got, ref, label)
    d = trace_diff(ref.trace, got.trace)
    assert d is None, f"trace diverged: {label}: {format_divergence(d)}"


@pytest.mark.parametrize("app", APPS)
def test_codegen_matches_sequential_reference(app, apps, references):
    got = apps[app](ExecOptions(execution="codegen"))
    _assert_results(got, references[app], f"{app} under codegen")


@pytest.mark.parametrize("app", APPS)
def test_codegen_fast_path_matches_reference(app, apps, references):
    """metering="off" + codegen — the benchmark configuration.  The
    metering knob is moot (codegen forces it off with a note) but the
    leg pins that down too."""
    got = apps[app](ExecOptions(metering="off", execution="codegen"))
    _assert_results(got, references[app], f"{app} under codegen fast path")


@pytest.mark.parametrize("app", APPS)
def test_trace_downgrades_codegen_to_scalar(app, apps, traced_references):
    """trace=True + codegen = the scalar run, trace events included."""
    got = apps[app](ExecOptions(trace=True, execution="codegen"))
    _assert_same(got, traced_references[app], f"{app} traced under codegen")
    assert any(
        "execution='codegen' ignored" in n and "trace" in n
        for n in got.stats.notes
    ), got.stats.notes


# -- opaque-where fallback ---------------------------------------------------


def _build_where_program() -> Program:
    """A program whose hot rule queries with an opaque ``where`` lambda:
    codegen refuses the body (``where`` predicates stay scalar) while
    the sibling rules compile and fire generated."""
    p = Program("wherefall")
    Src = p.table("Src", "int k", orderby=("Src",))
    Item = p.table("Item", "int k, int v", orderby=("Item",))
    Probe = p.table("Probe", "int k", orderby=("Probe",))
    p.order("Src", "Item")
    p.order("Item", "Probe")

    @p.foreach(Src, unsafe=True)
    def seed(ctx, s):
        for i in range(12):
            ctx.put(Item.new(s.k * 100 + i, i * i))
        ctx.put(Probe.new(s.k))

    meta = RuleMeta(Probe)
    t = meta.trigger
    meta.branch().query(Item, k=t["k"])

    @p.foreach(Probe, meta=meta, assume_stratified=True)
    def check(ctx, probe):
        evens = ctx.get(Item, where=lambda it: it.v % 2 == 0)
        ctx.println(f"probe {probe.k}: {len(evens)} even items")

    @p.foreach(Item)
    def loud(ctx, item):
        if item.v > 81:
            ctx.println(f"large item {item.k}")

    for k in range(4):
        p.put(Src.new(k))
    return p


def test_opaque_where_keeps_rule_scalar():
    ref = _build_where_program().run(ExecOptions())
    got = _build_where_program().run(ExecOptions(execution="codegen"))
    _assert_results(got, ref, "where-lambda program under codegen")
    notes = got.stats.notes
    assert any(
        "codegen: rule 'check' kept scalar" in n for n in notes
    ), notes
    # the refused rule fired scalar inside the codegen tier...
    assert any(
        "rule 'check' fired 0 generated / 4 scalar" in n for n in notes
    ), notes
    # ...while its siblings fired through generated drivers
    assert any(
        "rule 'seed' fired 4 generated / 0 scalar" in n for n in notes
    ), notes


def test_run_report_renders_codegen_notes(apps):
    got = apps["shortestpath"](ExecOptions(execution="codegen"))
    report = run_report(got)
    assert "codegen: rule 'dijkstra' fired" in report
    assert "rule(s) compiled" in report
    assert "dump_generated_source" in report


def test_dump_generated_source_hook():
    p = _build_where_program()
    seed, check = p.rules[0], p.rules[1]
    # nothing compiled yet for a fresh body that never ran under codegen
    p.run(ExecOptions(execution="codegen"))
    src = dump_generated_source(seed)
    assert src is not None and "_cg_make" in src and "_cg_driver" in src
    # refused rules have no generated source
    assert dump_generated_source(check) is None
    # the hook also accepts the raw body function
    assert dump_generated_source(seed.body) == src


# -- chaos fuzz: the knob downgrades, results stay identical -----------------


@pytest.mark.parametrize("seed", range(20))
def test_chaos_fuzz_codegen_downgrades(seed, apps, traced_references):
    got = apps["shortestpath"](
        ExecOptions(
            strategy="chaos",
            chaos_seed=seed,
            metering="off",
            trace=True,
            execution="codegen",
        )
    )
    _assert_same(
        got, traced_references["shortestpath"], f"chaos seed {seed} codegen"
    )
    assert any(
        "execution='codegen' ignored" in n for n in got.stats.notes
    ), got.stats.notes
