"""The language's headline guarantee (§1.3): program output is
independent of the parallelism strategy.  Every case study under every
strategy must produce the same answer — "this stage can change the
efficiency of the program but cannot change its correctness" (§2).
"""

from __future__ import annotations

import pytest

from repro.apps.matmul import random_matrix, run_matmul
from repro.apps.median import median_from_result, random_doubles, run_median
from repro.apps.pvwatts import month_means_from_output, run_pvwatts
from repro.apps.ship import FIG2_TRACE, run_ship, ship_trace
from repro.apps.shortestpath import (
    GraphSpec,
    distances_from_result,
    recommended_options,
    run_shortestpath,
)
from repro.core import ExecOptions

STRATEGIES = [
    pytest.param(("sequential", 1), id="sequential"),
    pytest.param(("forkjoin", 1), id="forkjoin-1"),
    pytest.param(("forkjoin", 8), id="forkjoin-8"),
    pytest.param(("threads", 3), id="threads-3"),
]


def opts(strategy_threads) -> ExecOptions:
    s, t = strategy_threads
    return ExecOptions(strategy=s, threads=t)


@pytest.mark.parametrize("st", STRATEGIES)
class TestAllAppsAllStrategies:
    def test_ship(self, st):
        assert ship_trace(run_ship(opts(st))) == FIG2_TRACE

    def test_pvwatts(self, st, pvwatts_csv):
        r = run_pvwatts(
            pvwatts_csv, opts(st).with_(no_delta=frozenset({"PvWatts"})), n_readers=4
        )
        means = month_means_from_output(r.output)
        ref = month_means_from_output(
            run_pvwatts(pvwatts_csv, ExecOptions(no_delta=frozenset({"PvWatts"}))).output
        )
        assert {k: round(v, 3) for k, v in means.items()} == {
            k: round(v, 3) for k, v in ref.items()
        }

    def test_matmul(self, st):
        a, b = random_matrix(16, 1), random_matrix(16, 2)
        _, c = run_matmul(a, b, opts(st).with_(no_delta=frozenset({"Matrix"})), "native")
        assert (c == a @ b).all()

    def test_shortestpath(self, st):
        spec = GraphSpec(n_vertices=120, extra_edges=240, seed=1)
        ref = distances_from_result(run_shortestpath(spec))
        got = distances_from_result(
            run_shortestpath(spec, recommended_options(opts(st)))
        )
        assert got == ref

    def test_median(self, st):
        vals = random_doubles(3000, seed=4)
        ref = median_from_result(run_median(vals))
        assert median_from_result(run_median(vals, opts(st))) == ref


class TestOutputOrderCaveat:
    """§2: "input-output behaviour is preserved, except that output
    tuples may be produced in a different order" — with different
    reader counts the *set* of output lines is identical even when the
    order differs."""

    def test_pvwatts_reader_counts(self, pvwatts_csv):
        base = ExecOptions(no_delta=frozenset({"PvWatts"}))
        r1 = run_pvwatts(pvwatts_csv, base, n_readers=1)
        r8 = run_pvwatts(pvwatts_csv, base, n_readers=8)
        assert sorted(r1.output) == sorted(r8.output)
