"""Differential harness for the zero-overhead hot path.

``metering="off"``, the compiled plan cache, and step coalescing are
pure performance features: §1.3's determinism contract demands they
change *time*, never results.  This harness runs every example program
under the fast-path matrix

    {sequential, forkjoin×2, threads×2, chaos} × metering="off"
    (plan cache on — the default — plus one plan_cache=False probe)

and asserts byte-identical ``output_text()``, equal ``table_sizes``,
and zero divergent semantic trace events (``trace_diff``) against the
fully metered sequential reference.  Coalesced runs change step counts
by design, so they are compared on output/table sizes against the
uncoalesced reference and on full traces *among themselves*.  A final
20-seed chaos fuzz leg replays the schedule-permutation matrix with
metering off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.median import run_median
from repro.apps.pvwatts import run_pvwatts
from repro.apps.sensors import run_sensors
from repro.apps.ship import run_ship
from repro.apps.shortestpath import GraphSpec, run_shortestpath
from repro.core import ExecOptions
from repro.csvio.synth import generate_csv_bytes
from repro.trace import format_divergence, trace_diff

# (strategy, threads-or-seed, plan_cache)
FAST_CONFIGS = [
    ("sequential", 1, True),
    ("sequential", 1, False),
    ("forkjoin", 2, True),
    ("threads", 2, True),
    ("chaos", 1, True),
]

MATRIX = [
    pytest.param(c, id=f"{c[0]}-{c[1]}{'' if c[2] else '-noplan'}")
    for c in FAST_CONFIGS
]


def _fast_options(config) -> ExecOptions:
    strategy, n, plan = config
    kw = dict(metering="off", plan_cache=plan, trace=True)
    if strategy == "chaos":
        return ExecOptions(strategy="chaos", chaos_seed=n, **kw)
    return ExecOptions(strategy=strategy, threads=n, **kw)


@pytest.fixture(scope="module")
def small_csv() -> bytes:
    lines = generate_csv_bytes(n_years=1).split(b"\n")
    return b"\n".join(lines[:1500]) + b"\n"


def _apps(small_csv):
    vals = np.random.default_rng(9).random(500)
    spec = GraphSpec(n_vertices=90, extra_edges=140, seed=3)
    return {
        "ship": lambda o: run_ship(o),
        "pvwatts": lambda o: run_pvwatts(small_csv, o, n_readers=2),
        "shortestpath": lambda o: run_shortestpath(spec, o, n_gen_tasks=4),
        "sensors": lambda o: run_sensors(n_ticks=12, n_sensors=4, options=o),
        "median": lambda o: run_median(vals, o, n_regions=6),
    }


@pytest.fixture(scope="module")
def apps(small_csv):
    return _apps(small_csv)


@pytest.fixture(scope="module")
def references(apps):
    """The fully metered sequential runs every fast config must match."""
    return {name: run(ExecOptions(trace=True)) for name, run in apps.items()}


def _assert_same(got, ref, label: str) -> None:
    assert got.output_text() == ref.output_text(), f"output diverged: {label}"
    assert got.table_sizes == ref.table_sizes, f"table sizes diverged: {label}"
    d = trace_diff(ref.trace, got.trace)
    assert d is None, f"trace diverged: {label}: {format_divergence(d)}"


@pytest.mark.parametrize("config", MATRIX)
@pytest.mark.parametrize("app", ["ship", "pvwatts", "shortestpath", "sensors", "median"])
def test_fast_path_matches_metered_reference(app, config, apps, references):
    got = apps[app](_fast_options(config))
    _assert_same(got, references[app], f"{app} under {config}")


@pytest.mark.parametrize("app", ["ship", "pvwatts", "shortestpath", "sensors", "median"])
def test_coalesced_steps_same_results(app, apps, references):
    """Coalescing merges trigger-less classes into the next step, so
    step counts (and step trace events) legitimately differ from the
    uncoalesced reference — but outputs and table sizes must not, and
    the coalesced runs must agree with each other event-for-event."""
    ref = references[app]
    opts = [
        ExecOptions(metering="off", coalesce_steps=True, trace=True),
        ExecOptions(
            strategy="forkjoin", threads=2, coalesce_steps=True, trace=True
        ),
    ]
    runs = [apps[app](o) for o in opts]
    for got, o in zip(runs, opts):
        assert got.output_text() == ref.output_text(), (
            f"{app}: coalesced output diverged under {o.strategy}"
        )
        assert got.table_sizes == ref.table_sizes, (
            f"{app}: coalesced table sizes diverged under {o.strategy}"
        )
        assert got.steps <= ref.steps
    d = trace_diff(runs[0].trace, runs[1].trace)
    assert d is None, (
        f"{app}: coalesced runs diverged from each other: {format_divergence(d)}"
    )


@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("app", ["ship", "sensors", "shortestpath"])
def test_chaos_fuzz_with_metering_off(app, seed, apps, references):
    got = apps[app](
        ExecOptions(strategy="chaos", chaos_seed=seed, metering="off", trace=True)
    )
    _assert_same(got, references[app], f"{app} chaos seed {seed} metering off")
