"""The delete-aware differential oracle.

For every app × strategy, feeding a script of ``Insert``/``Delete``
events through a retraction session and settling must be
**byte-identical** — output text and Gamma table sizes — to recomputing
from scratch (retraction off) on the script's *surviving* base facts.
And the incremental runs themselves must be strategy-independent: the
semantic trace of a forkjoin/threads/chaos retraction session matches
the sequential one event for event (``trace_diff`` is ``None``).

The four apps cover every repair path:

* **sensors** — streaming aggregates; deleting past readings re-runs
  the per-sensor spike detection (counting + over-delete), and a late
  brand-new reading exercises below-mark admission under repair;
* **dijkstra** (in-test, the Fig 5 rule) — recursive derivation;
  deleting an edge on the shortest-path tree forces DRed over-delete /
  rederive, and inserting a *cheaper* edge after settling forces
  grown-result invalidation (already-fired frontiers re-run against the
  grown Edge table);
* **median** — native two-iteration array writes; deleting the request
  exercises the native-taint cascade (bulk writes are untracked below
  table level, so the whole dependent cone falls);
* **ship** — a pure derivation chain; deleting frame 0 collapses the
  whole trajectory, re-asserting it rebuilds byte-identically.

When ``RETRACTION_TRACE_DIR`` is set, the first diverging pair of
traces is dumped there as JSONL (CI uploads it as an artifact).
"""

from __future__ import annotations

import os
import pathlib

import numpy as np
import pytest

from repro.core import Delete, EngineError, ExecOptions, Insert, Program, RetractionError
from repro.trace import format_divergence, trace_diff

STRATEGIES = ["sequential", "forkjoin", "threads", "chaos"]


# -- script helpers ------------------------------------------------------------


def surviving(batches):
    """The base facts still asserted after the whole script ran."""
    base: dict = {}
    for batch in batches:
        for ev in batch:
            if isinstance(ev, Delete):
                base.pop(ev.tuple, None)
            else:
                t = ev.tuple if isinstance(ev, Insert) else ev
                base[t] = None
    return list(base)


def run_incremental(program, batches, strategy, opts_kw):
    opts = ExecOptions(
        strategy=strategy,
        threads=4,
        retraction=True,
        trace=True,
        chaos_seed=11 if strategy == "chaos" else None,
        **opts_kw,
    )
    with program.session(opts) as s:
        for batch in batches:
            s.feed(batch)
            s.settle()
        return s.close()


def run_scratch(program, batches, opts_kw):
    opts = ExecOptions(strategy="sequential", trace=True, **opts_kw)
    with program.session(opts) as s:
        s.feed(surviving(batches))
        return s.close()


def _dump_traces(inc, base, label: str) -> None:
    trace_dir = os.environ.get("RETRACTION_TRACE_DIR")
    if not trace_dir:
        return
    out = pathlib.Path(trace_dir)
    out.mkdir(parents=True, exist_ok=True)
    slug = label.replace(" ", "-").replace("(", "").replace(")", "")
    base.trace.to_jsonl(out / f"{slug}-baseline.jsonl")
    inc.trace.to_jsonl(out / f"{slug}-incremental.jsonl")


# -- app scripts ---------------------------------------------------------------


def _build_dijkstra():
    """The Fig 5 rule on a small diamond, as a session-fed program."""
    p = Program("dijkstra-retraction")
    Edge = p.table("Edge", "int src, int dst, int value", orderby=("Edge",))
    Estimate = p.table(
        "Estimate", "int vertex, int distance", orderby=("Int", "seq distance", "Estimate")
    )
    Done = p.table(
        "Done", "int vertex -> int distance", orderby=("Int", "seq distance", "Done")
    )
    p.order("Edge", "Int")
    p.order("Estimate", "Done")

    @p.foreach(Estimate, assume_stratified=True)
    def dijkstra(ctx, dist):
        if (
            ctx.get_uniq(Done, vertex=dist.vertex, ranges={"distance": {"lt": dist.distance}})
            is None
        ):
            ctx.println(f"shortest path to {dist.vertex} is {dist.distance}")
            ctx.put(Done.new(dist.vertex, dist.distance))
            for edge in ctx.get(Edge, dist.vertex):
                if ctx.get_uniq(Done, vertex=edge.dst) is None:
                    ctx.put(Estimate.new(edge.dst, dist.distance + edge.value))

    return p, Edge, Estimate


def _app_sensors():
    from repro.apps.sensors import build_sensor_stream

    handles, events = build_sensor_stream(n_ticks=10, n_sensors=4)
    late = handles.Reading.new(5, 7, 999)  # brand-new sensor, below the mark
    batches = [
        events,
        [Delete(events[3]), Delete(events[17])],
        [late],
    ]
    return handles.program, batches, {}


def _app_dijkstra():
    p, Edge, Estimate = _build_dijkstra()
    edges = [
        Edge.new(0, 1, 1),
        Edge.new(0, 2, 4),
        Edge.new(1, 2, 1),
        Edge.new(1, 3, 5),
        Edge.new(2, 3, 1),
    ]
    doomed = Edge.new(7, 8, 1)  # inserted and deleted in the same batch
    batches = [
        # mixed events pre-settle: the doomed edge is retracted while
        # still pending in Delta
        [Insert(e) for e in edges] + [doomed, Delete(doomed), Estimate.new(0, 0)],
        # DRed: 0->1 carries the shortest paths to 1, 2 and 3
        [Delete(edges[0])],
        # grown-result invalidation: a cheaper late edge re-runs the
        # already-settled frontier
        [Edge.new(0, 3, 1)],
    ]
    return p, batches, {}


def _app_median():
    from repro.apps.median import TwoIterationArrayStore, build_median_program

    values = np.asarray([5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0])
    handles = build_median_program(values, n_regions=3)
    req = handles.program.initial_puts[0]
    batches = [[req], [Delete(req)], [req]]
    opts_kw = {
        "store_overrides": {
            "Data": lambda schema: TwoIterationArrayStore(schema, len(values))
        }
    }
    return handles.program, batches, opts_kw


def _app_ship():
    from repro.apps.ship import build_ship_program

    p, Ship = build_ship_program()
    init = p.initial_puts[0]
    batches = [[init], [Delete(init)], [init]]
    return p, batches, {}


APPS = {
    "sensors": _app_sensors,
    "dijkstra": _app_dijkstra,
    "median": _app_median,
    "ship": _app_ship,
}

#: app -> (program, batches, opts_kw), built once (program identity must
#: be shared between the incremental and scratch runs of one app)
_apps_cache: dict = {}
#: app -> incremental sequential RunResult (the trace baseline)
_seq_cache: dict = {}


def _app(name):
    if name not in _apps_cache:
        _apps_cache[name] = APPS[name]()
    return _apps_cache[name]


def _seq_baseline(name):
    if name not in _seq_cache:
        program, batches, opts_kw = _app(name)
        _seq_cache[name] = run_incremental(program, batches, "sequential", opts_kw)
    return _seq_cache[name]


# -- the oracle ----------------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("app", list(APPS))
def test_incremental_settle_matches_scratch_recompute(app, strategy):
    program, batches, opts_kw = _app(app)
    inc = run_incremental(program, batches, strategy, opts_kw)
    scr = run_scratch(program, batches, opts_kw)
    try:
        assert inc.output_text() == scr.output_text(), (
            f"{app}/{strategy}: incremental output diverged from scratch recompute"
        )
        assert inc.table_sizes == scr.table_sizes, (
            f"{app}/{strategy}: Gamma table sizes diverged from scratch recompute"
        )
    except AssertionError:
        _dump_traces(inc, scr, f"{app}-{strategy}-vs-scratch")
        raise
    assert inc.stats.retractions > 0, (
        f"{app}/{strategy}: the script deleted facts but nothing was retracted"
    )


@pytest.mark.parametrize("strategy", ["forkjoin", "threads", "chaos"])
@pytest.mark.parametrize("app", list(APPS))
def test_incremental_trace_is_strategy_independent(app, strategy):
    base = _seq_baseline(app)
    program, batches, opts_kw = _app(app)
    other = run_incremental(program, batches, strategy, opts_kw)
    d = trace_diff(base.trace, other.trace)
    if d is not None:
        _dump_traces(other, base, f"{app}-{strategy}-trace")
    assert d is None, f"{app}/{strategy}: {format_divergence(d)}"


def test_dijkstra_exercises_dred_rederivation():
    """The recursive app must actually travel the over-delete/rederive
    path, not just counting — otherwise the matrix proves less than it
    claims."""
    base = _seq_baseline("dijkstra")
    assert base.stats.rederivations > 0
    assert base.stats.retractions > base.stats.rederivations


def test_retract_events_appear_in_trace():
    base = _seq_baseline("dijkstra")
    kinds = {e.kind for e in base.trace.events}
    assert "retract" in kinds


# -- error paths ---------------------------------------------------------------


def test_delete_never_inserted_raises_precise_error():
    """Satellite fix: deleting a never-inserted base fact raises
    :class:`RetractionError` (an :class:`EngineError`), names the tuple,
    and leaves the session usable."""
    p, Edge, Estimate = _build_dijkstra()
    edges = [Edge.new(0, 1, 1), Edge.new(1, 2, 1)]
    with p.session(ExecOptions(strategy="sequential", retraction=True)) as s:
        s.feed(edges + [Estimate.new(0, 0)])
        s.settle()
        ghost = Edge.new(9, 9, 9)
        with pytest.raises(RetractionError, match="never inserted as a base fact"):
            s.feed([Delete(ghost)])
        assert isinstance(RetractionError("x"), EngineError)
        # the session survived: a real delete still works
        s.feed([Delete(edges[0])])
        r = s.settle()
        assert s.stats.retractions > 0
        assert "shortest path to 0 is 0" in r.output


def test_delete_derived_tuple_raises():
    p, Edge, Estimate = _build_dijkstra()
    Done = p.schemas()["Done"]
    with p.session(ExecOptions(strategy="sequential", retraction=True)) as s:
        s.feed([Edge.new(0, 1, 1), Estimate.new(0, 0)])
        s.settle()
        from repro.core import JTuple

        derived = JTuple(Done, (1, 1))
        with pytest.raises(RetractionError, match="derived tuple"):
            s.feed([Delete(derived)])
        # still usable
        s.feed([Delete(Edge.new(0, 1, 1))])
        s.settle()


def test_delete_without_retraction_is_refused():
    p, Edge, Estimate = _build_dijkstra()
    with p.session(ExecOptions(strategy="sequential")) as s:
        with pytest.raises(EngineError, match="retraction is not enabled"):
            s.feed([Delete(Edge.new(0, 1, 1))])


def test_insert_events_are_sugar_without_retraction():
    """Plain tuples and ``Insert`` wrappers are interchangeable on a
    non-retraction session."""
    p, Edge, Estimate = _build_dijkstra()
    with p.session(ExecOptions(strategy="sequential")) as s:
        s.feed([Insert(Edge.new(0, 1, 1)), Edge.new(1, 2, 1), Insert(Estimate.new(0, 0))])
        r = s.settle()
    assert "shortest path to 2 is 2" in r.output


def test_processes_strategy_is_refused_with_retraction():
    with pytest.raises(EngineError, match="multiprocess"):
        ExecOptions(strategy="processes", retraction=True)


def test_duplicate_delete_is_idempotent():
    p, Edge, Estimate = _build_dijkstra()
    edges = [Edge.new(0, 1, 1), Edge.new(1, 2, 1)]
    with p.session(ExecOptions(strategy="sequential", retraction=True)) as s:
        s.feed(edges + [Estimate.new(0, 0)])
        s.settle()
        s.feed([Delete(edges[0]), Delete(edges[0])])
        s.settle()
        before = s.stats.retractions
        s.feed([Delete(edges[0])])  # a third time, across settles
        r = s.close()
    assert s.stats.retractions == before
    assert "shortest path to 0 is 0" in r.output
