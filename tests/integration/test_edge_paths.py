"""Edge-path coverage: error branches and less-travelled combinations
across subsystems."""

from __future__ import annotations

import pytest

from repro.core import ExecOptions, Program, RetentionHint


class TestRetentionCombos:
    def _program(self):
        p = Program("combo")
        T = p.table("T", "int gen, int i", orderby=("Int", "seq gen", "par i"))

        @p.foreach(T)
        def advance(ctx, t):
            if t.gen < 6:
                ctx.put(T.new(t.gen + 1, t.i))

        for i in range(3):
            p.put(T.new(0, i))
        return p

    def test_retention_under_threads_strategy(self):
        r = self._program().run(
            ExecOptions(
                strategy="threads",
                threads=3,
                retention={"T": RetentionHint("gen", 2)},
            )
        )
        assert r.table_sizes["T"] == 6  # last two generations x 3 lanes

    def test_retention_with_rule_granularity(self):
        r = self._program().run(
            ExecOptions(
                task_granularity="rule", retention={"T": RetentionHint("gen", 1)}
            )
        )
        assert {t.gen for t in r.database.store("T").scan()} == {6}

    def test_retention_with_nodelta(self):
        """-noDelta cascades insert mid-step; pruning still converges."""
        r = self._program().run(
            ExecOptions(
                no_delta=frozenset({"T"}), retention={"T": RetentionHint("gen", 2)}
            )
        )
        assert {t.gen for t in r.database.store("T").scan()} == {5, 6}


class TestDisruptorEdges:
    def test_halt_when_drained_timeout(self):
        from repro.core.errors import DisruptorError
        from repro.disruptor import Disruptor

        import threading

        gate = threading.Event()

        def slow(v, s, e):
            gate.wait(timeout=2.0)

        d = Disruptor(8)
        d.handle_events_with(slow)
        d.start()
        d.publish("x")
        with pytest.raises(DisruptorError, match="timed out"):
            d.halt_when_drained(timeout=0.05)
        gate.set()
        d.halt()

    def test_publish_without_start_rejected(self):
        from repro.core.errors import DisruptorError
        from repro.disruptor import Disruptor

        d = Disruptor(8)
        d.handle_events_with(lambda v, s, e: None)
        with pytest.raises(DisruptorError, match="gating"):
            d.publish("x")  # no gating sequences before start()


class TestSolverEdges:
    def test_obligation_for_rule_with_no_branches(self):
        from repro.solver import RuleMeta, generate_obligations

        p = Program()
        T = p.table("T", "int t", orderby=("Int", "seq t"))
        meta = RuleMeta(T)
        p.freeze()
        assert generate_obligations("empty", meta, p.decls) == []

    def test_prove_with_contradictory_hypotheses(self):
        """Ex falso: an impossible branch proves anything — and that is
        correct (dead code cannot violate causality)."""
        from repro.solver import RuleMeta, check_program

        p = Program()
        T = p.table("T", "int t", orderby=("Int", "seq t"))
        meta = RuleMeta(T)
        trig = meta.trigger
        meta.branch(when=[trig["t"] < trig["t"]]).put(T, t=trig["t"] - 5)

        @p.foreach(T, meta=meta)
        def dead(ctx, t): ...

        assert check_program(p).all_proved

    def test_cross_check_prover_on_lang_program(self):
        from repro.lang import compile_source
        from repro.solver import check_program

        p = compile_source(
            "table T(int t) orderby (Int, seq t)\n"
            "put new T(0)\n"
            "foreach (T x) { if (x.t < 4) { put new T(x.t + 1) } }"
        )
        assert check_program(p, prover="cross-check").all_proved


class TestVizEdges:
    def test_isolated_node_rendered(self):
        import networkx as nx

        from repro.viz import graph_ascii

        g = nx.DiGraph()
        g.add_node("table:Lonely", kind="table", label="Lonely")
        assert "isolated" in graph_ascii(g)

    def test_dot_escapes_quotes(self):
        import networkx as nx

        from repro.viz import to_dot

        g = nx.DiGraph()
        g.add_node('n"1', kind="table", label='say "hi"')
        dot = to_dot(g, title='the "title"')
        assert '\\"' in dot


class TestDistEdges:
    def test_single_node_cluster_no_traffic(self):
        from repro.dist import run_distributed

        p = Program()
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def step(ctx, t):
            if t.t < 5:
                ctx.put(T.new(t.t + 1))

        p.put(T.new(0))
        r = run_distributed(p, n_nodes=1)
        assert r.messages == 0 and r.tuples_moved == 0 and r.comm_time == 0.0
        assert r.table_total("T") == 6

    def test_causality_violation_surfaces_in_dist(self):
        from repro.core import CausalityError
        from repro.dist import run_distributed

        p = Program()
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def back(ctx, t):
            if t.t == 1:
                ctx.put(T.new(0))

        p.put(T.new(1))
        with pytest.raises(CausalityError):
            run_distributed(p, n_nodes=2, causality_check="strict")
