"""Differential harness for the columnar batch-execution tier.

``execution="columnar"`` is a pure performance feature: the §1.3
determinism contract demands it change *time*, never results.  This
harness runs every example program with the columnar tier armed and
asserts byte-identical ``output_text()``, equal ``table_sizes``, and
zero divergent semantic trace events (``trace_diff``) against the
metered sequential reference — the same bar the fast-path matrix sets.

Extra legs beyond the 5-app matrix:

* a program defined here whose rule passes an opaque ``where`` lambda —
  the batch prefetch cannot serve it, so every such query falls back to
  the scalar planned path (plus a rule with no meta at all, which fires
  scalar outright) — results must still be identical;
* a ``ColumnarStore`` ``store_overrides`` leg (columnar tier over the
  columnar backend), compared against a scalar run over the *same*
  stores so select orders are comparable;
* a 20-seed chaos fuzz leg: chaos is not sequential, so the columnar
  knob must downgrade itself with a note and the run must still match
  the reference byte for byte.

Trace-compared legs use the apps' default stores: cross-run trace
equality needs select orders that are stable across two program
builds, which hash-bucket stores do not guarantee (bucket iteration
follows tuple hashes, which mix the schema object's identity).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.median import run_median
from repro.apps.pvwatts import run_pvwatts
from repro.apps.sensors import run_sensors
from repro.apps.ship import run_ship
from repro.apps.shortestpath import GraphSpec, run_shortestpath
from repro.core import ExecOptions, Program
from repro.solver import RuleMeta
from repro.csvio.synth import generate_csv_bytes
from repro.gamma import columnar_store
from repro.stats.report import run_report
from repro.trace import format_divergence, trace_diff

APPS = ["ship", "pvwatts", "shortestpath", "sensors", "median"]


@pytest.fixture(scope="module")
def small_csv() -> bytes:
    lines = generate_csv_bytes(n_years=1).split(b"\n")
    return b"\n".join(lines[:1500]) + b"\n"


@pytest.fixture(scope="module")
def apps(small_csv):
    vals = np.random.default_rng(9).random(500)
    spec = GraphSpec(n_vertices=90, extra_edges=140, seed=3)
    return {
        "ship": lambda o: run_ship(o),
        "pvwatts": lambda o: run_pvwatts(small_csv, o, n_readers=2),
        "shortestpath": lambda o: run_shortestpath(spec, o, n_gen_tasks=4),
        "sensors": lambda o: run_sensors(n_ticks=12, n_sensors=4, options=o),
        "median": lambda o: run_median(vals, o, n_regions=6),
    }


@pytest.fixture(scope="module")
def references(apps):
    """The metered sequential runs every columnar run must match."""
    return {name: run(ExecOptions(trace=True)) for name, run in apps.items()}


def _assert_same(got, ref, label: str) -> None:
    assert got.output_text() == ref.output_text(), f"output diverged: {label}"
    assert got.table_sizes == ref.table_sizes, f"table sizes diverged: {label}"
    d = trace_diff(ref.trace, got.trace)
    assert d is None, f"trace diverged: {label}: {format_divergence(d)}"


@pytest.mark.parametrize("app", APPS)
def test_columnar_matches_sequential_reference(app, apps, references):
    got = apps[app](ExecOptions(trace=True, execution="columnar"))
    _assert_same(got, references[app], f"{app} under columnar")


@pytest.mark.parametrize("app", APPS)
def test_columnar_fast_path_matches_reference(app, apps, references):
    """metering="off" + columnar — the benchmark configuration."""
    got = apps[app](
        ExecOptions(trace=True, metering="off", execution="columnar")
    )
    _assert_same(got, references[app], f"{app} under columnar fast path")


# -- opaque-where fallback ---------------------------------------------------


def _build_where_program() -> Program:
    """A program whose hot rule queries with an opaque ``where`` lambda:
    its meta compiles a batch spec, but serve-time verification sees the
    lambda and falls back to the scalar planned path for every call.  A
    second rule carries no meta at all, so it always fires scalar."""
    p = Program("wherefall")
    Src = p.table("Src", "int k", orderby=("Src",))
    Item = p.table("Item", "int k, int v", orderby=("Item",))
    Probe = p.table("Probe", "int k", orderby=("Probe",))
    p.order("Src", "Item")
    p.order("Item", "Probe")

    @p.foreach(Src, unsafe=True)
    def seed(ctx, s):
        for i in range(12):
            ctx.put(Item.new(s.k * 100 + i, i * i))
        ctx.put(Probe.new(s.k))

    meta = RuleMeta(Probe)
    t = meta.trigger
    meta.branch().query(Item, k=t["k"])

    @p.foreach(Probe, meta=meta, assume_stratified=True)
    def check(ctx, probe):
        evens = ctx.get(Item, where=lambda it: it.v % 2 == 0)
        ctx.println(f"probe {probe.k}: {len(evens)} even items")

    @p.foreach(Item)  # no meta: no batch plan, scalar firing path
    def loud(ctx, item):
        if item.v > 81:
            ctx.println(f"large item {item.k}")

    for k in range(4):
        p.put(Src.new(k))
    return p


def test_opaque_where_falls_back_scalar():
    ref = _build_where_program().run(ExecOptions(trace=True))
    got = _build_where_program().run(
        ExecOptions(trace=True, execution="columnar")
    )
    _assert_same(got, ref, "where-lambda program under columnar")
    notes = "\n".join(got.stats.notes)
    # the metered->off downgrade note proves the batch tier was armed
    assert "execution='columnar'" in notes
    # the no-meta rule fired scalar-only; the stats notes say so
    assert any(
        "rule 'loud'" in n and "0 batch" in n for n in got.stats.notes
    ), got.stats.notes


def test_run_report_renders_columnar_notes(apps):
    got = apps["shortestpath"](ExecOptions(execution="columnar"))
    report = run_report(got)
    assert "columnar: rule 'dijkstra' fired" in report
    assert "columnar: batch widths" in report


# -- ColumnarStore store_overrides leg ---------------------------------------


def test_columnar_tier_over_columnar_store(apps):
    """Columnar execution over the columnar backend: both legs share
    the ColumnarStore overrides so select orders are comparable."""
    spec = GraphSpec(n_vertices=90, extra_edges=140, seed=3)
    overrides = {
        "Done": columnar_store(),
        "Edge": columnar_store(partition=("src",)),
    }
    ref = run_shortestpath(
        spec,
        ExecOptions(trace=True, store_overrides=overrides),
        n_gen_tasks=4,
    )
    got = run_shortestpath(
        spec,
        ExecOptions(
            trace=True, execution="columnar", store_overrides=overrides
        ),
        n_gen_tasks=4,
    )
    _assert_same(got, ref, "shortestpath columnar over ColumnarStore")


# -- chaos fuzz: the knob downgrades, results stay identical -----------------


@pytest.mark.parametrize("seed", range(20))
def test_chaos_fuzz_columnar_downgrades(seed, apps, references):
    got = apps["shortestpath"](
        ExecOptions(
            strategy="chaos",
            chaos_seed=seed,
            metering="off",
            trace=True,
            execution="columnar",
        )
    )
    _assert_same(got, references["shortestpath"], f"chaos seed {seed} columnar")
    assert any(
        "execution='columnar' ignored" in n for n in got.stats.notes
    ), got.stats.notes
