"""Cross-strategy differential harness for the secondary-index layer.

§1.3's guarantee — identical output under every strategy and thread
count — must survive ``index_mode="auto"``: indexes change *how*
``select`` finds tuples, never *which* tuples (or in which order they
are yielded).  This harness runs every example program under the full
matrix

    {sequential, forkjoin, threads, chaos×3 seeds} × {off, auto}

and asserts byte-identical ``output_text()``, equal ``table_sizes``,
and — every run being traced — zero divergent semantic trace events
(``trace_diff``) against the sequential / index-off reference.  A
divergence pinpoints its configuration via the parametrised test id.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.median import run_median
from repro.apps.pvwatts import run_pvwatts
from repro.apps.sensors import run_sensors
from repro.apps.ship import run_ship
from repro.apps.shortestpath import GraphSpec, run_shortestpath
from repro.core import ExecOptions
from repro.csvio.synth import generate_csv_bytes

# sequential ignores the thread count, so it appears once; for the
# chaos axis the second element is the schedule-fuzzing seed instead
CONFIGS = [
    ("sequential", 1),
    ("forkjoin", 1),
    ("forkjoin", 2),
    ("forkjoin", 4),
    ("threads", 1),
    ("threads", 2),
    ("threads", 4),
    ("chaos", 0),
    ("chaos", 1),
    ("chaos", 2),
]
INDEX_MODES = ["off", "auto"]

MATRIX = [
    pytest.param((s, t, m), id=f"{s}-{t}-{m}")
    for (s, t) in CONFIGS
    for m in INDEX_MODES
]


def _options(config) -> ExecOptions:
    strategy, n, mode = config
    if strategy == "chaos":
        return ExecOptions(
            strategy="chaos", chaos_seed=n, index_mode=mode, trace=True
        )
    return ExecOptions(strategy=strategy, threads=n, index_mode=mode, trace=True)


@pytest.fixture(scope="module")
def small_csv() -> bytes:
    """A sliced-down PvWatts year: header + ~1500 records, enough for
    every month to appear without making 14 runs per app expensive."""
    lines = generate_csv_bytes(n_years=1).split(b"\n")
    return b"\n".join(lines[:1500]) + b"\n"


def _assert_same(run, config):
    """Run under the reference config and the probed config; compare."""
    from repro.trace import format_divergence, trace_diff

    ref = run(ExecOptions(trace=True))
    got = run(_options(config))
    assert got.output_text() == ref.output_text(), (
        f"output diverged under {config}"
    )
    assert got.table_sizes == ref.table_sizes, (
        f"table sizes diverged under {config}"
    )
    d = trace_diff(ref.trace, got.trace)
    assert d is None, f"trace diverged under {config}: {format_divergence(d)}"


@pytest.mark.parametrize("config", MATRIX)
class TestDifferential:
    def test_ship(self, config):
        _assert_same(lambda o: run_ship(o), config)

    def test_pvwatts(self, config, small_csv):
        _assert_same(
            lambda o: run_pvwatts(small_csv, o, n_readers=2), config
        )

    def test_shortestpath(self, config):
        spec = GraphSpec(n_vertices=90, extra_edges=140, seed=3)
        _assert_same(
            lambda o: run_shortestpath(spec, o, n_gen_tasks=4), config
        )

    def test_sensors(self, config):
        _assert_same(
            lambda o: run_sensors(n_ticks=12, n_sensors=4, options=o), config
        )

    def test_median(self, config):
        vals = np.random.default_rng(9).random(500)
        _assert_same(lambda o: run_median(vals, o, n_regions=6), config)


class TestIndexesActuallyUsed:
    """Guard against the matrix passing vacuously: auto mode must build
    and hit at least one index on the apps with indexable queries."""

    def test_shortestpath_uses_edge_index(self):
        from repro.stats import index_report

        spec = GraphSpec(n_vertices=90, extra_edges=140, seed=3)
        r = run_shortestpath(spec, ExecOptions(index_mode="auto"), n_gen_tasks=4)
        reports = {rep.table: rep for rep in index_report(r)}
        assert "Edge" in reports
        assert reports["Edge"].hit_rate == 1.0

    def test_pvwatts_uses_month_index(self, small_csv):
        from repro.stats import index_report

        r = run_pvwatts(small_csv, ExecOptions(index_mode="auto"), n_readers=2)
        reports = {rep.table: rep for rep in index_report(r)}
        assert "PvWatts" in reports
        assert sum(reports["PvWatts"].usage.values()) > 0
        assert reports["PvWatts"].hit_rate == 1.0
