"""Scalability smoke tests: larger-than-unit workloads must stay inside
sane wall-time envelopes (catches accidental quadratic regressions in
the Delta tree, stores, or the engine loop)."""

from __future__ import annotations

import time

import pytest

from repro.core import ExecOptions


def wall(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@pytest.mark.parametrize("years,budget", [(3, 6.0)])
def test_pvwatts_three_years(years, budget):
    from repro.apps.pvwatts import month_means_from_output, run_pvwatts
    from repro.csvio import generate_csv_bytes

    data = generate_csv_bytes(n_years=years)

    result = {}

    def go():
        result["r"] = run_pvwatts(
            data, ExecOptions(no_delta=frozenset({"PvWatts"})), n_readers=4
        )

    t = wall(go)
    assert t < budget, f"{t:.1f}s for {years} years"
    assert len(month_means_from_output(result["r"].output)) == 12 * years


def test_dijkstra_5k_vertices():
    from repro.apps.baselines.shortestpath_base import dijkstra_baseline
    from repro.apps.shortestpath import (
        GraphSpec,
        distances_from_result,
        make_graph,
        run_shortestpath,
    )

    spec = GraphSpec(n_vertices=5000, extra_edges=10000)
    result = {}

    def go():
        result["r"] = run_shortestpath(spec)

    t = wall(go)
    assert t < 8.0, f"{t:.1f}s"
    assert distances_from_result(result["r"]) == dijkstra_baseline(
        make_graph(spec), spec.n_vertices
    )


def test_median_four_million():
    import numpy as np

    from repro.apps.median import median_from_result, random_doubles, run_median

    vals = random_doubles(4_000_000)
    result = {}

    def go():
        result["r"] = run_median(vals)

    t = wall(go)
    assert t < 5.0, f"{t:.1f}s"
    k = (len(vals) - 1) // 2
    assert median_from_result(result["r"]) == float(np.partition(vals, k)[k])


def test_delta_tree_hundred_thousand_inserts():
    from repro.core import Program
    from repro.core.delta import DeltaTree
    from repro.core.ordering import evaluate_orderby

    p = Program()
    T = p.table("T", "int t, int i", orderby=("Int", "seq t", "par i"))
    p.freeze()
    d = DeltaTree()

    def go():
        for n in range(100_000):
            tup = T.new(n % 500, n)
            d.insert(tup, evaluate_orderby(T.schema.orderby, tup.asdict(), p.decls))
        total = 0
        while d:
            total += len(d.pop_min_class())
        assert total == 100_000

    t = wall(go)
    assert t < 8.0, f"{t:.1f}s"
