"""Cross-feature integration: features that must compose — textual
programs on the distributed engine, threads strategy with noDelta
cascades, disruptor multi-producer under real threads, advisor over
textual programs, expression-evaluator fuzz against Python semantics."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExecOptions, Program
from repro.dist import Partitioned, run_distributed
from repro.lang import compile_source, parse_expression
from repro.lang.compile import _Evaluator


class TestTextualDistributed:
    """A program written in the paper's syntax, run on the cluster."""

    SRC = """
        table Edge(int src, int dst, int value) orderby (Edge);
        table Estimate(int vertex, int distance) orderby (Int, seq distance, Estimate);
        put new Estimate(0, 0);
        table Done(int vertex -> int distance) orderby (Int, seq distance, Done)
        order Edge < Int;
        order Estimate < Done;
        foreach (Estimate dist) {
          if (get uniq? Done(dist.vertex, [distance < dist.distance]) == null) {
            put new Done(dist.vertex, dist.distance);
            for (edge : get Edge(dist.vertex)) {
              if (get uniq? Done(edge.dst) == null) {
                put new Estimate(edge.dst, dist.distance + edge.value);
              }
            }
          }
        }
    """

    EDGES = [(0, 1, 4), (0, 2, 1), (2, 1, 2), (1, 3, 1), (2, 3, 6), (3, 4, 2)]

    def _distances(self, result) -> dict[int, int]:
        total: dict[int, int] = {}
        for shard in result.shards:
            for t in shard.store("Done").scan():
                total[t.vertex] = t.distance
        return total

    def test_fig5_distributed_matches_single_node(self):
        single = compile_source(self.SRC)
        Edge = single.tables["Edge"]
        for e in self.EDGES:
            single.put(Edge.new(*e))
        ref = {
            t.vertex: t.distance
            for t in single.run(ExecOptions(causality_check="off"))
            .database.store("Done")
            .scan()
        }

        for nodes in (2, 4):
            dist_prog = compile_source(self.SRC)
            Edge = dist_prog.tables["Edge"]
            for e in self.EDGES:
                dist_prog.put(Edge.new(*e))
            r = run_distributed(
                dist_prog,
                n_nodes=nodes,
                placements={
                    "Edge": Partitioned("src"),
                    "Estimate": Partitioned("vertex"),
                    "Done": Partitioned("vertex"),
                },
                causality_check="off",
            )
            assert self._distances(r) == ref
            # vertex co-partitioning keeps the Done guard local; the
            # Done(edge.dst) probe and Estimate sends may travel
            assert r.messages >= 0


class TestThreadsWithCascades:
    def test_nodelta_cascade_under_real_threads(self):
        """-noDelta fires rules inside producing tasks while other
        threads query — the coarse-lock path must keep this safe."""

        def build():
            p = Program("cascade")
            Src = p.table("Src", "int i", orderby=("A", "par i"))
            Mid = p.table("Mid", "int i", orderby=("B", "par i"))
            Sink = p.table("Sink", "int i, int n", orderby=("C", "par i"))
            p.order("A", "B", "C")

            @p.foreach(Src)
            def fan(ctx, s):
                ctx.put(Mid.new(s.i))

            @p.foreach(Mid)
            def count_peers(ctx, m):
                n = len(ctx.get(Src))
                ctx.put(Sink.new(m.i, n))

            for i in range(24):
                p.put(Src.new(i))
            return p

        ref = build().run(ExecOptions(no_delta=frozenset({"Mid"})))
        thr = build().run(
            ExecOptions(strategy="threads", threads=4, no_delta=frozenset({"Mid"}))
        )
        assert thr.table_sizes == ref.table_sizes
        assert {t.values for t in thr.database.store("Sink").scan()} == {
            t.values for t in ref.database.store("Sink").scan()
        }


class TestDisruptorMultiProducerThreaded:
    def test_two_real_producers(self):
        from repro.disruptor import Disruptor, MultiThreadedClaimStrategy

        d = Disruptor(
            128, claim_strategy=MultiThreadedClaimStrategy(128)
        )
        seen: list[int] = []
        d.handle_events_with(lambda v, s, e: seen.append(v))
        d.start()

        def producer(base: int) -> None:
            for i in range(200):
                d.publish(base + i)

        threads = [
            threading.Thread(target=producer, args=(0,)),
            threading.Thread(target=producer, args=(10_000,)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        d.halt_when_drained()
        assert sorted(seen) == sorted(list(range(200)) + list(range(10_000, 10_200)))
        # per-producer FIFO preserved
        a = [v for v in seen if v < 10_000]
        b = [v for v in seen if v >= 10_000]
        assert a == sorted(a) and b == sorted(b)


class TestAdvisorOnTextualPrograms:
    def test_textual_queries_feed_the_advisor(self):
        from repro.stats import advise

        src = """
        table Data(int k, int v) orderby (A)
        table Probe(int i) orderby (B, par i)
        order A < B
        foreach (Probe p) {
          for (d : get Data(p.i)) { println(d.v) }
        }
        """
        p = compile_source(src)
        Data, Probe = p.tables["Data"], p.tables["Probe"]
        for i in range(20):
            p.put(Data.new(i % 4, i))
        for i in range(4):
            p.put(Probe.new(i))
        r = p.run()
        rec = next(x for x in advise(r) if x.table == "Data")
        assert rec.kind == "array-of-hashsets"  # k spans the dense 0..3


# -- expression-evaluator fuzz ---------------------------------------------------

_INT = st.integers(-50, 50)


@st.composite
def arith_exprs(draw, depth=0):
    """Random arithmetic/comparison source + its Python value."""
    if depth > 2 or draw(st.booleans()):
        n = draw(_INT)
        return (str(n) if n >= 0 else f"(0 - {abs(n)})"), n
    op = draw(st.sampled_from(["+", "-", "*"]))
    ls, lv = draw(arith_exprs(depth + 1))
    rs, rv = draw(arith_exprs(depth + 1))
    return f"({ls} {op} {rs})", {"+": lv + rv, "-": lv - rv, "*": lv * rv}[op]


@settings(max_examples=100, deadline=None)
@given(arith_exprs())
def test_evaluator_matches_python_arithmetic(expr_value):
    src, expected = expr_value
    ast = parse_expression(src)
    value = _Evaluator({}).eval(ast, None, {})  # type: ignore[arg-type]
    assert value == expected


@settings(max_examples=60, deadline=None)
@given(arith_exprs(), arith_exprs(), st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
def test_evaluator_matches_python_comparison(a, b, op):
    (sa, va), (sb, vb) = a, b
    ast = parse_expression(f"{sa} {op} {sb}")
    value = _Evaluator({}).eval(ast, None, {})  # type: ignore[arg-type]
    expected = {
        "<": va < vb, "<=": va <= vb, ">": va > vb,
        ">=": va >= vb, "==": va == vb, "!=": va != vb,
    }[op]
    assert value == expected
