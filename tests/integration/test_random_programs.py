"""Property: randomly generated JStar programs are deterministic across
every strategy, granularity and node count — the §1.3 guarantee tested
on program *shapes* no human wrote.

The generator builds layered programs: tables T0..Tk ordered by
literal layer then a seq clock; each rule maps a layer-i trigger to a
layer-j put (i < j, or i == j with a strictly larger clock), with
randomised guards, fan-outs and clock increments — always
causality-respecting by construction, so every run must succeed and
agree.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExecOptions, Program
from repro.dist import run_distributed


@st.composite
def program_specs(draw):
    n_layers = draw(st.integers(2, 4))
    rules = []
    n_rules = draw(st.integers(1, 5))
    for _ in range(n_rules):
        src = draw(st.integers(0, n_layers - 1))
        same_layer = draw(st.booleans())
        dst = src if same_layer else draw(st.integers(src, n_layers - 1))
        inc = draw(st.integers(1, 3)) if dst == src else draw(st.integers(0, 2))
        guard_mod = draw(st.integers(1, 4))
        fan = draw(st.integers(1, 3))
        clock_cap = draw(st.integers(2, 6))
        rules.append((src, dst, inc, guard_mod, fan, clock_cap))
    seeds = draw(
        st.lists(
            st.tuples(st.integers(0, n_layers - 1), st.integers(0, 3), st.integers(0, 5)),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    return n_layers, rules, seeds


def build(spec) -> Program:
    n_layers, rules, seeds = spec
    p = Program("random")
    tables = [
        p.table(f"T{i}", "int clock, int tag", orderby=(f"L{i}", "seq clock", "par tag"))
        for i in range(n_layers)
    ]
    for i in range(n_layers - 1):
        p.order(f"L{i}", f"L{i + 1}")

    for ridx, (src, dst, inc, guard_mod, fan, clock_cap) in enumerate(rules):
        T_src, T_dst = tables[src], tables[dst]

        @p.foreach(T_src, name=f"rule{ridx}", assume_stratified=True)
        def body(ctx, t, T_dst=T_dst, inc=inc, guard_mod=guard_mod, fan=fan, cap=clock_cap):
            if t.clock >= cap:
                return
            if (t.clock + t.tag) % guard_mod == 0:
                # an aggregate over the strict past is always legal
                ctx.count(T_dst, ranges={"clock": {"lt": t.clock}})
                for k in ctx.par_loop(range(fan)):
                    ctx.put(T_dst.new(t.clock + inc, (t.tag + k) % 7))
            ctx.println(f"{t.clock}:{t.tag}")

    for layer, clock, tag in seeds:
        p.put(tables[layer].new(clock, tag))
    return p


@settings(max_examples=25, deadline=None)
@given(program_specs())
def test_all_strategies_agree(spec):
    ref = build(spec).run(ExecOptions(max_steps=500))
    configs = [
        ExecOptions(strategy="forkjoin", threads=1, max_steps=500),
        ExecOptions(strategy="forkjoin", threads=8, max_steps=500),
        ExecOptions(strategy="forkjoin", threads=8, task_granularity="rule", max_steps=500),
        ExecOptions(strategy="threads", threads=3, max_steps=500),
    ]
    for opts in configs:
        r = build(spec).run(opts)
        assert r.output == ref.output
        assert r.table_sizes == ref.table_sizes


@settings(max_examples=12, deadline=None)
@given(program_specs(), st.integers(1, 5))
def test_distributed_agrees(spec, nodes):
    ref = build(spec).run(ExecOptions(max_steps=500))
    r = run_distributed(build(spec), n_nodes=nodes, max_steps=500)
    assert r.output == ref.output
    for name, total in ref.table_sizes.items():
        assert r.table_total(name) == total
