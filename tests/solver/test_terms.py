"""Tests for symbolic linear terms and constraints."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.errors import SolverError
from repro.solver.terms import Constraint, Rel, Term, const, var


class TestArithmetic:
    def test_addition_merges_coeffs(self):
        x, y = var("x"), var("y")
        t = x + y + x
        assert t.coeffs == {"x": 2, "y": 1}

    def test_constants_fold(self):
        x = var("x")
        t = x + 3 - 1
        assert t.constant == 2

    def test_subtraction_cancels(self):
        x = var("x")
        t = x - x
        assert t.is_constant() and t.constant == 0

    def test_scalar_multiply(self):
        x = var("x")
        t = 3 * (x + 1)
        assert t.coeffs == {"x": 3} and t.constant == 3

    def test_rsub(self):
        x = var("x")
        t = 5 - x
        assert t.coeffs == {"x": -1} and t.constant == 5

    def test_term_times_term_rejected(self):
        with pytest.raises(SolverError):
            var("x") * var("y")  # nonlinear

    def test_immutable(self):
        x = var("x")
        with pytest.raises(AttributeError):
            x.constant = Fraction(9)  # type: ignore[misc]

    def test_float_coefficients_exact_enough(self):
        t = var("x") * 0.5
        assert t.coeffs["x"] == Fraction(1, 2)

    def test_variables(self):
        assert (var("x") + var("y")).variables() == {"x", "y"}

    def test_substitute_partial(self):
        t = var("x") + 2 * var("y")
        s = t.substitute({"y": 3})
        assert s.coeffs == {"x": 1} and s.constant == 6

    def test_evaluate(self):
        t = var("x") + 2 * var("y") + 1
        assert t.evaluate({"x": 1, "y": 2}) == 6

    def test_evaluate_missing_raises(self):
        with pytest.raises(SolverError, match="unbound"):
            var("x").evaluate({})

    def test_equality_and_hash(self):
        assert var("x") + 1 == var("x") + 1
        assert hash(var("x")) == hash(var("x"))
        assert var("x") != var("y")

    def test_repr(self):
        assert "x" in repr(var("x") - 2)


class TestConstraints:
    def test_comparisons_build_atoms(self):
        x, y = var("x"), var("y")
        assert (x <= y).rel == Rel.LE
        assert (x < y).rel == Rel.LT
        assert (x >= y).rel == Rel.LE  # flipped
        assert (x > y).rel == Rel.LT
        assert x.eq(y).rel == Rel.EQ

    def test_flip_direction(self):
        x = var("x")
        ge = x >= 3  # becomes 3 - x <= 0
        assert ge.satisfied_by({"x": 3})
        assert ge.satisfied_by({"x": 4})
        assert not ge.satisfied_by({"x": 2})

    def test_negate_le(self):
        x = var("x")
        (neg,) = (x <= 0).negate()
        assert neg.rel == Rel.LT
        assert neg.satisfied_by({"x": 1})
        assert not neg.satisfied_by({"x": 0})

    def test_negate_eq_splits(self):
        x = var("x")
        negs = x.eq(0).negate()
        assert len(negs) == 2
        assert any(n.satisfied_by({"x": 1}) for n in negs)
        assert any(n.satisfied_by({"x": -1}) for n in negs)
        assert not any(n.satisfied_by({"x": 0}) for n in negs)

    def test_satisfied_by(self):
        x, y = var("x"), var("y")
        c = x + 1 < y
        assert c.satisfied_by({"x": 0, "y": 2})
        assert not c.satisfied_by({"x": 0, "y": 1})

    def test_constraint_variables(self):
        c = var("a") < var("b")
        assert c.variables() == {"a", "b"}

    def test_const_helper(self):
        assert const(5).is_constant() and const(5).constant == 5

    def test_repr(self):
        assert "<" in repr(var("x") < 0)
        assert isinstance(Constraint(var("x"), Rel.EQ), Constraint)
