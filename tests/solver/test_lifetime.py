"""Tests for the automated lifetime analysis (§5 step 4 automated)."""

from __future__ import annotations

import pytest

from repro.core import ExecOptions, Program, RetentionHint
from repro.lang import compile_source
from repro.solver.lifetime import clock_field, suggest_retention


class TestClockField:
    def test_standard_shape(self):
        p = Program()
        T = p.table("T", "int t, int i", orderby=("Int", "seq t", "par i"))
        assert clock_field(T.schema) == "t"

    def test_multiple_leading_literals(self):
        p = Program()
        T = p.table("T", "int t", orderby=("A", "B", "seq t"))
        assert clock_field(T.schema) == "t"

    def test_par_before_seq_disqualifies(self):
        p = Program()
        T = p.table("T", "int t, int i", orderby=("Int", "par i", "seq t"))
        assert clock_field(T.schema) is None

    def test_no_seq_level(self):
        p = Program()
        T = p.table("T", "int t", orderby=("Int",))
        assert clock_field(T.schema) is None


GEN_SRC = """
table T(int t, int i -> int v) orderby (Int, seq t, T, par i)
put new T(0, 0, 1)  put new T(0, 1, 2)
foreach (T x) {
  val prev = get uniq? T(x.t - 1, x.i)
  if (x.t < 8) { put new T(x.t + 1, x.i, x.v + 1) }
}
"""


class TestSuggestRetention:
    def test_lookback_one_gives_keep_two(self):
        p = compile_source(GEN_SRC)
        hints = suggest_retention(p)
        assert hints == {"T": RetentionHint("t", keep_last=2)}

    def test_suggested_hints_preserve_results(self):
        plain = compile_source(GEN_SRC).run()
        p = compile_source(GEN_SRC)
        hints = suggest_retention(p)
        pruned = p.run(ExecOptions(retention=hints))
        assert pruned.stats.rules == plain.stats.rules  # same firings
        # only the last two generations survive
        assert {t.t for t in pruned.database.store("T").scan()} == {7, 8}

    def test_deeper_lookback(self):
        src = GEN_SRC.replace("get uniq? T(x.t - 1, x.i)", "get uniq? T(x.t - 3, x.i)")
        hints = suggest_retention(compile_source(src))
        assert hints["T"].keep_last == 4

    def test_multiple_queries_take_max_lookback(self):
        src = GEN_SRC.replace(
            "val prev = get uniq? T(x.t - 1, x.i)",
            "val a = get uniq? T(x.t - 1, x.i)\n  val b = get uniq? T(x.t - 2, x.i)",
        )
        hints = suggest_retention(compile_source(src))
        assert hints["T"].keep_last == 3

    def test_unbounded_clock_disqualifies(self):
        src = GEN_SRC.replace("get uniq? T(x.t - 1, x.i)", "get uniq? T([i == 0])")
        assert suggest_retention(compile_source(src)) == {}

    def test_non_constant_offset_disqualifies(self):
        src = GEN_SRC.replace("get uniq? T(x.t - 1, x.i)", "get uniq? T(x.t - x.i, x.i)")
        assert suggest_retention(compile_source(src)) == {}

    def test_rule_without_meta_blocks_analysis(self):
        p = Program()
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)  # opaque Python body: could query anything
        def opaque(ctx, t): ...

        assert suggest_retention(p) == {}

    def test_trusted_rule_without_meta_allowed(self):
        p = compile_source(GEN_SRC)
        T = p.tables["T"]

        @p.foreach(T, name="logger")
        def logger(ctx, t):  # queries nothing; we vouch for it
            ctx.println(t.t)

        assert suggest_retention(p) == {}
        hints = suggest_retention(p, trusted_no_query_rules={"logger"})
        assert hints["T"].keep_last == 2

    def test_unclocked_queried_table_gets_no_hint(self):
        src = """
        table Config(int key -> int value) orderby (Conf)
        table T(int t) orderby (Int, seq t)
        order Conf < Int
        put new Config(0, 5)  put new T(0)
        foreach (T x) {
          val c = get uniq? Config(0)
          if (x.t < 3) { put new T(x.t + 1) }
        }
        """
        hints = suggest_retention(compile_source(src))
        assert "Config" not in hints  # queried forever: must be retained
        assert "T" not in hints       # never queried: analysis has no lookback

    def test_pvwatts_style_aggregate_not_pruned(self):
        """PvWatts queries bind year/month, not the table's clock —
        no (unsound) hint may be suggested."""
        from repro.apps.pvwatts import build_pvwatts_program

        handles = build_pvwatts_program({"f.csv": b""}, "f.csv")
        hints = suggest_retention(
            handles.program,
            trusted_no_query_rules={"split_input", "read_loop"},
        )
        assert "PvWatts" not in hints
