"""Tests for obligation generation and lexicographic timestamp proofs."""

from __future__ import annotations

import pytest

from repro.core import Program
from repro.core.ordering import OrderDecls
from repro.core.query import QueryKind
from repro.core.schema import TableSchema
from repro.core.tuples import TableHandle
from repro.solver.obligations import (
    RuleMeta,
    generate_obligations,
    prove_lex_le,
    symbolic_timestamp,
)
from repro.solver.terms import var


def decls(*chains, mention=()):
    d = OrderDecls()
    for c in chains:
        d.declare(*c)
    for m in mention:
        d.mention(m)
    d.freeze()
    return d


class TestProveLexLe:
    def setup_method(self):
        self.d = decls(("A", "B", "C"))

    def test_literal_strictly_less(self):
        a = [("lit", "A")]
        b = [("lit", "B")]
        ok, why = prove_lex_le(a, b, [], self.d, strict=True)
        assert ok and "order declares" in why

    def test_literal_equal_nonstrict(self):
        ok, _ = prove_lex_le([("lit", "A")], [("lit", "A")], [], self.d)
        assert ok

    def test_literal_equal_strict_fails(self):
        ok, why = prove_lex_le([("lit", "A")], [("lit", "A")], [], self.d, strict=True)
        assert not ok and "equal" in why

    def test_literal_greater_fails(self):
        ok, _ = prove_lex_le([("lit", "B")], [("lit", "A")], [], self.d)
        assert not ok

    def test_incomparable_literals_fail(self):
        d = decls(("A", "B"), mention=("X",))
        ok, _ = prove_lex_le([("lit", "A")], [("lit", "X")], [], d)
        assert not ok

    def test_seq_strictly_less(self):
        t = var("t")
        ok, _ = prove_lex_le([("seq", t)], [("seq", t + 1)], [], self.d, strict=True)
        assert ok

    def test_seq_equal_descends(self):
        t = var("t")
        a = [("seq", t), ("lit", "A")]
        b = [("seq", t), ("lit", "B")]
        ok, _ = prove_lex_le(a, b, [], self.d, strict=True)
        assert ok

    def test_seq_le_descends_under_equality(self):
        t, u = var("t"), var("u")
        # hypotheses: t <= u; levels: (t, A) vs (u, B) — needs the
        # case-split: t<u done, or t=u and A<B
        ok, _ = prove_lex_le(
            [("seq", t), ("lit", "A")],
            [("seq", u), ("lit", "B")],
            [t <= u],
            self.d,
            strict=True,
        )
        assert ok

    def test_seq_unprovable(self):
        t, u = var("t"), var("u")
        ok, why = prove_lex_le([("seq", t)], [("seq", u)], [], self.d)
        assert not ok and "cannot prove" in why

    def test_prefix_sorts_first(self):
        t = var("t")
        ok, why = prove_lex_le([("seq", t)], [("seq", t), ("lit", "A")], [], self.d, strict=True)
        assert ok and "prefix" in why

    def test_extension_sorts_after(self):
        t = var("t")
        ok, _ = prove_lex_le([("seq", t), ("lit", "A")], [("seq", t)], [], self.d)
        assert not ok

    def test_structural_mismatch(self):
        ok, why = prove_lex_le([("lit", "A")], [("seq", var("t"))], [], self.d)
        assert not ok and "mismatch" in why

    def test_par_levels_skipped(self):
        ok, _ = prove_lex_le(
            [("par",), ("lit", "A")], [("par",), ("lit", "B")], [], self.d, strict=True
        )
        assert ok

    def test_opaque_seq_fails(self):
        ok, why = prove_lex_le([("seq?",)], [("seq?",)], [], self.d)
        assert not ok and "opaque" in why


class TestSymbolicTimestamp:
    def test_mixed_components(self):
        schema = TableSchema(
            "T", "int t, str name, int r", orderby=("Int", "seq t", "par r", "seq name")
        )
        comps = symbolic_timestamp(schema, {"t": var("x")})
        assert comps[0] == ("lit", "Int")
        assert comps[1] == ("seq", var("x"))
        assert comps[2] == ("par",)
        assert comps[3] == ("seq?",)  # name has no term


def ship_program():
    p = Program("ship")
    Ship = p.table(
        "Ship", "int frame -> int x, int y, int dx, int dy", orderby=("Int", "seq frame")
    )
    return p, Ship


class TestGenerateObligations:
    def test_good_put_proves(self):
        p, Ship = ship_program()
        m = RuleMeta(Ship)
        t = m.trigger
        m.branch().put(Ship, frame=t["frame"] + 1)
        p.freeze()
        obs = generate_obligations("r", m, p.decls)
        assert all(o.proved for o in obs)
        assert [o.kind for o in obs] == ["put-causality"]

    def test_past_put_fails(self):
        p, Ship = ship_program()
        m = RuleMeta(Ship)
        t = m.trigger
        m.branch().put(Ship, frame=t["frame"] - 1)
        p.freeze()
        obs = generate_obligations("r", m, p.decls)
        assert not obs[0].proved

    def test_same_time_put_proves_nonstrict(self):
        p, Ship = ship_program()
        m = RuleMeta(Ship)
        t = m.trigger
        m.branch().put(Ship, frame=t["frame"])
        p.freeze()
        assert generate_obligations("r", m, p.decls)[0].proved

    def test_branch_condition_used(self):
        p, Ship = ship_program()
        m = RuleMeta(Ship)
        t = m.trigger
        # frame' = x; provable only given the branch condition x >= frame
        m.branch(when=[t["x"] >= t["frame"]]).put(Ship, frame=t["x"])
        p.freeze()
        assert generate_obligations("r", m, p.decls)[0].proved

    def test_branch_condition_missing_fails(self):
        p, Ship = ship_program()
        m = RuleMeta(Ship)
        t = m.trigger
        m.branch().put(Ship, frame=t["x"])
        p.freeze()
        assert not generate_obligations("r", m, p.decls)[0].proved

    def test_negative_query_strictly_past(self):
        p, Ship = ship_program()
        m = RuleMeta(Ship)
        t = m.trigger
        m.branch().query(
            Ship,
            kind=QueryKind.NEGATIVE,
            constraints=lambda f: [f["frame"] < t["frame"]],
        )
        p.freeze()
        (ob,) = generate_obligations("r", m, p.decls)
        assert ob.kind == "query-past" and ob.proved

    def test_negative_query_at_present_fails(self):
        p, Ship = ship_program()
        m = RuleMeta(Ship)
        t = m.trigger
        m.branch().query(Ship, kind=QueryKind.NEGATIVE, frame=t["frame"])
        p.freeze()
        (ob,) = generate_obligations("r", m, p.decls)
        assert not ob.proved

    def test_positive_query_at_present_ok(self):
        p, Ship = ship_program()
        m = RuleMeta(Ship)
        t = m.trigger
        m.branch().query(Ship, kind=QueryKind.POSITIVE, frame=t["frame"])
        p.freeze()
        (ob,) = generate_obligations("r", m, p.decls)
        assert ob.proved

    def test_invariants_as_hypotheses(self):
        p, Ship = ship_program()
        m = RuleMeta(Ship)
        t = m.trigger
        # put frame' = frame + dx: needs dx >= 0, provided by invariant
        m.branch().put(Ship, frame=t["frame"] + t["dx"])
        p.freeze()
        inv = {"Ship": lambda f: [f["dx"] >= 0]}
        obs = generate_obligations("r", m, p.decls, inv)
        causality = [o for o in obs if o.kind == "put-causality"]
        assert causality[0].proved
        # and the invariant-preservation obligation exists (dx >= 0 of
        # the put tuple is NOT derivable: dx unspecified -> fresh? no,
        # unspecified fields are unconstrained, so it fails)
        inv_obs = [o for o in obs if o.kind == "put-invariant"]
        assert len(inv_obs) == 1

    def test_invariant_preservation_checked(self):
        p, Ship = ship_program()
        m = RuleMeta(Ship)
        t = m.trigger
        m.branch().put(Ship, frame=t["frame"] + 1, dx=t["dx"])
        p.freeze()
        inv = {"Ship": lambda f: [f["dx"] >= 0]}
        obs = generate_obligations("r", m, p.decls, inv)
        pres = [o for o in obs if o.kind == "put-invariant"]
        assert len(pres) == 1 and pres[0].proved  # dx' = dx >= 0 by trig inv

    def test_put_builder_validates_fields(self):
        _, Ship = ship_program()
        m = RuleMeta(Ship)
        with pytest.raises(Exception):
            m.branch().put(Ship, warp=var("x"))
