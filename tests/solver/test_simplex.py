"""Tests for the simplex prover + the cross-prover agreement property
(§1.5's 'several alternative SMT theorem provers')."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SolverError
from repro.solver import (
    DEFAULT_PROVER,
    PROVERS,
    check_program,
    entails,
    feasible,
    get_prover,
    simplex_entails,
    simplex_feasible,
    var,
)
from repro.solver.simplex import maximize_leq
from repro.solver.terms import Constraint, Rel, Term

x, y, z = var("x"), var("y"), var("z")


class TestMaximizeLeq:
    def test_simple_lp(self):
        # max x + y  s.t. x <= 2, y <= 3, x + y <= 4
        F = Fraction
        opt = maximize_leq(
            [F(1), F(1)],
            [[F(1), F(0)], [F(0), F(1)], [F(1), F(1)]],
            [F(2), F(3), F(4)],
        )
        assert opt == 4

    def test_negative_rhs_phase1(self):
        # max y  s.t. -x <= -2 (x >= 2), x + y <= 5  -> y* = 3
        F = Fraction
        opt = maximize_leq(
            [F(0), F(1)],
            [[F(-1), F(0)], [F(1), F(1)]],
            [F(-2), F(5)],
        )
        assert opt == 3

    def test_infeasible_raises(self):
        F = Fraction
        with pytest.raises(ValueError, match="infeasible"):
            maximize_leq([F(1)], [[F(1)], [F(-1)]], [F(1), F(-3)])  # x<=1, x>=3

    def test_unbounded_returns_none(self):
        F = Fraction
        assert maximize_leq([F(1)], [[F(-1)]], [F(0)]) is None  # max x, x >= 0


class TestSimplexFeasible:
    def test_matches_known_answers(self):
        assert simplex_feasible([])
        assert simplex_feasible([x <= y, y <= x])
        assert not simplex_feasible([x < y, y < x])
        assert not simplex_feasible([2 * x <= 1, x >= 1])
        assert not simplex_feasible([x.eq(y), x < y])
        assert simplex_feasible([x < y, y < z])
        assert not simplex_feasible([x < y, y < z, z < x])

    def test_ground_atoms(self):
        one = Term({}, 1)
        assert not simplex_feasible([Constraint(one, Rel.LE)])
        assert simplex_feasible([Constraint(-one, Rel.LT)])
        assert not simplex_feasible([one.eq(0)])

    def test_entailment(self):
        assert simplex_entails([x < y], x <= y)
        assert not simplex_entails([x <= y], x < y)
        assert simplex_entails([x <= y, y <= x], x.eq(y))
        assert simplex_entails([x >= 3], x + 1 >= 4)


class TestRegistry:
    def test_default(self):
        assert get_prover()[1] is PROVERS[DEFAULT_PROVER][1]

    def test_unknown_rejected(self):
        with pytest.raises(SolverError, match="unknown prover"):
            get_prover("z3")

    def test_cross_check_mode_runs(self):
        f, e = get_prover("cross-check")
        assert not f([x < y, y < x])
        assert e([x < y], x <= y)

    @pytest.mark.parametrize("prover", ["fourier-motzkin", "simplex", "cross-check"])
    def test_check_program_under_every_prover(self, prover):
        from repro.apps.ship import build_ship_program

        p, _ = build_ship_program()
        rep = check_program(p, prover=prover)
        assert rep.all_proved


# -- the agreement property ------------------------------------------------------


@st.composite
def small_atoms(draw):
    cx = draw(st.integers(-2, 2))
    cy = draw(st.integers(-2, 2))
    c = draw(st.integers(-3, 3))
    rel = draw(st.sampled_from([Rel.LE, Rel.LT, Rel.EQ]))
    return Constraint(Term({"x": cx, "y": cy}, c), rel)


@settings(max_examples=150, deadline=None)
@given(st.lists(small_atoms(), max_size=4))
def test_provers_agree_on_feasibility(atoms):
    assert feasible(atoms) == simplex_feasible(atoms)


@settings(max_examples=80, deadline=None)
@given(st.lists(small_atoms(), max_size=3), small_atoms())
def test_provers_agree_on_entailment(hyps, concl):
    assert entails(hyps, concl) == simplex_entails(hyps, concl)
