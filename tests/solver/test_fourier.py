"""Tests for the Fourier–Motzkin core, incl. a brute-force cross-check."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.fourier import entails, entails_all, feasible
from repro.solver.terms import Constraint, Rel, Term, var

x, y, z = var("x"), var("y"), var("z")


class TestFeasible:
    def test_empty_is_feasible(self):
        assert feasible([])

    def test_simple_box(self):
        assert feasible([x >= 0, x <= 10, y >= x])

    def test_contradiction(self):
        assert not feasible([x < y, y < x])

    def test_strictness_matters(self):
        assert feasible([x <= y, y <= x])
        assert not feasible([x < y, y <= x])

    def test_ground_contradiction(self):
        one = Term({}, 1)
        assert not feasible([Constraint(one, Rel.LE)])  # 1 <= 0

    def test_equality_substitution(self):
        assert not feasible([x.eq(y), x < y])
        assert feasible([x.eq(y), x <= y])

    def test_ground_equality(self):
        assert not feasible([Term({}, 3).eq(0)])
        assert feasible([Term({}, 0).eq(0)])

    def test_chained(self):
        assert feasible([x < y, y < z, x < z])
        assert not feasible([x < y, y < z, z < x])

    def test_coefficients(self):
        # 2x <= 1 and x >= 1 contradict over Q
        assert not feasible([2 * x <= 1, x >= 1])
        assert feasible([2 * x <= 1, x >= 0])

    def test_strict_cycle_through_three_vars(self):
        assert not feasible([x <= y, y <= z, z < x])


class TestEntails:
    def test_basic(self):
        assert entails([x < y], x <= y)
        assert not entails([x <= y], x < y)

    def test_equality_from_bounds(self):
        assert entails([x <= y, y <= x], x.eq(y))

    def test_transitivity(self):
        assert entails([x < y, y < z], x < z)

    def test_arith(self):
        assert entails([x >= 3], x + 1 >= 4)
        assert entails([], x.eq(x))

    def test_vacuous_from_contradiction(self):
        assert entails([x < x], y < z)  # ex falso

    def test_entails_all(self):
        assert entails_all([x.eq(1), y.eq(2)], [x < y, x >= 1])
        assert not entails_all([x.eq(1)], [x < y])


# -- brute-force cross-check over small integer grids --------------------------

VARS = ("x", "y")


@st.composite
def small_atoms(draw):
    cx = draw(st.integers(-2, 2))
    cy = draw(st.integers(-2, 2))
    c = draw(st.integers(-3, 3))
    rel = draw(st.sampled_from([Rel.LE, Rel.LT, Rel.EQ]))
    return Constraint(Term({"x": cx, "y": cy}, c), rel)


def brute_feasible(atoms, lo=-6, hi=6):
    """Grid search over a rational sample grid (halves included so
    strict inequalities with interior solutions are found)."""
    from fractions import Fraction

    grid = [Fraction(i, 2) for i in range(2 * lo, 2 * hi + 1)]
    for vx in grid:
        for vy in grid:
            if all(a.satisfied_by({"x": vx, "y": vy}) for a in atoms):
                return True
    return False


@settings(max_examples=120, deadline=None)
@given(st.lists(small_atoms(), max_size=4))
def test_fm_never_contradicts_witness(atoms):
    """If the grid finds a witness, FM must say feasible (soundness of
    the infeasibility answer)."""
    if brute_feasible(atoms):
        assert feasible(atoms)


@settings(max_examples=80, deadline=None)
@given(st.lists(small_atoms(), max_size=3), small_atoms())
def test_entails_is_sound_on_grid(hyps, concl):
    """Whenever entails() claims validity, every grid point satisfying
    the hypotheses satisfies the conclusion."""
    if entails(hyps, concl):
        from fractions import Fraction

        grid = [Fraction(i, 2) for i in range(-8, 9)]
        for vx, vy in itertools.product(grid, grid):
            env = {"x": vx, "y": vy}
            if all(h.satisfied_by(env) for h in hyps):
                assert concl.satisfied_by(env)


def test_blowup_guard():
    """MAX_ATOMS should fire rather than hang on absurd inputs."""
    from repro.core.errors import SolverError
    from repro.solver import fourier

    n = 30
    vs = [var(f"v{i}") for i in range(n)]
    atoms = []
    for i in range(n):
        for j in range(i + 1, n):
            atoms.append(vs[i] + vs[j] <= 1)
            atoms.append(vs[i] - vs[j] <= 1)
    try:
        fourier.feasible(atoms)  # may finish; must not hang
    except SolverError:
        pass
