"""Causality regressions, one passing and one violating program per
query kind.

Static half: :func:`generate_obligations` must discharge the passing
variant and fail the violating variant on the *exact* ``query-past``
obligation (positive queries need ``<=`` the trigger, negative and
aggregate queries need strictly ``<``).

Dynamic half: ``ExecOptions.causality_check`` must warn ("warn") or
raise ("strict") when a negative/aggregate query's observable region
touches the trigger's present — the runtime slice of the same §4 law.
Positive queries have no dynamic check (phase A makes Gamma hold
exactly the ``<=`` region when a batch fires), which is why their static
obligation carries the whole burden.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import ExecOptions, Program
from repro.core.errors import CausalityError, StratificationWarning
from repro.core.query import QueryKind
from repro.solver.obligations import RuleMeta, generate_obligations


def _env():
    p = Program("causality-regression")
    T = p.table("T", "int t", orderby=("Int", "seq t"))
    p.freeze()
    return p, T


def _query_past(obligations):
    obs = [o for o in obligations if o.kind == "query-past"]
    assert len(obs) == 1
    return obs[0]


class TestStaticObligations:
    """One (passing, violating) pair per query kind; the violating one
    must fail precisely its query-past obligation."""

    @pytest.mark.parametrize(
        "kind,expect_strict",
        [
            (QueryKind.POSITIVE, False),
            (QueryKind.NEGATIVE, True),
            (QueryKind.AGGREGATE, True),
        ],
    )
    def test_passing_program(self, kind, expect_strict):
        _, T = _env()
        meta = RuleMeta(T)
        t = meta.trigger
        # positive may observe the trigger's own level (<=); negative and
        # aggregate must stay strictly in the past
        bound = t["t"] if kind is QueryKind.POSITIVE else t["t"] - 1
        meta.branch().query(T, kind=kind, t=bound)
        ob = _query_past(generate_obligations("r", meta, _env()[0].decls))
        assert ob.proved, ob.reason
        assert ("<" if expect_strict else "<=") in ob.description

    @pytest.mark.parametrize(
        "kind,bound_offset,reason_match",
        [
            # positive query on an unbounded future region: cannot prove <=
            (QueryKind.POSITIVE, +1, "cannot prove"),
            # negative query on the trigger's own timestamp: needs strict <
            (QueryKind.NEGATIVE, 0, "strict ordering required"),
            (QueryKind.AGGREGATE, 0, "strict ordering required"),
        ],
    )
    def test_violating_program(self, kind, bound_offset, reason_match):
        _, T = _env()
        meta = RuleMeta(T)
        t = meta.trigger
        meta.branch().query(T, kind=kind, t=t["t"] + bound_offset)
        ob = _query_past(generate_obligations("r", meta, _env()[0].decls))
        assert not ob.proved
        assert reason_match in ob.reason
        assert ob.kind == "query-past"
        assert kind.value in ob.description

    def test_violation_is_attributed_to_the_query_not_the_put(self):
        """A rule with a sound put and an unsound query must fail only
        the query obligation — exact attribution is the point."""
        _, T = _env()
        meta = RuleMeta(T)
        t = meta.trigger
        b = meta.branch()
        b.put(T, t=t["t"] + 1)
        b.query(T, kind=QueryKind.NEGATIVE, t=t["t"])
        obs = generate_obligations("r", meta, _env()[0].decls)
        failed = [o for o in obs if not o.proved]
        assert [o.kind for o in failed] == ["query-past"]
        proved_kinds = {o.kind for o in obs if o.proved}
        assert "put-causality" in proved_kinds


def _dynamic_program(kind: QueryKind, violating: bool) -> Program:
    p = Program(f"dyn-{kind.value}")
    T = p.table("T", "int t", orderby=("Int", "seq t"))

    @p.foreach(T, name="probe")
    def probe(ctx, s):
        bound = s.t if violating else s.t - 1
        if kind is QueryKind.NEGATIVE:
            ctx.absent(T, t=bound)
        else:
            ctx.count(T, t=bound)
        if s.t < 2:
            ctx.put(T.new(s.t + 1))

    p.put(T.new(0))
    return p


class TestDynamicCheck:
    @pytest.mark.parametrize("kind", [QueryKind.NEGATIVE, QueryKind.AGGREGATE])
    def test_passing_program_is_silent(self, kind):
        with warnings.catch_warnings():
            warnings.simplefilter("error", StratificationWarning)
            _dynamic_program(kind, violating=False).run(
                ExecOptions(causality_check="strict")
            )

    @pytest.mark.parametrize("kind", [QueryKind.NEGATIVE, QueryKind.AGGREGATE])
    def test_violating_program_warns(self, kind):
        with pytest.warns(StratificationWarning, match=kind.value):
            _dynamic_program(kind, violating=True).run(
                ExecOptions(causality_check="warn")
            )

    @pytest.mark.parametrize("kind", [QueryKind.NEGATIVE, QueryKind.AGGREGATE])
    def test_violating_program_raises_under_strict(self, kind):
        with pytest.raises(CausalityError, match=kind.value):
            _dynamic_program(kind, violating=True).run(
                ExecOptions(causality_check="strict")
            )

    @pytest.mark.parametrize("kind", [QueryKind.NEGATIVE, QueryKind.AGGREGATE])
    def test_off_disables_the_check(self, kind):
        with warnings.catch_warnings():
            warnings.simplefilter("error", StratificationWarning)
            _dynamic_program(kind, violating=True).run(
                ExecOptions(causality_check="off")
            )
