"""Tests for the program-level static causality pass."""

from __future__ import annotations

import warnings

import pytest

from repro.core import Program, StratificationError, StratificationWarning
from repro.solver import RuleMeta, check_program


def good_and_bad_program():
    p = Program("mixed")
    T = p.table("T", "int t", orderby=("Int", "seq t"))

    m_good = RuleMeta(T)
    m_good.branch().put(T, t=m_good.trigger["t"] + 1)

    @p.foreach(T, meta=m_good, name="good")
    def good(ctx, t): ...

    m_bad = RuleMeta(T)
    m_bad.branch().put(T, t=m_bad.trigger["t"] - 1)

    @p.foreach(T, meta=m_bad, name="bad")
    def bad(ctx, t): ...

    @p.foreach(T, name="opaque")
    def opaque(ctx, t): ...

    return p


class TestCheckProgram:
    def test_statuses(self):
        p = good_and_bad_program()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            rep = check_program(p)
        by_name = {f.rule: f.status for f in rep.findings}
        assert by_name == {"good": "proved", "bad": "failed", "opaque": "unchecked"}
        assert not rep.all_proved

    def test_warning_emitted_for_failure(self):
        p = good_and_bad_program()
        with pytest.warns(StratificationWarning, match="bad"):
            check_program(p)

    def test_strict_raises(self):
        p = good_and_bad_program()
        with pytest.raises(StratificationError):
            check_program(p, strict=True)

    def test_assume_stratified_accepted(self):
        p = Program()
        T = p.table("T", "int t", orderby=("Int", "seq t"))
        m = RuleMeta(T)
        m.branch().put(T, t=m.trigger["t"] - 1)

        @p.foreach(T, meta=m, assume_stratified=True, name="assumed")
        def r(ctx, t): ...

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            rep = check_program(p)
        assert rep.findings[0].status == "assumed"
        assert rep.all_proved

    def test_assume_without_meta(self):
        p = Program()
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T, assume_stratified=True, name="trusted")
        def r(ctx, t): ...

        rep = check_program(p)
        assert rep.findings[0].status == "assumed"

    def test_summary_lists_unproved(self):
        p = good_and_bad_program()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            rep = check_program(p)
        s = rep.summary()
        assert "bad: failed" in s and "UNPROVED" in s

    def test_by_status(self):
        p = good_and_bad_program()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            rep = check_program(p)
        assert len(rep.by_status("failed")) == 1

    def test_program_method_shorthand(self):
        p = good_and_bad_program()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            rep = p.check_causality()
        assert len(rep.findings) == 3

    def test_paper_missing_order_scenario(self):
        """§6.1: omit 'order Req < PvWatts < SumMonth' and the SumMonth
        rule fails stratification."""
        from repro.apps.pvwatts import build_pvwatts_program

        handles = build_pvwatts_program({"f.csv": b""}, "f.csv", declare_order=False)
        with pytest.warns(StratificationWarning):
            rep = check_program(handles.program)
        failed = {f.rule for f in rep.by_status("failed")}
        assert "average_month" in failed

    def test_paper_with_order_proves(self):
        from repro.apps.pvwatts import build_pvwatts_program

        handles = build_pvwatts_program({"f.csv": b""}, "f.csv", declare_order=True)
        rep = check_program(handles.program)
        statuses = {f.rule: f.status for f in rep.findings}
        assert statuses["make_summonth"] == "proved"
        assert statuses["average_month"] == "proved"
