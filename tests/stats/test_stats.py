"""Tests for the statistics collector, dependency graphs, and reports."""

from __future__ import annotations

import networkx as nx

from repro.core import ExecOptions, Program
from repro.solver import RuleMeta
from repro.stats import (
    StatsCollector,
    execution_graph,
    format_machine,
    format_rule_stats,
    format_table_stats,
    program_graph,
    run_report,
)


def pipeline_program():
    p = Program("pipe")
    A = p.table("A", "int i", orderby=("A", "par i"))
    B = p.table("B", "int i", orderby=("B", "par i"))
    p.order("A", "B")

    meta = RuleMeta(A)
    meta.branch().put(B, i=meta.trigger["i"])

    @p.foreach(A, meta=meta)
    def fan(ctx, a):
        ctx.put(B.new(a.i))

    @p.foreach(B)
    def sink(ctx, b):
        ctx.get(A, b.i)
        ctx.println("saw", b.i)

    for i in range(4):
        p.put(A.new(i))
    return p


class TestCollector:
    def test_counts_accumulate(self):
        c = StatsCollector()
        c.on_step(5)
        c.on_step(2)
        c.on_fire("T", "r")
        c.on_put("r", "U", 3)
        c.on_query("r", "T", 7)
        assert c.steps == 2 and c.max_batch == 5
        assert c.tables["T"].triggers == 1
        assert c.rules["r"].firings == 1 and c.rules["r"].puts == 3
        assert c.tables["T"].queries == 1 and c.tables["T"].results == 7
        assert c.trigger_edges[("T", "r")] == 1
        assert c.put_edges[("r", "U")] == 3
        assert c.query_edges[("r", "T")] == 1

    def test_as_dict(self):
        c = StatsCollector()
        c.on_fire("T", "r")
        d = c.as_dict()
        assert d["tables"]["T"]["triggers"] == 1

    def test_engine_populates(self):
        r = pipeline_program().run()
        st = r.stats
        assert st.tables["A"].triggers == 4
        assert st.tables["B"].puts == 4
        assert st.rules["fan"].firings == 4
        assert st.rules["sink"].output_lines == 4
        assert st.query_edges[("sink", "A")] == 4


class TestGraphs:
    def test_program_graph_static_structure(self):
        g = program_graph(pipeline_program())
        assert g.nodes["table:A"]["kind"] == "table"
        assert g.nodes["rule:fan"]["kind"] == "rule"
        assert g.edges["table:A", "rule:fan"]["kind"] == "trigger"
        # put edge comes from the solver metadata
        assert g.edges["rule:fan", "table:B"]["kind"] == "put"
        # sink has no metadata: only its trigger edge exists
        assert not list(g.successors("rule:sink"))

    def test_execution_graph_annotated(self):
        r = pipeline_program().run()
        g = execution_graph(r.stats)
        assert g.edges["table:A", "rule:fan"]["count"] == 4
        assert g.edges["rule:fan", "table:B"]["count"] == 4
        assert g.edges["table:A", "rule:sink"]["kind"] == "read"
        assert g.nodes["rule:fan"]["firings"] == 4
        assert isinstance(g, nx.DiGraph)


class TestReports:
    def test_run_report_sections(self):
        r = pipeline_program().run(ExecOptions(strategy="forkjoin", threads=2))
        text = run_report(r)
        assert "program 'pipe' under forkjoin" in text
        assert "virtual machine: 2 cores" in text
        assert "table" in text and "fan" in text

    def test_table_stats_formatting(self):
        r = pipeline_program().run()
        text = format_table_stats(r.stats)
        assert text.splitlines()[0].startswith("table")
        assert any(line.startswith("A") for line in text.splitlines())

    def test_rule_stats_formatting(self):
        r = pipeline_program().run()
        assert "sink" in format_rule_stats(r.stats)

    def test_machine_formatting(self):
        r = pipeline_program().run(ExecOptions(strategy="forkjoin", threads=4))
        assert "4 cores" in format_machine(r.report)


class TestViz:
    def test_dot_output(self):
        from repro.viz import to_dot

        r = pipeline_program().run()
        dot = to_dot(execution_graph(r.stats))
        assert dot.startswith("digraph")
        assert "style=bold" in dot  # trigger edges bold, like Fig 7
        assert "table:A" in dot and "rule:fan" in dot
        assert dot.rstrip().endswith("}")

    def test_graph_ascii(self):
        from repro.viz import graph_ascii

        g = program_graph(pipeline_program())
        text = graph_ascii(g)
        assert "A ==> fan" in text
        assert "fan --> B" in text

    def test_graph_ascii_handles_cycles(self):
        from repro.viz import graph_ascii

        p = Program("cyclic")
        T = p.table("T", "int t", orderby=("Int", "seq t"))
        meta = RuleMeta(T)
        meta.branch().put(T, t=meta.trigger["t"] + 1)

        @p.foreach(T, meta=meta)
        def again(ctx, t): ...

        text = graph_ascii(program_graph(p))
        assert "again" in text

    def test_delta_ascii(self):
        from repro.core.delta import DeltaTree
        from repro.core.ordering import OrderDecls, evaluate_orderby
        from repro.core.schema import TableSchema
        from repro.core.tuples import TableHandle
        from repro.viz import delta_ascii

        decls = OrderDecls()
        decls.mention("Int")
        decls.freeze()
        T = TableHandle(TableSchema("T", "int t, int j", orderby=("Int", "seq t", "par j")))
        d = DeltaTree()
        for t, j in [(1, 0), (1, 1), (2, 0)]:
            tup = T.new(t, j)
            d.insert(tup, evaluate_orderby(T.schema.orderby, tup.asdict(), decls))
        text = delta_ascii(d)
        lines = text.splitlines()
        assert len(lines) == 2
        assert "(2 parallel)" in lines[0]
        assert "seq=1" in lines[0] and "seq=2" in lines[1]

    def test_delta_ascii_empty(self):
        from repro.core.delta import DeltaTree
        from repro.viz import delta_ascii

        assert "empty" in delta_ascii(DeltaTree())
