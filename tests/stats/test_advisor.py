"""Tests for the data-structure advisor (§1.4 automated)."""

from __future__ import annotations

import pytest

from repro.core import ExecOptions, Program
from repro.gamma import ArrayOfHashSetsStore, HashIndexStore, HashKeyStore
from repro.stats import advise, overrides_from


def run_with_queries(query_fn, n_rows=30, key=False, value_range=12):
    """Build a two-table program: Data rows + one Probe trigger that
    issues queries through ``query_fn(ctx, Data)``."""
    p = Program("advised")
    decl = "int k -> int v" if key else "int k, int v"
    Data = p.table("Data", decl, orderby=("A",))
    Probe = p.table("Probe", "int i", orderby=("B", "par i"))
    p.order("A", "B")

    @p.foreach(Probe)
    def probe(ctx, pr):
        query_fn(ctx, Data)

    for i in range(n_rows):
        p.put(Data.new(i % value_range, i))
    for i in range(10):
        p.put(Probe.new(i))
    return p.run(ExecOptions())


def rec_for(result, table="Data"):
    return next(r for r in advise(result) if r.table == table)


class TestDecisionLadder:
    def test_unqueried_table_keeps_default(self):
        r = run_with_queries(lambda ctx, Data: None)
        rec = rec_for(r)
        assert rec.kind == "default" and rec.factory is None
        assert "never queried" in rec.reason

    def test_full_key_queries_get_hash_key(self):
        r = run_with_queries(lambda ctx, Data: ctx.get(Data, k=3), key=True, value_range=100)
        rec = rec_for(r)
        assert rec.kind == "hash-key"
        assert isinstance(rec.factory(r.database.store("Data").schema), HashKeyStore)

    def test_single_dense_int_field_gets_array_of_hashsets(self):
        r = run_with_queries(lambda ctx, Data: ctx.get(Data, k=3), value_range=12)
        rec = rec_for(r)
        assert rec.kind == "array-of-hashsets"
        store = rec.factory(r.database.store("Data").schema)
        assert isinstance(store, ArrayOfHashSetsStore)
        assert (store.lo, store.hi) == (0, 11)
        assert "derived automatically" in rec.reason

    def test_sparse_field_falls_back_to_hash_index(self):
        def sparse(ctx, Data):
            ctx.get(Data, k=0)

        p = Program("sparse")
        Data = p.table("Data", "int k, int v", orderby=("A",))
        Probe = p.table("Probe", "int i", orderby=("B",))
        p.order("A", "B")

        @p.foreach(Probe)
        def probe(ctx, pr):
            sparse(ctx, Data)

        p.put(Data.new(0, 0))
        p.put(Data.new(10_000, 1))  # span >> MAX_ARRAY_SPAN
        p.put(Probe.new(0))
        r = p.run()
        rec = rec_for(r)
        assert rec.kind == "hash-index"
        assert isinstance(rec.factory(Data.schema), HashIndexStore)

    def test_multi_field_signature_gets_hash_index(self):
        r = run_with_queries(lambda ctx, Data: ctx.get(Data, k=1, v=1))
        rec = rec_for(r)
        assert rec.kind == "hash-index"
        store = rec.factory(r.database.store("Data").schema)
        assert store.index_fields == ("k", "v")

    def test_range_heavy_tables_keep_ordered_default(self):
        r = run_with_queries(
            lambda ctx, Data: ctx.get(Data, ranges={"v": {"lt": 5}})
        )
        rec = rec_for(r)
        assert rec.kind == "ordered-default" and rec.factory is None

    def test_whole_table_scans_keep_default(self):
        r = run_with_queries(lambda ctx, Data: ctx.get(Data))
        rec = rec_for(r)
        assert rec.kind == "default"
        assert "scan" in rec.reason

    def test_mixed_shapes_below_dominance_keep_default(self):
        calls = {"n": 0}

        def mixed(ctx, Data):
            calls["n"] += 1
            if calls["n"] % 2:
                ctx.get(Data, k=1)
            else:
                ctx.get(Data, v=1)

        r = run_with_queries(mixed)
        rec = rec_for(r)
        assert rec.kind == "default"
        assert "no dominant" in rec.reason


class TestEndToEnd:
    def test_pvwatts_advice_improves_and_preserves_answers(self, pvwatts_csv):
        from repro.apps.pvwatts import month_means_from_output, run_pvwatts

        base = ExecOptions(no_delta=frozenset({"PvWatts"}))
        profiled = run_pvwatts(pvwatts_csv, base)
        recs = advise(profiled)
        by_table = {r.table: r for r in recs}
        assert by_table["PvWatts"].kind == "hash-index"
        advised = run_pvwatts(
            pvwatts_csv, base.with_(store_overrides=overrides_from(recs))
        )
        assert month_means_from_output(advised.output) == month_means_from_output(
            profiled.output
        )
        assert advised.virtual_time < profiled.virtual_time

    def test_shortestpath_advice(self):
        from repro.apps.shortestpath import GraphSpec, run_shortestpath

        r = run_shortestpath(
            GraphSpec(n_vertices=150, extra_edges=300), options=ExecOptions()
        )
        by_table = {rec.table: rec for rec in advise(r)}
        # Edge queried by src only (a 0..149 dense int): array-of-hashsets
        # territory is too wide (150 > 64) -> hash-index on ('src',)
        assert by_table["Edge"].kind in ("hash-index", "array-of-hashsets")
        # Done queried by vertex (its key) mostly, but the guard query
        # adds a range on distance — either outcome must keep answers;
        # just assert a recommendation exists
        assert "Done" in by_table

    def test_overrides_skip_defaults(self):
        r = run_with_queries(lambda ctx, Data: None)
        assert overrides_from(advise(r)) == {}

    def test_query_shapes_recorded(self):
        r = run_with_queries(lambda ctx, Data: ctx.get(Data, k=2))
        shapes = r.stats.shapes_for("Data")
        assert shapes == {(("k",), ()): 10}
