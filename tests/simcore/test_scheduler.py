"""Tests for LPT scheduling: exact cases + classic bounds as properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore.scheduler import greedy_makespan, lpt_makespan
from repro.simcore.task import SimTask


class TestExactCases:
    def test_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_single_core_is_sum(self):
        assert lpt_makespan([1, 2, 3], 1) == 6

    def test_fewer_tasks_than_cores_is_max(self):
        assert lpt_makespan([5, 3], 8) == 5

    def test_perfect_split(self):
        assert lpt_makespan([2, 2, 2, 2], 2) == 4

    def test_lpt_classic_suboptimal_case(self):
        # classic: [3,3,2,2,2] on 2 cores -> LPT gives 7 (optimal is 6,
        # within the 4/3 guarantee) — pins the implementation's behaviour
        assert lpt_makespan([3, 3, 2, 2, 2], 2) == 7

    def test_single_big_task_dominates(self):
        assert lpt_makespan([100, 1, 1, 1], 4) == 100

    def test_greedy_from_simtasks(self):
        tasks = [SimTask(3.0), SimTask(1.0), SimTask(2.0)]
        assert greedy_makespan(tasks, 2) == pytest.approx(3.0)

    def test_simtask_scaled(self):
        t = SimTask(2.0, {"delta": 1.0}).scaled(3.0)
        assert t.cost == 6.0 and t.shared == {"delta": 3.0}


costs = st.lists(st.floats(0.01, 100.0), min_size=1, max_size=40)
cores = st.integers(1, 16)


@settings(max_examples=120, deadline=None)
@given(costs, cores)
def test_lower_bounds(cs, n):
    """makespan >= max(total/n, max task) — the two trivial bounds."""
    ms = lpt_makespan(cs, n)
    assert ms >= max(cs) - 1e-9
    assert ms >= sum(cs) / n - 1e-9


@settings(max_examples=120, deadline=None)
@given(costs, cores)
def test_graham_list_scheduling_bound(cs, n):
    """Graham's bound for any list schedule (hence for LPT):
    makespan <= sum/n + (1 - 1/n) * max."""
    ms = lpt_makespan(cs, n)
    assert ms <= sum(cs) / n + (1 - 1 / n) * max(cs) + 1e-9


@settings(max_examples=80, deadline=None)
@given(costs, cores)
def test_monotone_in_cores(cs, n):
    assert lpt_makespan(cs, n + 1) <= lpt_makespan(cs, n) + 1e-9


@settings(max_examples=80, deadline=None)
@given(costs, cores)
def test_conserves_work_on_one_core(cs, n):
    assert lpt_makespan(cs, 1) == pytest.approx(sum(cs))
    del n
