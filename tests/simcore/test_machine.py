"""Tests for the contention model, GC model and the Machine facade."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import (
    NO_GC,
    CalibratedCosts,
    GcModel,
    Machine,
    SimTask,
    step_makespan,
)


class TestStepMakespan:
    def test_empty_batch(self):
        t = step_makespan([], 4, CalibratedCosts())
        assert t.makespan == 0 and t.n_tasks == 0

    def test_one_core_is_exact_sum_no_overhead(self):
        tasks = [SimTask(3.0, {"delta": 1.0}), SimTask(2.0)]
        t = step_makespan(tasks, 1, CalibratedCosts())
        assert t.makespan == pytest.approx(5.0)
        assert t.overhead == 0 and t.contention == 0

    def test_parallel_adds_spawn_and_barrier(self):
        calib = CalibratedCosts(spawn_cost=1.0, barrier_cost=2.0)
        t = step_makespan([SimTask(10.0)] * 4, 4, calib)
        assert t.overhead == pytest.approx(1.0 * 4 / 4 + 2.0 * 2)  # log2(4)=2
        assert t.makespan == pytest.approx(10.0 + t.overhead)

    def test_serialised_resource_bounds_makespan(self):
        calib = CalibratedCosts(spawn_cost=0, barrier_cost=0)
        # 8 tasks, each 1 unit of work, all of it serialised on "delta"
        tasks = [SimTask(1.0, {"delta": 1.0}) for _ in range(8)]
        t = step_makespan(tasks, 8, calib)
        growth = calib.growth("delta")
        expected = 8 * (1 + growth * 7)
        assert t.makespan == pytest.approx(expected)
        assert t.contention > 0

    def test_uncontended_batch_scales(self):
        calib = CalibratedCosts(spawn_cost=0, barrier_cost=0)
        tasks = [SimTask(1.0) for _ in range(64)]
        t8 = step_makespan(tasks, 8, calib)
        assert t8.makespan == pytest.approx(8.0)
        # StepTiming.efficiency is busy/makespan = achieved parallelism
        assert t8.efficiency == pytest.approx(8.0)

    def test_unknown_resource_uses_default_growth(self):
        calib = CalibratedCosts()
        assert calib.growth("weird-lock") == calib.default_growth
        assert calib.growth("delta") == calib.resource_growth["delta"]


class TestGcModel:
    def test_zero_allocations_no_tax(self):
        assert GcModel().step_tax(0, 1e9) == 0.0

    def test_tax_grows_with_retained(self):
        gc = GcModel()
        small = gc.step_tax(1000, 0)
        big = gc.step_tax(1000, 10_000_000)
        assert big > small

    def test_tax_linear_in_allocations(self):
        gc = GcModel()
        assert gc.step_tax(2000, 5000) == pytest.approx(2 * gc.step_tax(1000, 5000))

    def test_no_gc_model(self):
        assert NO_GC.step_tax(1e6, 1e9) == 0.0


class TestMachine:
    def test_requires_cores(self):
        with pytest.raises(ValueError):
            Machine(0)

    def test_accumulates_report(self):
        m = Machine(4)
        m.run_step([SimTask(4.0)] * 8, allocations=10, retained=100)
        m.run_step([SimTask(2.0)] * 4)
        m.run_serial(5.0)
        r = m.report
        assert r.steps == 2 and r.tasks == 12 and r.max_batch == 8
        assert r.elapsed > 0 and r.busy == pytest.approx(45.0)
        assert m.now == r.elapsed

    def test_gc_tax_counted(self):
        m = Machine(2, gc=GcModel(alloc_cost=1.0, amplify=0.0, serial_share=1.0))
        m.run_step([SimTask(1.0)], allocations=100, retained=0)
        assert m.report.gc_time == pytest.approx(100.0)

    def test_utilisation_bounds(self):
        m = Machine(4)
        m.run_step([SimTask(10.0)] * 4)
        assert 0 < m.report.utilisation <= 1.0

    def test_as_dict_keys(self):
        m = Machine(2)
        d = m.report.as_dict()
        assert {"n_cores", "elapsed", "busy", "gc_time", "utilisation"} <= set(d)


# -- the headline property: results never depend on the machine -----------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(0.1, 50.0), min_size=1, max_size=30),
    st.integers(1, 32),
    st.integers(1, 32),
)
def test_speedup_bounded_by_cores(costs, n1, n2):
    calib = CalibratedCosts(spawn_cost=0, barrier_cost=0)
    tasks = [SimTask(c) for c in costs]
    t1 = step_makespan(tasks, n1, calib).makespan
    t2 = step_makespan(tasks, n2, calib).makespan
    if n1 <= n2:
        assert t2 <= t1 + 1e-9  # more cores never slower (no overheads)
        assert t1 / t2 <= n2 / min(n1, 1) + 1e-6
