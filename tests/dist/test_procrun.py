"""Multiprocess shard runtime (repro.dist.procrun): byte-identical
differential matrix against the sequential engine, crash recovery,
wiring, and cross-process determinism of the placement hash.

When ``DIST_TRACE_DIR`` is set, the node-tagged traces of a diverging
pair are dumped there as JSONL for offline ``trace_diff`` (CI uploads
the directory as an artifact on failure)."""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.core.errors import EngineError
from repro.core.kernel import StepKernel
from repro.core.program import ExecOptions, Program
from repro.apps.median import run_median
from repro.apps.pvwatts import build_pvwatts_program, run_pvwatts
from repro.apps.sensors import build_sensor_program, run_sensors
from repro.apps.ship import build_ship_program, run_ship
from repro.apps.shortestpath import (
    GraphSpec,
    build_shortestpath_program,
    run_shortestpath,
)
from repro.csvio.synth import generate_csv_bytes
from repro.dist.placement import OnNode, Partitioned, PlacementMap, Replicated
from repro.dist.procrun import ProcessShardRuntime, run_sharded
from repro.stats.report import format_nodes, run_report
from repro.trace.diff import trace_diff

SPEC = GraphSpec(90, 140, 3)


@pytest.fixture(scope="module")
def small_csv() -> bytes:
    lines = generate_csv_bytes(n_years=1).split(b"\n")
    return b"\n".join(lines[:1500]) + b"\n"


def counter_program(limit: int = 10) -> Program:
    p = Program("counter")
    T = p.table("T", "int n", orderby=("Int", "seq n"))
    Log = p.table("Log", "int n", orderby=("Out", "seq n"))
    p.order("Int", "Out")

    @p.foreach(T)
    def step(ctx, t):
        if t.n < limit:
            ctx.put(T.new(t.n + 1))
        ctx.put(Log.new(t.n))

    @p.foreach(Log)
    def report(ctx, entry):
        ctx.println(f"log {entry.n}")

    p.put(T.new(0))
    return p


def _dump_traces(ref, got, label):
    trace_dir = os.environ.get("DIST_TRACE_DIR")
    if not trace_dir or ref.trace is None or got.trace is None:
        return
    out = pathlib.Path(trace_dir)
    out.mkdir(parents=True, exist_ok=True)
    slug = label.replace(" ", "-")
    ref.trace.to_jsonl(out / f"{slug}-sequential.jsonl")
    got.trace.to_jsonl(out / f"{slug}-sharded.jsonl")


def _assert_identical(ref, got, label):
    try:
        assert ref.output_text() == got.output_text(), f"{label}: output diverged"
        assert ref.table_sizes == got.table_sizes, f"{label}: table sizes diverged"
        if ref.trace is not None and got.trace is not None:
            d = trace_diff(ref.trace, got.trace)
            assert d is None, f"{label}: trace diverged: {d}"
    except AssertionError:
        _dump_traces(ref, got, label)
        raise


# -- the differential matrix: every app x {2,4} workers x placements --------


class TestDifferentialMatrix:
    """§1.3 across machines: the sharded run is byte-identical to the
    sequential engine — output, table sizes, and the semantic trace."""

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_ship(self, n_workers):
        ref = run_ship(ExecOptions(trace=True))
        got = run_ship(ExecOptions(strategy="processes", threads=n_workers, trace=True))
        _assert_identical(ref, got, f"ship x{n_workers}")

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_pvwatts(self, small_csv, n_workers):
        ref = run_pvwatts(small_csv, ExecOptions(trace=True), n_readers=2)
        got = run_pvwatts(
            small_csv,
            ExecOptions(strategy="processes", threads=n_workers, trace=True),
            n_readers=2,
        )
        _assert_identical(ref, got, f"pvwatts x{n_workers}")

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_shortestpath(self, n_workers):
        ref = run_shortestpath(SPEC, ExecOptions(trace=True), n_gen_tasks=4)
        got = run_shortestpath(
            SPEC,
            ExecOptions(strategy="processes", threads=n_workers, trace=True),
            n_gen_tasks=4,
        )
        _assert_identical(ref, got, f"shortestpath x{n_workers}")

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_sensors(self, n_workers):
        ref = run_sensors(n_ticks=12, n_sensors=4, options=ExecOptions(trace=True))
        got = run_sensors(
            n_ticks=12,
            n_sensors=4,
            options=ExecOptions(strategy="processes", threads=n_workers, trace=True),
        )
        _assert_identical(ref, got, f"sensors x{n_workers}")

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_ship_explicit_replication(self, n_workers):
        p, _ = build_ship_program()
        ref = p.run(ExecOptions(trace=True))
        p2, _ = build_ship_program()
        placements = {name: Replicated() for name in p2.schemas()}
        got = run_sharded(
            p2,
            ExecOptions(strategy="processes", threads=n_workers, trace=True),
            placements=placements,
        )
        _assert_identical(ref, got, f"ship replicated x{n_workers}")

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_shortestpath_explicit_mixed_placement(self, n_workers):
        ref = run_shortestpath(SPEC, ExecOptions(trace=True), n_gen_tasks=4)
        handles = build_shortestpath_program(SPEC, 4)
        # deliberately adversarial: results pinned, edges everywhere,
        # estimates sharded on a *different* field than the default
        placements = {
            "Done": OnNode(0),
            "Edge": Replicated(),
            "Estimate": Partitioned("distance"),
        }
        got = run_sharded(
            handles.program,
            ExecOptions(strategy="processes", threads=n_workers, trace=True),
            placements=placements,
        )
        _assert_identical(ref, got, f"shortestpath mixed x{n_workers}")

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_pvwatts_explicit_pinned(self, small_csv, n_workers):
        ref = run_pvwatts(small_csv, ExecOptions(trace=True), n_readers=2)
        handles = build_pvwatts_program(
            {"large1000.csv": small_csv}, "large1000.csv", 2
        )
        placements = {"PvWatts": Partitioned("month"), "SumMonth": OnNode(1)}
        got = run_sharded(
            handles.program,
            ExecOptions(strategy="processes", threads=n_workers, trace=True),
            placements=placements,
        )
        _assert_identical(ref, got, f"pvwatts pinned x{n_workers}")

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_sensors_explicit(self, n_workers):
        ref = run_sensors(n_ticks=12, n_sensors=4, options=ExecOptions(trace=True))
        handles = build_sensor_program(12, 4)
        placements = {"Reading": Partitioned("sensor")}
        got = run_sharded(
            handles.program,
            ExecOptions(strategy="processes", threads=n_workers, trace=True),
            placements=placements,
        )
        _assert_identical(ref, got, f"sensors explicit x{n_workers}")


# -- crash recovery ----------------------------------------------------------


class TestCrashRecovery:
    def test_killed_worker_recovers_identically(self):
        ref = counter_program().run(ExecOptions())
        got = run_sharded(counter_program(), n_workers=2, fault_kill=(1, 4))
        _assert_identical(ref, got, "counter kill")
        assert got.nodes is not None
        assert got.nodes[1]["recovered"] == 1
        assert any("worker 1 died during step 4" in n for n in got.stats.notes)

    def test_kill_node_zero_during_remote_query_traffic(self):
        ref = run_shortestpath(SPEC, ExecOptions(), n_gen_tasks=4)
        handles = build_shortestpath_program(SPEC, 4)
        got = run_sharded(
            handles.program,
            ExecOptions(strategy="processes", threads=2),
            fault_kill=(0, 6),
        )
        _assert_identical(ref, got, "shortestpath kill")
        assert got.nodes[0]["recovered"] == 1

    def test_recovery_survives_trace_comparison(self):
        ref = counter_program().run(ExecOptions(trace=True))
        got = run_sharded(
            counter_program(),
            ExecOptions(strategy="processes", threads=2, trace=True),
            fault_kill=(0, 3),
        )
        _assert_identical(ref, got, "counter kill traced")


# -- wiring and guard rails --------------------------------------------------


class TestWiring:
    def test_program_run_accepts_processes_strategy(self):
        ref = counter_program().run(ExecOptions())
        got = counter_program().run(ExecOptions(strategy="processes", threads=2))
        _assert_identical(ref, got, "Program.run processes")
        assert got.strategy == "processes"
        assert got.threads == 2
        assert got.nodes is not None and len(got.nodes) == 2

    def test_step_kernel_rejects_processes_as_step_strategy(self):
        with pytest.raises(EngineError, match="whole-engine runtime"):
            StepKernel(counter_program(), ExecOptions(strategy="processes"))

    def test_store_overrides_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(EngineError, match="store_overrides"):
            run_median(
                rng.integers(0, 1000, size=64).astype(np.float64),
                ExecOptions(strategy="processes", threads=2),
                n_regions=4,
            )

    def test_unsupported_knobs_surfaced_as_notes(self):
        got = run_sharded(
            counter_program(),
            ExecOptions(strategy="processes", threads=2, coalesce_steps=True),
        )
        assert any("coalesce_steps" in n for n in got.stats.notes)
        ref = counter_program().run(ExecOptions())
        assert ref.output_text() == got.output_text()

    def test_max_steps_enforced(self):
        with pytest.raises(EngineError, match="max_steps=3"):
            run_sharded(
                counter_program(),
                ExecOptions(strategy="processes", threads=2, max_steps=3),
            )

    def test_node_summaries_and_report(self):
        got = run_sharded(counter_program(), n_workers=2)
        assert sum(n["fires"] for n in got.nodes) == sum(
            r.firings for r in got.stats.rules.values()
        )
        assert all(n["bytes_sent"] > 0 and n["bytes_recv"] > 0 for n in got.nodes)
        text = format_nodes(got.nodes)
        assert "recovered" in text and "node" in text
        assert format_nodes(got.nodes) in run_report(got)

    def test_database_and_require_database(self):
        got = run_sharded(counter_program(), n_workers=2)
        db = got.require_database()
        assert db.table_sizes() == got.table_sizes

    def test_single_worker_degenerate_cluster(self):
        ref = counter_program().run(ExecOptions())
        got = run_sharded(counter_program(), n_workers=1)
        _assert_identical(ref, got, "counter x1")


# -- cross-process determinism of the placement hash -------------------------

_HASH_PROBE = """
import json, sys
from repro.dist.placement import Partitioned, _stable_hash
values = json.loads(sys.stdin.read())
part = Partitioned("k")
out = []
for v in values:
    row = {"hash": _stable_hash(v)}
    for n in (2, 3, 4, 7):
        row[str(n)] = part.home_for_value(v, n)
    out.append(row)
print(json.dumps(out))
"""


class TestCrossProcessDeterminism:
    """The placement fold must agree between the coordinator and a
    *fresh* interpreter (PYTHONHASHSEED varies per process): shard
    ownership computed anywhere is shard ownership everywhere."""

    VALUES = [
        0,
        1,
        -5,
        2**40,
        True,
        False,
        0.0,
        0.5,
        -3.25,
        1e300,
        "",
        "a",
        "vertex",
        "säntis",
    ]

    def test_stable_hash_and_home_survive_process_boundary(self):
        from repro.dist.placement import Partitioned, _stable_hash

        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root
        env["PYTHONHASHSEED"] = "random"
        proc = subprocess.run(
            [sys.executable, "-c", _HASH_PROBE],
            input=json.dumps(self.VALUES),
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        remote = json.loads(proc.stdout)
        part = Partitioned("k")
        for v, row in zip(self.VALUES, remote):
            assert row["hash"] == _stable_hash(v), f"hash diverged for {v!r}"
            for n in (2, 3, 4, 7):
                assert row[str(n)] == part.home_for_value(v, n), (
                    f"home diverged for {v!r} at n={n}"
                )


# -- placement map edge cases ------------------------------------------------


class TestPlacementValidation:
    def test_unknown_table_placement_rejected(self):
        p = counter_program()
        with pytest.raises(EngineError, match="unknown tables"):
            PlacementMap(p.schemas(), {"Nope": Replicated()}, n_nodes=2)

    def test_partitioned_unknown_field_rejected(self):
        p = counter_program()
        with pytest.raises(Exception, match="field"):
            PlacementMap(p.schemas(), {"T": Partitioned("missing")}, n_nodes=2)

    def test_partitioned_any_field_rejected(self):
        p = Program("anyprog")
        p.table("Blob", "any payload -> int n", orderby=("Int", "seq n"))
        with pytest.raises(EngineError, match="no.*stable cross-process hash"):
            PlacementMap(p.schemas(), {"Blob": Partitioned("payload")}, n_nodes=2)

    def test_default_skips_any_typed_key(self):
        p = Program("anyprog")
        p.table("Blob", "any payload -> int n", orderby=("Int", "seq n"))
        pm = PlacementMap(p.schemas(), n_nodes=2)
        # defaults fall through to the first int field, never the
        # unhashable 'any' key
        assert pm["Blob"] == Partitioned("n")

    def test_runtime_rejects_empty_cluster(self):
        with pytest.raises(EngineError, match="at least one worker"):
            ProcessShardRuntime(counter_program(), n_workers=0)

    def test_runtime_validates_pins_at_construction(self):
        with pytest.raises(EngineError, match=r"node 7.*2 node"):
            ProcessShardRuntime(
                counter_program(), n_workers=2, placements={"Log": OnNode(7)}
            )
