"""v2 distributed runtime (worker-to-worker shuffle, pipelined
supersteps, pluggable transport): the 8-worker acceptance differential
on both transports, crash recovery with a shuffled query in flight, the
spawn-handshake bounded wait, wire-counter carryover across a crash,
adaptive rebalancing, and the node-tagged shuffle trace events."""

from __future__ import annotations

import pytest

from repro.core.errors import EngineError, WorkerLostError
from repro.core.program import ExecOptions, Program
from repro.apps.shortestpath import (
    GraphSpec,
    build_shortestpath_program,
    run_shortestpath,
)
from repro.apps.ship import build_ship_program
from repro.dist.check import check_locality, locality_summary
from repro.dist.placement import OnNode, Partitioned, Replicated, spread_hash
from repro.dist.procrun import run_sharded
from repro.dist.rebalance import Rebalancer
from repro.stats.report import format_nodes
from repro.trace.diff import trace_diff

SPEC = GraphSpec(90, 140, 3)

MIXED_PLACEMENTS = {
    "Done": OnNode(0),
    "Edge": Replicated(),
    "Estimate": Partitioned("distance"),
}


def counter_program(limit: int = 10) -> Program:
    p = Program("counter")
    T = p.table("T", "int n", orderby=("Int", "seq n"))
    Log = p.table("Log", "int n", orderby=("Out", "seq n"))
    p.order("Int", "Out")

    @p.foreach(T)
    def step(ctx, t):
        if t.n < limit:
            ctx.put(T.new(t.n + 1))
        ctx.put(Log.new(t.n))

    @p.foreach(Log)
    def report(ctx, entry):
        ctx.println(f"log {entry.n}")

    p.put(T.new(0))
    return p


def _assert_identical(ref, got, label):
    assert ref.output_text() == got.output_text(), f"{label}: output diverged"
    assert ref.table_sizes == got.table_sizes, f"{label}: table sizes diverged"
    if ref.trace is not None and got.trace is not None:
        d = trace_diff(ref.trace, got.trace)
        assert d is None, f"{label}: trace diverged: {d}"


# -- the acceptance criterion: 8 workers, both transports ---------------------


class TestEightWorkerMatrix:
    @pytest.mark.parametrize("transport", ["pipe", "tcp"])
    def test_shortestpath_x8_byte_identical(self, transport):
        ref = run_shortestpath(SPEC, ExecOptions(trace=True), n_gen_tasks=4)
        handles = build_shortestpath_program(SPEC, 4)
        got = run_sharded(
            handles.program,
            ExecOptions(strategy="processes", threads=8, trace=True),
            placements=MIXED_PLACEMENTS,
            transport=transport,
        )
        _assert_identical(ref, got, f"shortestpath x8 {transport}")
        assert len(got.nodes) == 8

    @pytest.mark.parametrize("transport", ["pipe", "tcp"])
    def test_counter_crash_recovery_per_transport(self, transport):
        ref = counter_program().run(ExecOptions(trace=True))
        got = run_sharded(
            counter_program(),
            ExecOptions(strategy="processes", threads=2, trace=True),
            fault_kill=(1, 4),
            transport=transport,
        )
        _assert_identical(ref, got, f"counter kill {transport}")
        assert got.nodes[1]["recovered"] == 1


# -- data plane ----------------------------------------------------------------


class TestPeerMesh:
    def test_routed_queries_travel_peer_to_peer(self):
        """With Done pinned to node 0, every other node's Done probes
        must cross the mesh — visible as peer traffic and served
        queries, while the coordinator's control plane stays free of
        query payloads (relay-era served counts lived there)."""
        handles = build_shortestpath_program(SPEC, 4)
        got = run_sharded(
            handles.program,
            ExecOptions(strategy="processes", threads=3),
            placements=MIXED_PLACEMENTS,
        )
        assert sum(n["remote_queries"] for n in got.nodes) > 0
        assert sum(n["queries_served"] for n in got.nodes) > 0
        assert all(n["peer_msgs"] > 0 for n in got.nodes)
        assert all(n["peer_bytes_sent"] > 0 for n in got.nodes)
        text = format_nodes(got.nodes)
        assert "peer msgs" in text and "peer sent B" in text

    def test_shuffle_trace_events_are_node_tagged_meta(self):
        got = run_sharded(
            counter_program(),
            ExecOptions(strategy="processes", threads=2, trace=True),
        )
        shuffles = [e for e in got.trace.events if e.kind == "shuffle"]
        assert shuffles, "no shuffle events recorded"
        assert all(e.meta for e in shuffles)
        assert all("node" in e.data and "staged" in e.data for e in shuffles)
        # staged put-sets later consumed as refs: the pipelined shuffle
        # actually replaced value re-sends on the control plane
        assert sum(e.data["ref_inserts"] for e in shuffles) > 0


# -- crash recovery with a shuffled query in flight ---------------------------


class TestInFlightQueryCrash:
    def test_owner_dies_between_request_and_reply(self):
        """Kill the pinned owner of Done *while it is serving* a peer
        query (between the requester's send and the owner's reply); the
        attempt-epoch retry must still converge byte-identically."""
        ref = run_shortestpath(SPEC, ExecOptions(trace=True), n_gen_tasks=4)
        handles = build_shortestpath_program(SPEC, 4)
        got = run_sharded(
            handles.program,
            ExecOptions(strategy="processes", threads=3, trace=True),
            placements=MIXED_PLACEMENTS,
            fault_die_on_serve=(0, 3),
        )
        _assert_identical(ref, got, "in-flight query crash")
        assert got.nodes[0]["recovered"] == 1
        assert any("worker 0 died" in n for n in got.stats.notes)


# -- spawn handshake (bounded hello wait) -------------------------------------


class TestSpawnHandshake:
    def test_hung_fork_is_retried(self, monkeypatch, tmp_path):
        monkeypatch.setenv("DIST_HANG_HELLO", f"1:{tmp_path}:1")
        monkeypatch.setenv("DIST_HELLO_TIMEOUT", "0.5")
        ref = counter_program().run(ExecOptions())
        got = run_sharded(counter_program(), n_workers=2)
        assert ref.output_text() == got.output_text()
        assert len(list(tmp_path.iterdir())) == 1  # exactly one hung fork
        assert any("hello handshake" in n for n in got.stats.notes)

    def test_permanently_hung_worker_fails_clearly(self, monkeypatch, tmp_path):
        monkeypatch.setenv("DIST_HANG_HELLO", f"1:{tmp_path}:99")
        monkeypatch.setenv("DIST_HELLO_TIMEOUT", "0.5")
        with pytest.raises(EngineError, match="never completed the spawn handshake"):
            run_sharded(counter_program(), n_workers=2)
        assert len(list(tmp_path.iterdir())) == 3  # every fork attempt hung


# -- worker-lost error surface ------------------------------------------------


class TestWorkerLostError:
    def test_names_node_step_and_attempt(self):
        e = WorkerLostError(3, 7, 2)
        assert str(e) == "worker 3 was lost during step 7 (attempt 2)"
        assert (e.node, e.step, e.attempt) == (3, 7, 2)
        assert isinstance(e, EngineError)

    def test_bare_node(self):
        assert str(WorkerLostError(1)) == "worker 1 was lost"


# -- wire-counter carryover across a crash ------------------------------------


class TestCounterCarryover:
    def test_crashed_incarnation_traffic_survives_in_report(self):
        """The replacement starts with fresh WireStats; the coordinator
        must fold the crashed incarnation's last done-record snapshot
        into the node's totals, so a crashed node reports at least as
        much traffic as a clean run (recovery only adds messages)."""
        clean = run_sharded(counter_program(), n_workers=2)
        crashed = run_sharded(counter_program(), n_workers=2, fault_kill=(1, 6))
        assert crashed.nodes[1]["recovered"] == 1
        assert crashed.nodes[1]["msgs"] >= clean.nodes[1]["msgs"]
        # a done frame cannot include its own size in the snapshot it
        # carries, so the carried bytes run one frame behind exactness
        assert crashed.nodes[1]["bytes_sent"] >= 0.95 * clean.nodes[1]["bytes_sent"]


# -- adaptive rebalancing -----------------------------------------------------


class TestRebalancer:
    def test_uniform_spread_before_any_plan(self):
        r = Rebalancer(4)
        assert [r.fire_node(h) for h in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_no_plan_when_balanced_or_off_window(self):
        r = Rebalancer(2, every=16)
        assert r.maybe_rebalance(15, {0: 100, 1: 100}) is None  # off-window
        assert r.maybe_rebalance(16, {0: 100, 1: 100}) is None  # balanced
        assert r.maybe_rebalance(16, {0: 2, 1: 0}) is None  # too few fires
        assert Rebalancer(2, every=0).maybe_rebalance(16, {0: 500, 1: 0}) is None
        assert Rebalancer(1).maybe_rebalance(16, {0: 500}) is None

    def test_skew_produces_inverse_weighted_plan(self):
        r = Rebalancer(2, every=16)
        plan = r.maybe_rebalance(16, {0: 180, 1: 20})
        assert plan is not None
        assert plan["step"] == 16 and plan["fires"] == [180, 20]
        assert r.weights[1] > r.weights[0]
        # the reweighted cut must shift spread fires toward the idle
        # node (string keys FNV-hash across the whole spread space)
        share = sum(
            1 for h in range(10_000) if r.fire_node(spread_hash((f"k{h}",))) == 1
        )
        assert share > 6_000
        note = Rebalancer.describe(plan)
        assert "rebalance plan at step 16" in note
        assert "reweighted" in note

    def test_weights_are_clamped(self):
        r = Rebalancer(4, every=16)
        r.maybe_rebalance(16, {0: 20_000})
        assert r.weights == [0.25, 4.0, 4.0, 4.0]

    def test_aggressive_rebalancing_is_semantically_transparent(self):
        """Rebalancing moves only fire placement, never ownership, so
        even a plan every superstep keeps the run byte-identical."""
        p, _ = build_ship_program()
        ref = p.run(ExecOptions(trace=True))
        p2, _ = build_ship_program()
        got = run_sharded(
            p2,
            ExecOptions(strategy="processes", threads=3, trace=True),
            placements={name: Replicated() for name in p2.schemas()},
            rebalance_every=1,
        )
        _assert_identical(ref, got, "ship rebalance_every=1")


# -- locality summary ---------------------------------------------------------


class TestLocalitySummary:
    def test_counts_verdicts(self):
        handles = build_shortestpath_program(SPEC, 4)
        findings = check_locality(handles.program, MIXED_PLACEMENTS)
        summary = locality_summary(findings)
        assert sum(summary.values()) == len(findings)
        assert summary.get("routed", 0) > 0  # the pinned Done probes
