"""Tests for the distributed execution substrate (§2 stage 3)."""

from __future__ import annotations

import pytest

from repro.core import ExecOptions, Program
from repro.core.errors import EngineError
from repro.dist import (
    DistOptions,
    NetModel,
    OnNode,
    Partitioned,
    PlacementMap,
    Replicated,
    StepTraffic,
    check_locality,
    run_distributed,
)
from repro.dist.placement import _stable_hash


class TestPlacement:
    def test_stable_hash_deterministic(self):
        assert _stable_hash("abc") == _stable_hash("abc")
        assert _stable_hash(42) == 42
        assert _stable_hash(True) == 1

    def test_partitioned_home(self):
        p = Program()
        T = p.table("T", "int k -> int v")
        part = Partitioned("k")
        t = T.new(10, 1)
        assert part.home(t, 4) == 10 % 4
        assert part.home_for_value(10, 4) == part.home(t, 4)

    def test_placement_map_defaults(self):
        p = Program()
        Keyed = p.table("Keyed", "int k -> int v")
        NoKey = p.table("NoKey", "str s, int n")
        Strs = p.table("Strs", "str a, str b")
        pm = PlacementMap(p.schemas())
        assert pm["Keyed"] == Partitioned("k")
        assert pm["NoKey"] == Partitioned("n")  # first int field
        assert isinstance(pm["Strs"], Replicated)
        del Keyed, NoKey, Strs

    def test_placement_map_validates(self):
        p = Program()
        p.table("T", "int k -> int v")
        with pytest.raises(Exception):
            PlacementMap(p.schemas(), {"T": Partitioned("nope")})
        with pytest.raises(EngineError, match="unknown tables"):
            PlacementMap(p.schemas(), {"Ghost": Replicated()})

    def test_on_node_validation(self):
        with pytest.raises(EngineError):
            OnNode(-1)

    def test_home_of(self):
        p = Program()
        T = p.table("T", "int k -> int v")
        pm = PlacementMap(p.schemas(), {"T": Replicated()})
        assert pm.home_of(T.new(1, 1), 4) is None


class TestNetwork:
    def test_batching_same_pair(self):
        tr = StepTraffic(NetModel(latency=10, per_tuple=2))
        tr.send(0, 1, 3)
        tr.send(0, 1, 2)
        assert tr.batches == {(0, 1): 5}
        assert tr.messages() == 1
        assert tr.tuples_moved() == 5
        # one latency + 5 marshalled tuples, charged at both NICs
        assert tr.comm_time(2) == pytest.approx(10 + 2 * 5)

    def test_self_send_free(self):
        tr = StepTraffic(NetModel())
        tr.send(1, 1, 5)
        assert tr.messages() == 0 and tr.comm_time(2) == 0.0

    def test_remote_query_round_trip(self):
        net = NetModel(latency=10, per_result=1)
        tr = StepTraffic(net)
        tr.remote_query(0, 1, 4)
        assert tr.messages() == 2
        assert tr.comm_time(2) == pytest.approx(2 * 10 + 4)

    def test_busiest_nic_bounds(self):
        tr = StepTraffic(NetModel(latency=10, per_tuple=0))
        tr.send(0, 1, 1)
        tr.send(0, 2, 1)
        tr.send(0, 3, 1)
        assert tr.comm_time(4) == pytest.approx(30)  # node 0 sends all three


def counter_program(limit=6):
    p = Program("dist-counter")
    T = p.table("T", "int t -> int v", orderby=("Int", "seq t"))
    Log = p.table("Log", "int t, int v", orderby=("Out", "seq t"))
    p.order("Int", "Out")

    @p.foreach(T)
    def step(ctx, t):
        ctx.println(f"t={t.t} v={t.v}")
        ctx.put(Log.new(t.t, t.v))
        if t.t < limit:
            ctx.put(T.new(t.t + 1, t.v * 2))

    p.put(T.new(0, 1))
    return p


class TestDistEngine:
    def test_output_identical_to_single_node(self):
        ref = counter_program().run().output
        for nodes in (1, 2, 4, 7):
            r = run_distributed(counter_program(), n_nodes=nodes)
            assert r.output == ref, nodes

    def test_deterministic(self):
        a = run_distributed(counter_program(), n_nodes=3)
        b = run_distributed(counter_program(), n_nodes=3)
        assert a.output == b.output and a.elapsed == b.elapsed
        assert a.shard_sizes == b.shard_sizes

    def test_partitioned_shards_disjoint_and_complete(self):
        r = run_distributed(counter_program(), n_nodes=4)
        assert r.table_total("T") == 7
        assert r.table_total("Log") == 7

    def test_replicated_everywhere(self):
        p = counter_program()
        r = run_distributed(p, n_nodes=3, placements={"Log": Replicated()})
        assert r.shard_sizes["Log"] == [7, 7, 7]

    def test_on_node_pins(self):
        r = run_distributed(
            counter_program(), n_nodes=3, placements={"Log": OnNode(2)}
        )
        assert r.shard_sizes["Log"] == [0, 0, 7]

    def test_engine_single_use(self):
        from repro.dist import DistEngine

        e = DistEngine(counter_program(), DistOptions(n_nodes=2))
        e.run()
        with pytest.raises(EngineError, match="once"):
            e.run()

    def test_max_steps(self):
        with pytest.raises(EngineError, match="max_steps"):
            run_distributed(counter_program(limit=50), n_nodes=2, max_steps=5)

    def test_remote_queries_counted(self):
        """A query binding a foreign partition value must travel."""
        p = Program("remote")
        Data = p.table("Data", "int k -> int v", orderby=("A", "seq k"))
        Go = p.table("Go", "int g", orderby=("B", "seq g"))
        p.order("A", "B")
        seen = {}

        @p.foreach(Go)
        def probe(ctx, g):
            row = ctx.get_uniq(Data, k=g.g + 1)
            seen[g.g] = row.v if row else None

        for k in range(6):
            p.put(Data.new(k, k * 10))
        p.put(Go.new(2))
        r = run_distributed(
            p,
            n_nodes=3,
            placements={"Data": Partitioned("k"), "Go": Partitioned("g")},
        )
        assert seen == {2: 30}
        # Go(2) fires on node 2; Data(3) lives on node 0: remote
        assert r.remote_queries >= 1

    def test_unbound_partition_field_broadcasts(self):
        p = Program("bcast")
        Data = p.table("Data", "int k, int v", orderby=("A",))
        Go = p.table("Go", "int g", orderby=("B",))
        p.order("A", "B")
        got = {}

        @p.foreach(Go)
        def agg(ctx, g):
            got["n"] = len(ctx.get(Data))  # no partition binding

        for k in range(8):
            p.put(Data.new(k, k))
        p.put(Go.new(0))
        r = run_distributed(p, n_nodes=4, placements={"Data": Partitioned("k")})
        assert got["n"] == 8  # gather returns everything
        assert r.remote_queries >= 3  # asked every other shard

    def test_comm_time_grows_with_scatter(self):
        """Partitioning the Log table somewhere other than its producer
        forces traffic; replicating it forces more."""
        base = run_distributed(counter_program(), n_nodes=4)
        repl = run_distributed(
            counter_program(), n_nodes=4, placements={"Log": Replicated()}
        )
        assert repl.tuples_moved >= base.tuples_moved
        assert repl.comm_time >= base.comm_time

    def test_imbalance_metric(self):
        r = run_distributed(counter_program(), n_nodes=2)
        assert r.imbalance >= 1.0

    def test_invalid_nodes(self):
        with pytest.raises(EngineError):
            DistOptions(n_nodes=0)


class TestLocalityCheck:
    def test_copartitioned_query_is_local(self):
        from repro.lang import compile_source

        src = """
        table Reading(int tick, int sensor -> int value)
            orderby (Int, seq tick, Reading, par sensor)
        put new Reading(0, 0, 5)
        foreach (Reading r) {
          val prev = get uniq? Reading(r.tick - 1, r.sensor)
          println(prev == null)
        }
        """
        p = compile_source(src)
        findings = check_locality(p, {"Reading": Partitioned("sensor")})
        assert [f.verdict for f in findings] == ["local"]
        assert "co-partitioned" in findings[0].detail

    def test_bound_but_not_copartitioned_routes(self):
        from repro.lang import compile_source

        src = """
        table Reading(int tick, int sensor -> int value)
            orderby (Int, seq tick, Reading, par sensor)
        put new Reading(0, 0, 5)
        foreach (Reading r) {
          val other = get uniq? Reading(r.tick, r.sensor + 1)
          println(other == null)
        }
        """
        p = compile_source(src)
        findings = check_locality(p, {"Reading": Partitioned("sensor")})
        assert findings[0].verdict == "routed"

    def test_unbound_partition_field_broadcasts(self):
        from repro.lang import compile_source

        src = """
        table Edge(int src, int dst, int w) orderby (Edge)
        table Go(int g) orderby (Go)
        order Edge < Go
        put new Go(0)
        foreach (Go g) {
          for (e : get Edge([w > 0])) { println(e.src) }
        }
        """
        p = compile_source(src)
        findings = check_locality(p, {"Edge": Partitioned("src")})
        assert findings[0].verdict == "broadcast"

    def test_replicated_is_local(self):
        from repro.lang import compile_source

        src = """
        table Config(int k -> int v) orderby (Conf)
        table Go(int g) orderby (Go)
        order Conf < Go
        put new Go(0)
        foreach (Go g) { println(get uniq? Config(0) == null) }
        """
        p = compile_source(src)
        findings = check_locality(p, {"Config": Replicated()})
        assert findings[0].verdict == "local"

    def test_rule_without_meta_is_unknown(self):
        p = Program()
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def opaque(ctx, t): ...

        findings = check_locality(p)
        assert findings[0].verdict == "unknown"

    def test_meta_less_rule_names_trigger_table(self):
        p = Program()
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def opaque(ctx, t): ...

        findings = check_locality(p)
        assert findings[0].table == "T"  # not the old "?"
        assert "observed" in findings[0].detail

    def test_observed_shapes_classify_meta_less_rules(self):
        p = Program("observed")
        Data = p.table("Data", "int k -> int v", orderby=("A", "seq k"))
        Go = p.table("Go", "int g", orderby=("B", "seq g"))
        p.order("A", "B")

        @p.foreach(Go)
        def probe(ctx, g):
            ctx.get(Data, k=g.g)      # binds the partition field
            ctx.get(Data)             # full scan -> broadcast

        p.put(Data.new(0, 1))
        p.put(Go.new(0))
        result = p.run(ExecOptions(collect_stats=True))
        findings = check_locality(
            p, {"Data": Partitioned("k")}, observed=result.stats
        )
        probe_findings = [f for f in findings if f.rule == "probe"]
        # one finding per observed query shape, real table names
        assert {f.table for f in probe_findings} == {"Data"}
        assert {f.verdict for f in probe_findings} == {"routed", "broadcast"}
        assert all(f.table != "?" for f in findings)

    def test_observed_replicated_and_pinned(self):
        p = Program("observed2")
        Cfg = p.table("Cfg", "int k -> int v", orderby=("A", "seq k"))
        Go = p.table("Go", "int g", orderby=("B", "seq g"))
        p.order("A", "B")

        @p.foreach(Go)
        def peek(ctx, g):
            ctx.get(Cfg, k=0)

        p.put(Cfg.new(0, 1))
        p.put(Go.new(0))
        result = p.run()
        f_repl = check_locality(p, {"Cfg": Replicated()}, observed=result.stats)
        assert [f.verdict for f in f_repl if f.rule == "peek"] == ["local"]
        f_pin = check_locality(p, {"Cfg": OnNode(1)}, observed=result.stats)
        assert [f.verdict for f in f_pin if f.rule == "peek"] == ["routed"]


class TestOnNodePinValidation:
    def test_out_of_range_pin_rejected_at_map_construction(self):
        p = Program()
        p.table("T", "int k -> int v")
        with pytest.raises(EngineError, match=r"node 5.*4 node"):
            PlacementMap(p.schemas(), {"T": OnNode(5)}, n_nodes=4)

    def test_boundary_pin_rejected(self):
        p = Program()
        p.table("T", "int k -> int v")
        with pytest.raises(EngineError, match=r"node 4.*0\.\.3"):
            PlacementMap(p.schemas(), {"T": OnNode(4)}, n_nodes=4)

    def test_out_of_range_pin_rejected_at_run_start(self):
        with pytest.raises(EngineError, match=r"'Log'.*node 5.*4 node"):
            run_distributed(
                counter_program(), n_nodes=4, placements={"Log": OnNode(5)}
            )

    def test_home_of_never_wraps(self):
        p = Program()
        T = p.table("T", "int k -> int v")
        pm = PlacementMap(p.schemas(), {"T": OnNode(5)})  # size unknown yet
        with pytest.raises(EngineError, match="node 5"):
            pm.home_of(T.new(1, 1), 4)

    def test_in_range_pin_still_works(self):
        r = run_distributed(
            counter_program(), n_nodes=4, placements={"Log": OnNode(3)}
        )
        assert r.shard_sizes["Log"] == [0, 0, 0, 7]


class TestExecKnobSurfacing:
    def test_unsupported_knobs_become_notes(self):
        eo = ExecOptions(
            no_delta=frozenset({"Log"}),
            no_gamma=frozenset({"Log"}),
            coalesce_steps=True,
        )
        r = run_distributed(counter_program(), n_nodes=2, exec_options=eo)
        joined = "\n".join(r.stats.notes)
        assert "no_delta" in joined
        assert "no_gamma" in joined
        assert "coalesce_steps" in joined
        # the run itself is unaffected
        assert r.output == counter_program().run().output

    def test_strict_escalates_to_engine_warning(self):
        from repro.core.errors import EngineWarning

        eo = ExecOptions(coalesce_steps=True, causality_check="strict")
        with pytest.warns(EngineWarning, match="coalesce_steps"):
            run_distributed(counter_program(), n_nodes=2, exec_options=eo)

    def test_honoured_knobs_fold_in(self):
        eo = ExecOptions(max_steps=5)
        with pytest.raises(EngineError, match="max_steps"):
            run_distributed(counter_program(limit=50), n_nodes=2, exec_options=eo)

    def test_default_exec_options_are_silent(self):
        r = run_distributed(
            counter_program(), n_nodes=2, exec_options=ExecOptions()
        )
        assert r.stats.notes == []
