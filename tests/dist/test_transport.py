"""Wire transport layer (repro.dist.transport): framing, EOF,
drain-while-sending, listeners, and transport selection."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.core.errors import EngineError
from repro.dist.transport import (
    MAX_FRAME_BYTES,
    PeerListener,
    SocketChannel,
    connect_channel,
    resolve_transport,
    wait_readable,
)


def _pair() -> tuple[SocketChannel, SocketChannel]:
    a, b = socket.socketpair()
    return SocketChannel(a), SocketChannel(b)


class TestSocketChannel:
    def test_roundtrip_preserves_frame_boundaries(self):
        a, b = _pair()
        a.send_bytes(b"first")
        a.send_bytes(b"")
        a.send_bytes(b"x" * 100_000)
        assert b.recv_bytes() == b"first"
        assert b.recv_bytes() == b""
        assert b.recv_bytes() == b"x" * 100_000
        a.close()
        b.close()

    def test_clean_close_reads_as_eof(self):
        a, b = _pair()
        a.close()
        with pytest.raises(EOFError):
            b.recv_bytes()
        b.close()

    def test_poll(self):
        a, b = _pair()
        assert not b.poll(0.0)
        a.send_bytes(b"ping")
        assert b.poll(1.0)
        a.close()
        b.close()

    def test_oversized_frame_rejected(self):
        a, b = _pair()
        class Huge(bytes):
            def __len__(self):
                return MAX_FRAME_BYTES + 1
        with pytest.raises(EngineError, match="exceeds the transport ceiling"):
            a.send_bytes(Huge())
        a.close()
        b.close()

    def test_send_with_drain_services_incoming_while_blocked(self):
        # shrink both send buffers so a large frame cannot fit: without
        # the drain callback pulling the peer's traffic, two senders
        # facing each other like this would deadlock
        raw_a, raw_b = socket.socketpair()
        for s in (raw_a, raw_b):
            s.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
        a, b = SocketChannel(raw_a), SocketChannel(raw_b)
        big = b"y" * (1 << 20)
        received: list[bytes] = []

        def drain() -> None:
            while a.poll(0.0):
                received.append(a.recv_bytes())

        echo = threading.Thread(target=lambda: b.send_bytes(b.recv_bytes()))
        echo.start()
        a.send_with_drain(big, drain)
        echo.join(timeout=30)
        while len(received) == 0:
            received.append(a.recv_bytes())
        assert received == [big]
        a.close()
        b.close()


class TestPeerListener:
    @pytest.mark.parametrize("transport", ["pipe", "tcp"])
    def test_accept_and_roundtrip(self, transport):
        lst = PeerListener(transport, tag="t")
        kind = "tcp" if transport == "tcp" else "unix"
        assert lst.address[0] == kind
        client = connect_channel(lst.address)
        server = lst.accept(timeout=5.0)
        assert server is not None
        client.send_bytes(b"hello")
        assert server.recv_bytes() == b"hello"
        server.send_bytes(b"back")
        assert client.recv_bytes() == b"back"
        client.close()
        server.close()
        lst.close()

    def test_accept_timeout_returns_none(self):
        lst = PeerListener("pipe", tag="t")
        assert lst.accept(timeout=0.05) is None
        lst.close()


class TestSelection:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("DIST_TRANSPORT", "tcp")
        assert resolve_transport("pipe") == "pipe"

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv("DIST_TRANSPORT", "tcp")
        assert resolve_transport(None) == "tcp"

    def test_default_is_pipe(self, monkeypatch):
        monkeypatch.delenv("DIST_TRANSPORT", raising=False)
        assert resolve_transport(None) == "pipe"

    def test_unknown_transport_rejected(self):
        with pytest.raises(EngineError, match="unknown dist transport"):
            resolve_transport("carrier-pigeon")


class TestWaitReadable:
    def test_empty_input(self):
        assert wait_readable([], timeout=0.0) == []

    def test_mixed_listener_and_channel(self):
        lst = PeerListener("pipe", tag="t")
        a, b = _pair()
        assert wait_readable([lst, b], timeout=0.0) == []
        a.send_bytes(b"z")
        ready = wait_readable([lst, b], timeout=1.0)
        assert ready == [b]
        a.close()
        b.close()
        lst.close()
