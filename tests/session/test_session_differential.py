"""Session equivalence: chunked feed/settle and snapshot→restore runs
must be byte-identical to single-shot ``Engine.run``.

Every example app's inputs are split into causally-aligned chunks
(:func:`repro.core.causal_chunks`) and driven through an
:class:`~repro.core.EngineSession` with one ``settle()`` per chunk,
under every strategy.  The claim checked is the §1.3 determinism
guarantee extended to *incremental arrival*: output text, per-table
sizes, and the semantic trace are identical to feeding everything at
once.  ``admit`` events (an external tuple entering Delta) are compared
as a step-independent multiset — *when* input arrived is exactly the
degree of freedom a session adds; everything downstream of admission
must not notice.

The snapshot leg cuts each run in half: settle chunk 1, snapshot,
restore into a fresh session (fresh strategy, fresh stores), feed the
rest, and compare the combined run against single-shot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.median import build_median_program
from repro.apps.pvwatts import build_pvwatts_program
from repro.apps.sensors import build_sensor_program
from repro.apps.ship import build_ship_program
from repro.apps.shortestpath import GraphSpec, build_shortestpath_program
from repro.core import EngineSession, ExecOptions, causal_chunks
from repro.csvio.synth import generate_csv_bytes
from repro.gamma.nativearray import TwoIterationArrayStore
from repro.trace import format_divergence, trace_diff

CONFIGS = [
    pytest.param(("sequential", 1), id="sequential"),
    pytest.param(("forkjoin", 4), id="forkjoin-4"),
    pytest.param(("threads", 3), id="threads-3"),
    pytest.param(("chaos", 7), id="chaos-7"),
]


def _options(config, **extra) -> ExecOptions:
    strategy, n = config
    if strategy == "chaos":
        return ExecOptions(strategy="chaos", chaos_seed=n, trace=True, **extra)
    return ExecOptions(strategy=strategy, threads=n, trace=True, **extra)


@pytest.fixture(scope="module")
def small_csv() -> bytes:
    lines = generate_csv_bytes(n_years=1).split(b"\n")
    return b"\n".join(lines[:1200]) + b"\n"


def ship_case(_csv):
    p, _ = build_ship_program()
    return p, {}


def pvwatts_case(csv):
    h = build_pvwatts_program({"large1000.csv": csv}, n_readers=2)
    return h.program, {}


def shortestpath_case(_csv):
    h = build_shortestpath_program(
        GraphSpec(n_vertices=60, extra_edges=90, seed=3), n_gen_tasks=4
    )
    return h.program, {}


def sensors_case(_csv):
    h = build_sensor_program(n_ticks=12, n_sensors=4)
    return h.program, {}


def median_case(_csv):
    vals = np.random.default_rng(9).random(300)
    h = build_median_program(vals, n_regions=6)
    n = len(vals)
    return h.program, {
        "store_overrides": {"Data": lambda schema: TwoIterationArrayStore(schema, n)}
    }


APPS = {
    "ship": ship_case,
    "pvwatts": pvwatts_case,
    "shortestpath": shortestpath_case,
    "sensors": sensors_case,
    "median": median_case,
}

#: apps whose stores all support checkpointing (median's two-iteration
#: ring store deliberately opts out — see test_snapshot.py)
SNAPSHOT_APPS = ["ship", "pvwatts", "shortestpath", "sensors"]


def _admit_multiset(trace):
    return sorted(
        (e.kind, tuple(sorted(e.data.items())))
        for e in trace.events
        if not e.meta and e.kind == "admit"
    )


def _non_admit(trace):
    return [e for e in trace.events if not e.meta and e.kind != "admit"]


def _assert_equivalent(ref, got, label):
    assert got.output_text() == ref.output_text(), f"output diverged: {label}"
    assert got.table_sizes == ref.table_sizes, f"table sizes diverged: {label}"
    assert got.steps == ref.steps, f"step count diverged: {label}"
    d = trace_diff(_non_admit(ref.trace), _non_admit(got.trace))
    assert d is None, f"trace diverged ({label}): {format_divergence(d)}"
    assert _admit_multiset(ref.trace) == _admit_multiset(got.trace), (
        f"admitted tuples diverged: {label}"
    )


def _single_shot(case, csv, config):
    program, extra = case(csv)
    return program.run(_options(config, **extra))


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("app", list(APPS), ids=list(APPS))
class TestChunkedFeed:
    def test_chunked_equals_single_shot(self, app, config, small_csv):
        ref = _single_shot(APPS[app], small_csv, config)
        program, extra = APPS[app](small_csv)
        puts = list(program.initial_puts)
        program.initial_puts.clear()  # the session owns the input stream
        with program.session(_options(config, **extra)) as s:
            chunks = causal_chunks(s.database, puts, 4)
            for chunk in chunks:
                s.feed(chunk)
                s.settle()
        _assert_equivalent(ref, s.result, f"{app} under {config}, {len(chunks)} chunks")


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("app", SNAPSHOT_APPS, ids=SNAPSHOT_APPS)
class TestSnapshotRestore:
    def test_snapshot_restore_equals_single_shot(self, app, config, small_csv, tmp_path):
        ref = _single_shot(APPS[app], small_csv, config)
        program, extra = APPS[app](small_csv)
        puts = list(program.initial_puts)
        program.initial_puts.clear()
        opts = _options(config, **extra)
        path = tmp_path / "session.snapshot.json"

        first = program.session(opts).open()
        chunks = causal_chunks(first.database, puts, 2)
        first.feed(chunks[0])
        first.settle()
        first.snapshot(path)
        first.close()  # the "crashed" producer; its result is discarded

        resumed = EngineSession.restore(path, program, opts)
        for chunk in chunks[1:]:
            resumed.feed(chunk)
            resumed.settle()
        got = resumed.close()
        _assert_equivalent(ref, got, f"{app} snapshot/restore under {config}")
