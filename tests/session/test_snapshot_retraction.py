"""Snapshot round-trips of retraction sessions.

A checkpoint taken mid-stream — after deletes have run, with support
counts, retracted-base records and pending rederivations live — must
restore into a session whose continued feeding is byte-identical to the
uninterrupted run.  The support index is the new state of snapshot v2;
these tests prove it serialises completely (support counts, firing
read/put/query footprints, keyed output) and that version/option
mismatches are refused rather than silently mis-restored.
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    Delete,
    EngineError,
    EngineSession,
    ExecOptions,
    Program,
    causal_chunks,
)
from repro.core.snapshot import SNAPSHOT_VERSION


def _sensor_fixture():
    from repro.apps.sensors import build_sensor_stream

    handles, events = build_sensor_stream(n_ticks=12, n_sensors=4)
    with handles.program.session(ExecOptions(strategy="sequential")) as probe:
        chunks = causal_chunks(probe.database, events, 2)
    return handles, chunks


def _dijkstra_fixture():
    p = Program("dijkstra-snap")
    Edge = p.table("Edge", "int src, int dst, int value", orderby=("Edge",))
    Estimate = p.table(
        "Estimate", "int vertex, int distance", orderby=("Int", "seq distance", "Estimate")
    )
    Done = p.table(
        "Done", "int vertex -> int distance", orderby=("Int", "seq distance", "Done")
    )
    p.order("Edge", "Int")
    p.order("Estimate", "Done")

    @p.foreach(Estimate, assume_stratified=True)
    def dijkstra(ctx, dist):
        if (
            ctx.get_uniq(Done, vertex=dist.vertex, ranges={"distance": {"lt": dist.distance}})
            is None
        ):
            ctx.println(f"shortest path to {dist.vertex} is {dist.distance}")
            ctx.put(Done.new(dist.vertex, dist.distance))
            for edge in ctx.get(Edge, dist.vertex):
                if ctx.get_uniq(Done, vertex=edge.dst) is None:
                    ctx.put(Estimate.new(edge.dst, dist.distance + edge.value))

    return p, Edge, Estimate


OPTS = ExecOptions(strategy="sequential", retraction=True)


def test_sensor_checkpoint_after_deletes_resumes_byte_identical():
    handles, (c1, c2) = _sensor_fixture()
    victims = [c1[3], c1[7]]
    late = handles.Reading.new(20, 9, 777)

    # uninterrupted reference
    with handles.program.session(OPTS) as s:
        s.feed(c1)
        s.settle()
        s.feed([Delete(victims[0])])
        s.settle()
        s.feed(c2 + [Delete(victims[1]), late])
        s.settle()
        full = s.close()

    # checkpoint after the first delete, restore, continue
    with handles.program.session(OPTS) as s1:
        s1.feed(c1)
        s1.settle()
        s1.feed([Delete(victims[0])])
        s1.settle()
        payload = s1.snapshot()
    # the document must actually serialise (JSON round-trip)
    payload = json.loads(json.dumps(payload))
    assert payload["support"] is not None
    s2 = EngineSession.restore(payload, handles.program, OPTS)
    s2.feed(c2 + [Delete(victims[1]), late])
    s2.settle()
    resumed = s2.close()

    assert resumed.output_text() == full.output_text()
    assert resumed.table_sizes == full.table_sizes
    assert resumed.stats.retractions == full.stats.retractions
    assert resumed.stats.rederivations == full.stats.rederivations


def test_dijkstra_checkpoint_mid_repair_state_resumes_byte_identical():
    """Checkpoint while retracted-base records and support counts carry
    real history (a deleted edge, a rederived frontier), then keep
    deleting after restore — the DRed paths must survive the trip."""
    p, Edge, Estimate = _dijkstra_fixture()
    edges = [
        Edge.new(0, 1, 1),
        Edge.new(0, 2, 4),
        Edge.new(1, 2, 1),
        Edge.new(1, 3, 5),
        Edge.new(2, 3, 1),
    ]

    def run(session_steps):
        with p.session(OPTS) as s:
            s.feed(edges + [Estimate.new(0, 0)])
            s.settle()
            s.feed([Delete(edges[0])])
            s.settle()
            if session_steps == "full":
                s.feed([Delete(edges[1])])
                s.settle()
                return s.close(), None
            return None, s.snapshot()

    full, _ = run("full")
    _, payload = run("checkpoint")
    payload = json.loads(json.dumps(payload))
    s2 = EngineSession.restore(payload, p, OPTS)
    s2.feed([Delete(edges[1])])
    s2.settle()
    resumed = s2.close()
    assert resumed.output_text() == full.output_text()
    assert resumed.table_sizes == full.table_sizes


def test_snapshot_support_section_shape():
    p, Edge, Estimate = _dijkstra_fixture()
    with p.session(OPTS) as s:
        s.feed([Edge.new(0, 1, 1), Estimate.new(0, 0)])
        s.settle()
        s.feed([Delete(Edge.new(0, 1, 1))])
        s.settle()
        s.feed([Edge.new(0, 1, 2)])  # re-assert with a new weight
        s.settle()
        payload = s.snapshot()
    sup = payload["support"]
    assert payload["version"] == SNAPSHOT_VERSION
    assert sup["next_fid"] >= len(sup["firings"])
    # the deleted-then-reasserted edge is base again, not retracted
    base = {tuple(e[1]) for e in sup["base"] if e[0] == "Edge"}
    assert (0, 1, 2) in base
    retracted = {tuple(e[1]) for e in sup["retracted_base"]}
    assert (0, 1, 1) in retracted
    # firings carry their query footprints
    assert any(f["queries"] for f in sup["firings"])


def test_restore_refuses_version_mismatch():
    """Snapshots from before retraction support (v1) — or any other
    version — are refused with a precise error, not mis-restored."""
    handles, (c1, _c2) = _sensor_fixture()
    with handles.program.session(OPTS) as s:
        s.feed(c1)
        s.settle()
        payload = s.snapshot()
    old = dict(payload)
    old["version"] = 1
    with pytest.raises(EngineError, match="version 1 is not the supported"):
        EngineSession.restore(old, handles.program, OPTS)


def test_restore_refuses_retraction_option_mismatch():
    handles, (c1, _c2) = _sensor_fixture()
    with handles.program.session(OPTS) as s:
        s.feed(c1)
        s.settle()
        payload = s.snapshot()
    with pytest.raises(EngineError, match="retraction state disagrees"):
        EngineSession.restore(
            payload, handles.program, ExecOptions(strategy="sequential")
        )

    with handles.program.session(ExecOptions(strategy="sequential")) as s2:
        s2.feed(c1)
        s2.settle()
        plain = s2.snapshot()
    with pytest.raises(EngineError, match="retraction state disagrees"):
        EngineSession.restore(plain, handles.program, OPTS)


def test_non_retraction_snapshot_roundtrip_still_works():
    """v2 without a support section is the plain-session format; the
    round-trip of an ordinary session is unchanged."""
    handles, (c1, c2) = _sensor_fixture()
    plain = ExecOptions(strategy="sequential")
    with handles.program.session(plain) as s:
        s.feed(c1)
        s.settle()
        payload = json.loads(json.dumps(s.snapshot()))
    assert payload["support"] is None
    s2 = EngineSession.restore(payload, handles.program, plain)
    s2.feed(c2)
    s2.settle()
    resumed = s2.close()

    with handles.program.session(plain) as s3:
        s3.feed(c1)
        s3.settle()
        s3.feed(c2)
        s3.settle()
        full = s3.close()
    assert resumed.output_text() == full.output_text()
    assert resumed.table_sizes == full.table_sizes
