"""Crash-recovery producer: feed the first chunk of the sensor stream,
settle, snapshot, then die hard (``os._exit``) without closing the
session — simulating a process killed mid-run.  The parent test (and
the CI crash-recovery smoke job) restores from the snapshot and checks
the finished run against single-shot output.

Usage: python _crash_child.py <snapshot-path> <n_chunks>
"""

from __future__ import annotations

import os
import sys

from repro.apps.sensors import build_sensor_stream
from repro.core import causal_chunks

N_TICKS = 12
N_SENSORS = 4

CRASH_EXIT_CODE = 3


def main() -> None:
    dest, n_chunks = sys.argv[1], int(sys.argv[2])
    handles, events = build_sensor_stream(n_ticks=N_TICKS, n_sensors=N_SENSORS)
    session = handles.program.session().open()
    chunks = causal_chunks(session.database, events, n_chunks)
    session.feed(chunks[0])
    session.settle()
    session.snapshot(dest)
    sys.stdout.flush()
    os._exit(CRASH_EXIT_CODE)  # no close(), no atexit: a real crash


if __name__ == "__main__":
    main()
