"""Kill a producer process after its snapshot, restore in this process,
and verify the recovered run is byte-identical to never having crashed."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.apps.sensors import build_sensor_stream, run_sensors
from repro.core import EngineSession, causal_chunks

CHILD = Path(__file__).with_name("_crash_child.py")
N_CHUNKS = 3


def test_restore_after_hard_kill(tmp_path):
    snap = tmp_path / "crash.snapshot.json"
    proc = subprocess.run(
        [sys.executable, str(CHILD), str(snap), str(N_CHUNKS)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 3, proc.stderr  # the child died as scripted
    assert snap.exists()

    # the events the child never got to feed (deterministic regeneration)
    handles, events = build_sensor_stream(n_ticks=12, n_sensors=4)
    resumed = EngineSession.restore(snap, handles.program)
    chunks = causal_chunks(resumed.database, events, N_CHUNKS)
    for chunk in chunks[1:]:
        resumed.feed(chunk)
        resumed.settle()
    got = resumed.close()

    ref = run_sensors(n_ticks=12, n_sensors=4)
    assert got.output_text() == ref.output_text()
    assert got.table_sizes == ref.table_sizes
    assert got.steps == ref.steps
