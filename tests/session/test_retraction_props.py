"""Property-based retraction testing: random interleaved insert/delete
scripts, with the single invariant that matters —

    incremental settle  ==  from-scratch rerun on the surviving facts

checked on both output text and Gamma table sizes.  Hypothesis owns the
script shape (which facts, insert/delete interleaving, where the settle
boundaries fall), so shrinking reports a minimal diverging script.

Two programs: the sensors stream (aggregate/negative queries, counting
repair) and the in-test dijkstra rule (recursive derivation, DRed
repair).  Scripts are generated *valid by construction* — inserts pick
keys not currently asserted (re-asserting a retracted key with a new
value is allowed and exercised), deletes pick currently-live facts.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Delete, ExecOptions, Program

# -- script generation ---------------------------------------------------------

N_TICKS = 5
N_SENSORS = 3


@st.composite
def sensor_scripts(draw):
    """A list of feed batches of Insert/Delete events over the
    (tick, sensor) key grid, valid by construction."""
    live: dict[tuple[int, int], int] = {}  # key -> generation
    gen = 0
    events = []
    n_events = draw(st.integers(min_value=1, max_value=24))
    for _ in range(n_events):
        dead = [
            (t, s)
            for t in range(N_TICKS)
            for s in range(N_SENSORS)
            if (t, s) not in live
        ]
        do_delete = live and (not dead or draw(st.booleans()))
        if do_delete:
            key = draw(st.sampled_from(sorted(live)))
            events.append(("delete", key, live.pop(key)))
        else:
            key = draw(st.sampled_from(dead))
            gen += 1
            live[key] = gen
            events.append(("insert", key, gen))
    # settle boundaries: each event may close a batch
    batches, cur = [], []
    for ev in events:
        cur.append(ev)
        if draw(st.booleans()):
            batches.append(cur)
            cur = []
    if cur:
        batches.append(cur)
    return batches


def _value(key, gen):
    """Deterministic reading value; generation-dependent so re-asserting
    a retracted key carries a *different* value (a true update)."""
    t, s = key
    return 40 + 9 * t + 5 * s + 17 * gen


def _materialise(Reading, batches):
    """Script -> concrete event batches + the surviving fact list."""
    fact = lambda key, gen: Reading.new(key[0], key[1], _value(key, gen))  # noqa: E731
    out, live = [], {}
    for batch in batches:
        evs = []
        for op, key, gen in batch:
            if op == "insert":
                live[key] = gen
                evs.append(fact(key, gen))
            else:
                live.pop(key, None)
                evs.append(Delete(fact(key, gen)))
        out.append(evs)
    survivors = [fact(k, g) for k, g in sorted(live.items())]
    return out, survivors


def _assert_equivalent(program, batches, survivors):
    inc_opts = ExecOptions(strategy="sequential", retraction=True)
    with program.session(inc_opts) as s:
        for batch in batches:
            s.feed(batch)
            s.settle()
        inc = s.close()
    with program.session(ExecOptions(strategy="sequential")) as s2:
        s2.feed(survivors)
        scr = s2.close()
    assert inc.output_text() == scr.output_text()
    assert inc.table_sizes == scr.table_sizes


# -- sensors -------------------------------------------------------------------


def _sensor_program():
    from repro.apps.sensors import build_sensor_stream

    handles, _events = build_sensor_stream(n_ticks=N_TICKS, n_sensors=N_SENSORS)
    return handles.program, handles.Reading


_SENSORS = _sensor_program()


@settings(max_examples=40, deadline=None)
@given(script=sensor_scripts())
def test_sensor_scripts_incremental_equals_scratch(script):
    program, Reading = _SENSORS
    batches, survivors = _materialise(Reading, script)
    _assert_equivalent(program, batches, survivors)


# -- dijkstra (recursive: DRed repair under random scripts) --------------------


def _dijkstra_program():
    p = Program("dijkstra-props")
    Edge = p.table("Edge", "int src, int dst, int value", orderby=("Edge",))
    Estimate = p.table(
        "Estimate", "int vertex, int distance", orderby=("Int", "seq distance", "Estimate")
    )
    Done = p.table(
        "Done", "int vertex -> int distance", orderby=("Int", "seq distance", "Done")
    )
    p.order("Edge", "Int")
    p.order("Estimate", "Done")

    @p.foreach(Estimate, assume_stratified=True)
    def dijkstra(ctx, dist):
        if (
            ctx.get_uniq(Done, vertex=dist.vertex, ranges={"distance": {"lt": dist.distance}})
            is None
        ):
            ctx.println(f"shortest path to {dist.vertex} is {dist.distance}")
            ctx.put(Done.new(dist.vertex, dist.distance))
            for edge in ctx.get(Edge, dist.vertex):
                if ctx.get_uniq(Done, vertex=edge.dst) is None:
                    ctx.put(Estimate.new(edge.dst, dist.distance + edge.value))

    return p, Edge, Estimate


_DIJKSTRA = _dijkstra_program()
N_VERTS = 4


@st.composite
def edge_scripts(draw):
    """Insert/delete scripts over the directed edges of a 4-vertex
    graph (weights generation-dependent, so re-asserted edges change)."""
    live: dict[tuple[int, int], int] = {}
    gen = 0
    events = []
    pairs = [(a, b) for a in range(N_VERTS) for b in range(N_VERTS) if a != b]
    n_events = draw(st.integers(min_value=1, max_value=16))
    for _ in range(n_events):
        dead = [p for p in pairs if p not in live]
        do_delete = live and (not dead or draw(st.booleans()))
        if do_delete:
            key = draw(st.sampled_from(sorted(live)))
            events.append(("delete", key, live.pop(key)))
        else:
            key = draw(st.sampled_from(dead))
            gen += 1
            live[key] = gen
            events.append(("insert", key, gen))
    batches, cur = [], []
    for ev in events:
        cur.append(ev)
        if draw(st.booleans()):
            batches.append(cur)
            cur = []
    if cur:
        batches.append(cur)
    return batches


def _edge_weight(key, gen):
    return 1 + (key[0] + 2 * key[1] + 3 * gen) % 7


@settings(max_examples=40, deadline=None)
@given(script=edge_scripts())
def test_dijkstra_scripts_incremental_equals_scratch(script):
    p, Edge, Estimate = _DIJKSTRA
    origin = Estimate.new(0, 0)
    fact = lambda key, gen: Edge.new(key[0], key[1], _edge_weight(key, gen))  # noqa: E731
    batches, live = [], {}
    for i, batch in enumerate(script):
        evs = []
        if i == 0:
            evs.append(origin)
        for op, key, gen in batch:
            if op == "insert":
                live[key] = gen
                evs.append(fact(key, gen))
            else:
                live.pop(key, None)
                evs.append(Delete(fact(key, gen)))
        batches.append(evs)
    survivors = [origin] + [fact(k, g) for k, g in sorted(live.items())]
    _assert_equivalent(p, batches, survivors)
