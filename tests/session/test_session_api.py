"""EngineSession lifecycle: open/feed/settle/close, admission modes,
knob-override notes, and guaranteed strategy release."""

from __future__ import annotations

import warnings

import pytest

from repro.core import (
    AdmissionWarning,
    CausalityError,
    EngineError,
    EngineSession,
    EngineWarning,
    ExecOptions,
    Program,
    RetentionHint,
    UnknownTableError,
    causal_chunks,
)


def counter_program(limit: int = 5):
    p = Program("counter")
    T = p.table("T", "int t -> int v", orderby=("Int", "seq t"))
    Log = p.table("Log", "int t, int v", orderby=("Out", "seq t"))
    p.order("Int", "Out")

    @p.foreach(T)
    def step(ctx, t):
        ctx.println(f"t={t.t} v={t.v}")
        ctx.put(Log.new(t.t, t.v))
        if t.t < limit:
            ctx.put(T.new(t.t + 1, t.v * 2))

    return p, T, Log


def stream_program():
    """A single-stratum stream: the high-water mark stays in the Int
    ordering, so later ticks remain admissible after a settle."""
    p = Program("stream")
    T = p.table("T", "int t, int v", orderby=("Int", "seq t"))

    @p.foreach(T)
    def log(ctx, t):
        ctx.println(f"t={t.t} v={t.v}")

    return p, T


class TestLifecycle:
    def test_feed_settle_close_matches_run(self):
        p1, T1, _ = counter_program()
        p1.put(T1.new(0, 1))
        ref = p1.run()

        p2, T2, _ = counter_program()
        with p2.session() as s:
            s.feed([T2.new(0, 1)])
            inc = s.settle()
        assert inc.steps == ref.steps
        assert s.result.output_text() == ref.output_text()
        assert s.result.table_sizes == ref.table_sizes

    def test_incremental_results_are_deltas(self):
        p, T, _ = counter_program(limit=2)
        s = p.session().open()
        s.feed([T.new(0, 1)])
        r1 = s.settle()
        assert r1.steps > 0 and r1.output
        r2 = s.settle()  # nothing pending: an empty increment
        assert r2.steps == 0 and r2.output == []
        total = s.close()
        assert total.steps == r1.steps
        assert total.output[: len(r1.output)] == r1.output

    def test_feed_before_open_rejected(self):
        p, T, _ = counter_program()
        s = p.session()
        with pytest.raises(EngineError, match="open"):
            s.feed([T.new(0, 1)])

    def test_closed_session_rejects_everything(self):
        p, T, _ = counter_program()
        s = p.session().open()
        s.close()
        with pytest.raises(EngineError, match="closed"):
            s.feed([T.new(0, 1)])
        with pytest.raises(EngineError, match="closed"):
            s.settle()
        with pytest.raises(EngineError, match="closed"):
            s.open()

    def test_close_is_idempotent(self):
        p, T, _ = counter_program()
        s = p.session().open()
        s.feed([T.new(0, 1)])
        r1 = s.close()
        assert s.close() is r1

    def test_close_settles_pending_work(self):
        p, T, _ = counter_program()
        s = p.session().open()
        s.feed([T.new(0, 1)])
        r = s.close()  # no explicit settle
        assert r.steps == 12 and len(r.output) == 6

    def test_result_before_close_rejected(self):
        p, T, _ = counter_program()
        s = p.session().open()
        with pytest.raises(EngineError, match="close"):
            s.result

    def test_per_settle_stats_recorded(self):
        p, T, _ = counter_program(limit=2)
        with p.session() as s:
            s.feed([T.new(0, 1)])
            s.settle()
            s.settle()
        settles = s.result.stats.settles
        assert [rec["settle"] for rec in settles] == [1, 2]
        assert settles[0]["fed"] == 1 and settles[0]["steps"] > 0
        assert settles[1]["fed"] == 0 and settles[1]["steps"] == 0

    def test_settle_table_in_run_report(self):
        from repro.stats import run_report

        p, T, _ = counter_program(limit=2)
        with p.session() as s:
            s.feed([T.new(0, 1)])
            s.settle()
            s.settle()
        text = run_report(s.result)
        assert "settle" in text and "fed" in text

    def test_program_session_kwargs(self):
        p, T, _ = counter_program()
        s = p.session(strategy="forkjoin", threads=2)
        assert s.options.strategy == "forkjoin" and s.options.threads == 2
        s.open()
        s.close()


class TestAdmission:
    def test_high_water_advances(self):
        p, T, _ = counter_program()
        s = p.session().open()
        assert s.high_water is None
        s.feed([T.new(0, 1)])
        s.settle()
        assert s.high_water is not None
        s.close()

    def test_strict_rejects_below_mark_and_session_survives(self):
        p, T, _ = counter_program()
        s = p.session().open()
        s.feed([T.new(0, 1)])
        s.settle()
        with pytest.raises(CausalityError, match="high-water"):
            s.feed([T.new(2, 99)])
        # the rejection left no partial state: the session still settles
        r = s.close()
        assert not s.quarantined
        assert all("99" not in line for line in r.output)

    def test_strict_rejection_is_all_or_nothing(self):
        """A batch with one late tuple admits none of the batch."""
        p, T, _ = counter_program()
        s = p.session().open()
        s.feed([T.new(0, 1)])
        s.settle()
        before = len(s.output)
        with pytest.raises(CausalityError):
            s.feed([T.new(6, 64), T.new(2, 99)])
        s.settle()
        assert len(s.output) == before
        s.close()

    def test_warn_quarantines_below_mark(self):
        p, T = stream_program()
        s = p.session(admission="warn").open()
        s.feed([T.new(3, 1)])
        s.settle()
        with pytest.warns(AdmissionWarning, match="quarantined"):
            rep = s.feed([T.new(2, 99), T.new(6, 64)])
        assert rep.admitted == 1
        assert [t.values for t in rep.quarantined] == [(2, 99)]
        r = s.close()
        assert [t.values for t in s.quarantined] == [(2, 99)]
        assert any("t=6" in line for line in r.output)
        assert all("99" not in line for line in r.output)

    def test_at_mark_is_admissible(self):
        """Equality with the high-water mark is sound (>= rule)."""
        p, T = stream_program()
        s = p.session().open()
        s.feed([T.new(3, 1)])
        s.settle()
        rep = s.feed([T.new(3, 2)])  # same equivalence class as the mark
        assert rep.admitted == 1
        s.close()

    def test_unknown_table_rejected(self):
        p, T, _ = counter_program()
        q = Program("other")
        X = q.table("X", "int a", orderby=("Int", "seq a"))
        s = p.session().open()
        with pytest.raises(UnknownTableError):
            s.feed([X.new(1)])
        s.close()

    def test_bad_admission_mode_rejected(self):
        with pytest.raises(EngineError, match="admission"):
            ExecOptions(admission="loose")


class TestKnobOverrideNotes:
    """Satellite: silent knob overrides become visible."""

    def test_metering_forced_on_is_noted(self):
        p, T, _ = counter_program()
        p.put(T.new(0, 1))
        r = p.run(ExecOptions(strategy="forkjoin", metering="off"))
        assert any("metering" in n for n in r.stats.notes)

    def test_metering_note_warns_under_strict(self):
        p, T, _ = counter_program()
        p.put(T.new(0, 1))
        with pytest.warns(EngineWarning, match="metering"):
            p.run(
                ExecOptions(
                    strategy="forkjoin", metering="off", causality_check="strict"
                )
            )

    def test_metering_off_honoured_without_note(self):
        p, T, _ = counter_program()
        p.put(T.new(0, 1))
        r = p.run(ExecOptions(strategy="threads", threads=2, metering="off"))
        assert not any("metering" in n for n in r.stats.notes)

    def test_coalesce_disabled_by_retention_is_noted(self):
        p, T, _ = counter_program()
        p.put(T.new(0, 1))
        r = p.run(
            ExecOptions(
                coalesce_steps=True, retention={"T": RetentionHint("t", 2)}
            )
        )
        assert any("coalesce" in n for n in r.stats.notes)

    def test_coalesce_note_warns_under_strict(self):
        p, T, _ = counter_program()
        p.put(T.new(0, 1))
        with pytest.warns(EngineWarning, match="coalesce"):
            p.run(
                ExecOptions(
                    coalesce_steps=True,
                    retention={"T": RetentionHint("t", 2)},
                    causality_check="strict",
                )
            )

    def test_notes_shown_in_run_report(self):
        from repro.stats import run_report

        p, T, _ = counter_program()
        p.put(T.new(0, 1))
        r = p.run(ExecOptions(strategy="forkjoin", metering="off"))
        assert "notes:" in run_report(r)


class TestStrategyRelease:
    """Satellite: reuse raises a clear error naming the session API, and
    strategy.close() runs even when a step raises."""

    def test_engine_reuse_names_session_api(self):
        from repro.core.engine import Engine

        p, T, _ = counter_program()
        p.put(T.new(0, 1))
        e = Engine(p, ExecOptions())
        e.run()
        with pytest.raises(EngineError, match="EngineSession"):
            e.run()

    def test_pool_released_when_rule_raises(self):
        p = Program("boom")
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def explode(ctx, t):
            raise RuntimeError("kaboom")

        p.put(T.new(0))
        from repro.core.engine import Engine

        e = Engine(p, ExecOptions(strategy="threads", threads=2))
        with pytest.raises(Exception, match="kaboom"):
            e.run()
        assert e.strategy._pool is None  # ThreadPoolExecutor released

    def test_pool_released_on_max_steps(self):
        p = Program("forever")
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def diverge(ctx, t):
            ctx.put(T.new(t.t + 1))

        p.put(T.new(0))
        from repro.core.engine import Engine

        e = Engine(p, ExecOptions(strategy="threads", threads=2, max_steps=5))
        with pytest.raises(EngineError, match="max_steps"):
            e.run()
        assert e.strategy._pool is None

    def test_session_context_manager_releases_on_error(self):
        p = Program("boom")
        T = p.table("T", "int t", orderby=("Int", "seq t"))

        @p.foreach(T)
        def explode(ctx, t):
            raise RuntimeError("kaboom")

        with pytest.raises(Exception, match="kaboom"):
            with p.session(strategy="threads", threads=2) as s:
                s.feed([T.new(0)])
                s.settle()
        assert s.closed
        assert s.strategy._pool is None
        with pytest.raises(EngineError, match="error"):
            s.close()

    def test_strategy_close_idempotent_after_clean_close(self):
        p, T, _ = counter_program()
        with p.session(strategy="threads", threads=2) as s:
            s.feed([T.new(0, 1)])
        assert s.strategy._pool is None
        s.strategy.close()  # second close is a no-op


class TestChunkHelpers:
    def test_causal_chunks_align_to_classes(self):
        p = Program("ticks")
        T = p.table("T", "int t, int i", orderby=("Int", "seq t", "par i"))

        @p.foreach(T)
        def noop(ctx, t):
            pass

        s = p.session().open()
        tuples = [T.new(t, i) for t in (2, 0, 1, 0, 2) for i in range(2)]
        chunks = causal_chunks(s.database, tuples, 2)
        assert sum(len(c) for c in chunks) == len(tuples)
        # no equivalence class straddles a chunk boundary
        seen_t = [sorted({x.t for x in c}) for c in chunks]
        assert seen_t == [[0, 1], [2]]
        # chunked feeding is admissible end to end under strict mode
        for c in chunks:
            s.feed(c)
            s.settle()
        s.close()

    def test_causal_chunks_empty(self):
        p, _, _ = counter_program()
        s = p.session().open()
        assert causal_chunks(s.database, [], 3) == []
        s.close()
