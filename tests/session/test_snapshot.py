"""Snapshot/restore mechanics: roundtrip fidelity, the refusal matrix
(wrong version / program / schema / strategy), pending-Delta capture,
quarantine persistence, and the checkpoint opt-out for ring stores."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (
    EngineError,
    EngineSession,
    ExecOptions,
    Program,
    SchemaError,
)
from repro.core.snapshot import SNAPSHOT_FORMAT, SNAPSHOT_VERSION, build_snapshot


def chain_program(limit: int = 6):
    p = Program("chain")
    T = p.table("T", "int t, int v", orderby=("Int", "seq t"))

    @p.foreach(T)
    def extend(ctx, t):
        ctx.println(f"t={t.t} v={t.v}")
        if t.t < limit:
            ctx.put(T.new(t.t + 1, t.v + t.t))

    return p, T


class TestRoundtrip:
    def test_roundtrip_preserves_run_state(self, tmp_path):
        p, T = chain_program()
        path = tmp_path / "snap.json"
        s = p.session(trace=True).open()
        s.feed([T.new(0, 1)])
        s.settle()
        s.snapshot(path)
        expected = s.close()

        r = EngineSession.restore(path, p, ExecOptions(trace=True))
        assert r.steps == expected.steps
        assert list(r.output) == list(expected.output)
        assert r.high_water is not None
        got = r.close()
        assert got.output_text() == expected.output_text()
        assert got.table_sizes == expected.table_sizes

    def test_snapshot_captures_pending_delta(self, tmp_path):
        """A feed without a settle leaves work in Delta; the snapshot
        carries it and the restored session settles it."""
        p, T = chain_program()
        path = tmp_path / "snap.json"
        s = p.session().open()
        s.feed([T.new(0, 1)])  # no settle: 1 tuple pending
        payload = s.snapshot(path)
        assert payload["delta"] == [["T", [0, 1]]]
        s.close()

        p2, _ = chain_program()
        r = EngineSession.restore(path, p2)
        inc = r.settle()
        assert inc.steps == 7
        r.close()

    def test_snapshot_returns_document_without_dest(self):
        p, T = chain_program()
        with p.session() as s:
            s.feed([T.new(0, 1)])
            s.settle()
            doc = s.snapshot()
        assert doc["format"] == SNAPSHOT_FORMAT
        assert doc["version"] == SNAPSHOT_VERSION
        assert doc["program"] == "chain"
        json.dumps(doc)  # the document is JSON-serialisable as-is

    def test_quarantine_survives_roundtrip(self, tmp_path):
        p, T = chain_program(limit=0)
        path = tmp_path / "snap.json"
        s = p.session(admission="warn").open()
        s.feed([T.new(5, 1)])
        s.settle()
        with pytest.warns(Warning):
            s.feed([T.new(2, 99)])
        s.snapshot(path)
        s.close()

        r = EngineSession.restore(path, p, ExecOptions(admission="warn"))
        assert [t.values for t in r.quarantined] == [(2, 99)]
        r.close()

    def test_high_water_enforced_after_restore(self, tmp_path):
        p, T = chain_program(limit=0)
        path = tmp_path / "snap.json"
        s = p.session().open()
        s.feed([T.new(5, 1)])
        s.settle()
        s.snapshot(path)
        s.close()

        from repro.core import CausalityError

        r = EngineSession.restore(path, p)
        with pytest.raises(CausalityError, match="high-water"):
            r.feed([T.new(2, 99)])
        r.close()


class TestRefusals:
    def _snapshot(self, tmp_path):
        p, T = chain_program()
        path = tmp_path / "snap.json"
        with p.session() as s:
            s.feed([T.new(0, 1)])
            s.settle()
            s.snapshot(path)
        return p, path

    def _rewrite(self, path, **patch):
        doc = json.loads(path.read_text())
        doc.update(patch)
        path.write_text(json.dumps(doc))

    def test_wrong_format_tag(self, tmp_path):
        p, path = self._snapshot(tmp_path)
        self._rewrite(path, format="something-else")
        with pytest.raises(EngineError, match="format"):
            EngineSession.restore(path, p)

    def test_wrong_version(self, tmp_path):
        p, path = self._snapshot(tmp_path)
        self._rewrite(path, version=SNAPSHOT_VERSION + 1)
        with pytest.raises(EngineError, match="version"):
            EngineSession.restore(path, p)

    def test_wrong_program(self, tmp_path):
        _, path = self._snapshot(tmp_path)
        other = Program("other")
        other.table("T", "int t, int v", orderby=("Int", "seq t"))
        with pytest.raises(EngineError, match="program"):
            EngineSession.restore(path, other)

    def test_wrong_schema(self, tmp_path):
        _, path = self._snapshot(tmp_path)
        twin = Program("chain")  # same name, different fields
        twin.table("T", "int t, int w", orderby=("Int", "seq t"))
        with pytest.raises(EngineError, match="schema"):
            EngineSession.restore(path, twin)

    def test_wrong_strategy(self, tmp_path):
        p, path = self._snapshot(tmp_path)
        with pytest.raises(EngineError, match="strategy"):
            EngineSession.restore(path, p, ExecOptions(strategy="forkjoin", threads=2))


class TestCheckpointOptOut:
    def test_ring_store_refuses_snapshot(self):
        """The two-iteration array store's contents are arrival-order
        dependent; snapshotting it would be unsound, so it opts out."""
        from repro.apps.median import build_median_program
        from repro.gamma.nativearray import TwoIterationArrayStore

        vals = np.random.default_rng(1).random(40)
        h = build_median_program(vals, n_regions=2)
        opts = ExecOptions(
            store_overrides={
                "Data": lambda schema: TwoIterationArrayStore(schema, len(vals))
            }
        )
        puts = list(h.program.initial_puts)
        h.program.initial_puts.clear()
        with h.program.session(opts) as s:
            s.feed(puts)
            s.settle()
            with pytest.raises(SchemaError, match="checkpoint"):
                build_snapshot(s)
