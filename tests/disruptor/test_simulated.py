"""Tests for the virtual-time pipeline model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disruptor import (
    BlockingWaitStrategy,
    BusySpinWaitStrategy,
    PipelineCosts,
    simulate_pipeline,
)

RR = [i % 4 for i in range(2000)]       # balanced round-robin keys
HOT = [0] * 2000                         # one hot consumer


class TestModelShape:
    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            simulate_pipeline([], 0, 1)
        with pytest.raises(ValueError):
            simulate_pipeline([], 1, 0)

    def test_empty_stream(self):
        r = simulate_pipeline([], 4, 4)
        assert r.elapsed == 0 or r.elapsed >= 0

    def test_more_cores_not_slower(self):
        e = [simulate_pipeline(RR, 4, c).elapsed for c in (1, 2, 4, 8)]
        assert e == sorted(e, reverse=True)

    def test_work_conserved_across_cores(self):
        w1 = simulate_pipeline(RR, 4, 1).total_work
        w8 = simulate_pipeline(RR, 4, 8).total_work
        assert w1 == pytest.approx(w8, rel=0.05)

    def test_hot_consumer_causes_stalls_and_slowdown(self):
        costs = PipelineCosts(parse=1.0, proc=3.0, scan=0.05)
        hot = simulate_pipeline(HOT, 4, 8, ring_size=64, costs=costs)
        rr = simulate_pipeline(RR, 4, 8, ring_size=64, costs=costs)
        assert hot.producer_stalls > 0
        assert hot.elapsed > rr.elapsed

    def test_bigger_ring_absorbs_bursts(self):
        costs = PipelineCosts(parse=1.0, proc=3.0, scan=0.05)
        # alternating hot months in runs shorter than the big ring
        keys = ([0] * 100 + [1] * 100) * 5
        small = simulate_pipeline(keys, 2, 8, ring_size=16, costs=costs)
        big = simulate_pipeline(keys, 2, 8, ring_size=512, costs=costs)
        assert big.producer_stalls <= small.producer_stalls
        assert big.elapsed <= small.elapsed + 1e-9

    def test_busyspin_burns_work(self):
        blocking = simulate_pipeline(RR, 12, 4, wait=BlockingWaitStrategy())
        spinning = simulate_pipeline(RR, 12, 4, wait=BusySpinWaitStrategy())
        assert spinning.total_work > blocking.total_work

    def test_blocking_wins_when_oversubscribed(self):
        """Table 1's outcome: 12 consumers on 8 cores -> Blocking beats
        BusySpin (spin burn steals cores from real work)."""
        blocking = simulate_pipeline(RR, 12, 8, wait=BlockingWaitStrategy())
        spinning = simulate_pipeline(RR, 12, 8, wait=BusySpinWaitStrategy())
        assert blocking.elapsed < spinning.elapsed

    def test_consumer_busy_reflects_ownership(self):
        r = simulate_pipeline([0, 0, 0, 1], 2, 4)
        assert r.consumer_busy[0] > r.consumer_busy[1]

    def test_bound_label(self):
        r = simulate_pipeline(RR, 4, 1)
        assert r.bound in ("pipeline", "work")


# -- properties -----------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 5), min_size=1, max_size=300),
    st.integers(1, 8),
    st.integers(1, 16),
)
def test_elapsed_at_least_work_over_cores(keys, consumers, cores):
    r = simulate_pipeline(keys, consumers, cores)
    assert r.elapsed >= r.total_work / cores - 1e-6


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 11), min_size=1, max_size=300))
def test_elapsed_at_least_pipeline_critical_path(keys):
    r = simulate_pipeline(keys, 12, 32)
    assert r.elapsed >= r.pipeline_time - 1e-6


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=10, max_size=200), st.integers(1, 12))
def test_deterministic(keys, cores):
    a = simulate_pipeline(keys, 4, cores)
    b = simulate_pipeline(keys, 4, cores)
    assert a == b
