"""Threaded Disruptor pipeline tests (functional, GIL-friendly sizes)."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import DisruptorError
from repro.disruptor import (
    BlockingWaitStrategy,
    BusySpinWaitStrategy,
    Disruptor,
    EventHandler,
    SleepingWaitStrategy,
    YieldingWaitStrategy,
)


class Collector(EventHandler):
    def __init__(self):
        self.seen: list = []
        self.started = False
        self.stopped = False

    def on_start(self):
        self.started = True

    def on_event(self, value, sequence, end_of_batch):
        self.seen.append(value)

    def on_shutdown(self):
        self.stopped = True


class TestSingleConsumer:
    @pytest.mark.parametrize(
        "wait",
        [BlockingWaitStrategy, BusySpinWaitStrategy, YieldingWaitStrategy, SleepingWaitStrategy],
    )
    def test_fifo_delivery(self, wait):
        d = Disruptor(32, wait())
        c = Collector()
        d.handle_events_with(c)
        d.start()
        d.publish_all(list(range(200)), batch=8)
        d.halt_when_drained()
        assert c.seen == list(range(200))
        assert c.started and c.stopped

    def test_backpressure_small_ring(self):
        """Ring far smaller than the stream: producer must stall, not
        overrun; every event still arrives exactly once."""
        d = Disruptor(4)
        c = Collector()
        d.handle_events_with(c)
        d.start()
        d.publish_all(list(range(500)), batch=2)
        d.halt_when_drained()
        assert c.seen == list(range(500))

    def test_function_handler(self):
        d = Disruptor(16)
        seen = []
        d.handle_events_with(lambda v, s, eob: seen.append((v, eob)))
        d.start()
        d.publish("x")
        d.halt_when_drained()
        assert seen[0][0] == "x"


class TestTopologies:
    def test_multiple_independent_consumers_see_everything(self):
        d = Disruptor(32)
        cs = [Collector() for _ in range(3)]
        d.handle_events_with(*cs)
        d.start()
        d.publish_all(list(range(100)), batch=10)
        d.halt_when_drained()
        for c in cs:
            assert c.seen == list(range(100))

    def test_then_chain_ordering(self):
        """Stage 2 must never see an event before stage 1 processed it."""
        d = Disruptor(16)
        stage1_done: set[int] = set()
        violations = []
        lock = threading.Lock()

        def stage1(v, s, eob):
            with lock:
                stage1_done.add(v)

        def stage2(v, s, eob):
            with lock:
                if v not in stage1_done:
                    violations.append(v)

        d.handle_events_with(stage1).then(stage2)
        d.start()
        d.publish_all(list(range(300)), batch=4)
        d.halt_when_drained()
        assert violations == []

    def test_gating_is_final_stage_only(self):
        d = Disruptor(16)
        g1 = d.handle_events_with(Collector())
        g1.then(Collector())
        d.start()
        # only the final consumer's sequence gates the producer
        assert len(d.ring.gating) == 1


class TestLifecycle:
    def test_start_twice_rejected(self):
        d = Disruptor(8)
        d.handle_events_with(Collector())
        d.start()
        try:
            with pytest.raises(DisruptorError):
                d.start()
        finally:
            d.halt()

    def test_start_without_handlers_rejected(self):
        with pytest.raises(DisruptorError):
            Disruptor(8).start()

    def test_add_handler_after_start_rejected(self):
        d = Disruptor(8)
        d.handle_events_with(Collector())
        d.start()
        try:
            with pytest.raises(DisruptorError):
                d.handle_events_with(Collector())
        finally:
            d.halt()

    def test_drained_empty_pipeline(self):
        d = Disruptor(8)
        d.handle_events_with(Collector())
        d.start()
        d.halt_when_drained()  # nothing published: immediately drained

    def test_sentinel_pattern(self):
        """The §6.3 idiom: in-band end marker instead of halt."""
        d = Disruptor(16)
        done = threading.Event()
        seen = []

        def consumer(v, s, eob):
            if v is None:
                done.set()
            else:
                seen.append(v)

        d.handle_events_with(consumer)
        d.start()
        d.publish_all([1, 2, 3])
        d.publish(None)
        assert done.wait(timeout=5.0)
        d.halt()
        assert seen == [1, 2, 3]
