"""Tests for ring-buffer mechanics: sequences, claims, publication."""

from __future__ import annotations

import pytest

from repro.core.errors import DisruptorError
from repro.disruptor import (
    INITIAL,
    MultiThreadedClaimStrategy,
    RingBuffer,
    Sequence,
    SingleThreadedClaimStrategy,
    minimum_sequence,
)


class TestSequence:
    def test_initial(self):
        assert Sequence().get() == INITIAL

    def test_set_get(self):
        s = Sequence()
        s.set(5)
        assert s.get() == 5

    def test_minimum(self):
        a, b = Sequence(3), Sequence(7)
        assert minimum_sequence([a, b], INITIAL) == 3
        assert minimum_sequence([], 42) == 42

    def test_repr(self):
        assert "Sequence(-1)" in repr(Sequence())


class TestRingBuffer:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(DisruptorError):
            RingBuffer(3)
        with pytest.raises(DisruptorError):
            RingBuffer(0)
        RingBuffer(8)  # ok

    def test_publish_and_get(self):
        ring = RingBuffer(8)
        ring.add_gating_sequences(Sequence(100))  # no backpressure
        hi = ring.publish_batch(["a", "b", "c"])
        assert hi == 2
        assert [ring.get(i) for i in range(3)] == ["a", "b", "c"]
        assert ring.cursor.get() == 2

    def test_wraparound_overwrites(self):
        ring = RingBuffer(4)
        ring.add_gating_sequences(Sequence(100))
        ring.publish_batch([0, 1, 2, 3])
        ring.publish_batch([4])
        assert ring.get(4) == 4
        assert ring.get(0) == 4  # same slot, recycled

    def test_producer_without_gating_rejected(self):
        ring = RingBuffer(4)
        with pytest.raises(DisruptorError, match="gating"):
            ring.next()

    def test_batch_larger_than_ring_rejected(self):
        ring = RingBuffer(4)
        ring.add_gating_sequences(Sequence(100))
        with pytest.raises(DisruptorError):
            ring.publish_batch(list(range(5)))

    def test_empty_batch_noop(self):
        ring = RingBuffer(4)
        ring.add_gating_sequences(Sequence(100))
        assert ring.publish_batch([]) == INITIAL

    def test_manual_claim_set_publish(self):
        ring = RingBuffer(8)
        ring.add_gating_sequences(Sequence(100))
        hi = ring.next(2)
        ring.set(hi - 1, "x")
        ring.set(hi, "y")
        ring.publish(hi - 1, hi)
        assert ring.get(0) == "x" and ring.get(1) == "y"

    def test_barrier_tracks_cursor(self):
        ring = RingBuffer(8)
        ring.add_gating_sequences(Sequence(100))
        barrier = ring.new_barrier()
        assert barrier.available() == INITIAL
        ring.publish_batch([1, 2])
        assert barrier.available() == 1

    def test_barrier_with_dependents(self):
        ring = RingBuffer(8)
        ring.add_gating_sequences(Sequence(100))
        upstream = Sequence(0)
        barrier = ring.new_barrier([upstream])
        ring.publish_batch([1, 2, 3])
        assert barrier.available() == 0  # limited by upstream consumer
        upstream.set(2)
        assert barrier.available() == 2


class TestClaimStrategies:
    def test_single_threaded_sequential_claims(self):
        c = SingleThreadedClaimStrategy(8)
        gate = [Sequence(100)]
        assert c.next(1, gate) == 0
        assert c.next(3, gate) == 3
        c.publish(0, 3)
        assert c.cursor.get() == 3

    def test_multi_producer_out_of_order_publish(self):
        c = MultiThreadedClaimStrategy(16)
        gate = [Sequence(100)]
        a = c.next(2, gate)  # 0..1
        b = c.next(2, gate)  # 2..3
        c.publish(2, 3)  # second batch lands first
        assert c.cursor.get() == INITIAL  # gap: nothing visible yet
        c.publish(0, 1)
        assert c.cursor.get() == 3  # contiguous now
        del a, b
