"""Tests for the numpy-backed native-array stores (§6.4/§6.6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SchemaError
from repro.core.query import build_query
from repro.core.schema import TableSchema
from repro.core.tuples import TableHandle
from repro.gamma import NativeArrayStore, TwoIterationArrayStore


def matrix_env():
    schema = TableSchema("Matrix", "int mat, int row, int col -> int value")
    return TableHandle(schema), NativeArrayStore(schema, (2, 4, 4))


class TestNativeArray:
    def test_schema_validation(self):
        with pytest.raises(SchemaError):
            NativeArrayStore(TableSchema("T", "int a, int b"), (2, 2))  # no key
        with pytest.raises(SchemaError):
            NativeArrayStore(TableSchema("T", "str k -> int v"), (2,))  # str key
        with pytest.raises(SchemaError):
            NativeArrayStore(TableSchema("T", "int k -> str v"), (2,))  # str value
        with pytest.raises(SchemaError):
            NativeArrayStore(TableSchema("T", "int k -> int v"), (2, 2))  # dim mismatch

    def test_insert_lookup(self):
        T, s = matrix_env()
        t = T.new(0, 1, 2, 42)
        assert s.insert(t)
        assert not s.insert(t)
        assert t in s
        assert s.value_at(0, 1, 2) == 42
        assert s.value_at(0, 0, 0) is None
        assert s.lookup_key((0, 1, 2)) == t
        assert s.lookup_key((1, 1, 1)) is None

    def test_key_conflict(self):
        T, s = matrix_env()
        s.insert(T.new(0, 1, 2, 42))
        with pytest.raises(SchemaError, match="conflict"):
            s.insert(T.new(0, 1, 2, 43))

    def test_bulk_set_plane(self):
        T, s = matrix_env()
        plane = np.arange(16).reshape(4, 4)
        s.bulk_set((0,), plane)
        assert len(s) == 16
        assert s.value_at(0, 2, 3) == 11
        assert (s.array[0] == plane).all()

    def test_bulk_set_idempotent_count(self):
        T, s = matrix_env()
        s.bulk_set((0,), np.ones((4, 4), dtype=np.int64))
        s.bulk_set((0,), np.zeros((4, 4), dtype=np.int64))
        assert len(s) == 16  # re-writing doesn't double-count

    def test_scan_roundtrip(self):
        T, s = matrix_env()
        s.insert(T.new(1, 2, 3, 7))
        s.insert(T.new(0, 0, 0, 5))
        assert sorted(t.values for t in s.scan()) == [(0, 0, 0, 5), (1, 2, 3, 7)]

    def test_select_by_key(self):
        T, s = matrix_env()
        s.insert(T.new(0, 1, 1, 9))
        got = list(s.select(build_query(T, 0, 1, 1)))
        assert [t.value for t in got] == [9]

    def test_clear(self):
        T, s = matrix_env()
        s.insert(T.new(0, 0, 0, 1))
        s.clear()
        assert len(s) == 0 and s.value_at(0, 0, 0) is None

    def test_heap_tuples_zero(self):
        """Unboxed storage: nothing for the GC model to chew on."""
        T, s = matrix_env()
        s.bulk_set((0,), np.ones((4, 4), dtype=np.int64))
        assert s.heap_tuples() == 0

    def test_float_values(self):
        schema = TableSchema("F", "int i -> double v")
        T = TableHandle(schema)
        s = NativeArrayStore(schema, (3,))
        s.insert(T.new(1, 2.5))
        assert s.value_at(1) == 2.5
        assert s.array.dtype == np.float64


class TestTwoIterationStore:
    def setup_method(self):
        self.schema = TableSchema("Data", "int iter, int index -> double value")
        self.T = TableHandle(self.schema)
        self.s = TwoIterationArrayStore(self.schema, 8)

    def test_requires_two_keys(self):
        with pytest.raises(SchemaError):
            TwoIterationArrayStore(TableSchema("D", "int i -> double v"), 4)

    def test_plane_recycling(self):
        """iter % 2 indexing: plane of iter i is reused for i+2 —
        the paper's two-copy GC optimisation."""
        self.s.bulk_set(0, 0, np.full(8, 0.0))
        self.s.bulk_set(1, 0, np.full(8, 1.0))
        assert self.s.plane_for(0, create=False) is not None
        self.s.bulk_set(2, 0, np.full(8, 2.0))  # recycles plane 0
        assert self.s.plane_for(0, create=False) is None  # iter 0 gone
        assert self.s.plane_for(2, create=False) is not None

    def test_insert_and_lookup(self):
        t = self.T.new(0, 3, 1.5)
        self.s.insert(t)
        assert t in self.s
        assert self.s.lookup_key((0, 3)) is not None
        assert self.s.lookup_key((1, 3)) is None

    def test_scan_lists_retained_iterations(self):
        self.s.bulk_set(0, 0, np.array([1.0, 2.0]))
        self.s.bulk_set(1, 0, np.array([3.0]))
        rows = sorted((t.iter, t.index, t.value) for t in self.s.scan())
        assert rows == [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0)]

    def test_heap_tuples_zero(self):
        self.s.bulk_set(0, 0, np.ones(8))
        assert self.s.heap_tuples() == 0

    def test_clear(self):
        self.s.bulk_set(0, 0, np.ones(8))
        self.s.clear()
        assert len(self.s) == 0
