"""Property-based equivalence: ``ColumnarStore`` ≡ ``TreeSetStore``.

The columnar backend reorganises storage (struct-of-arrays columns, a
hash partition, tombstone deletion with whole-store compaction) but
must stay observationally identical to the sorted row oracle: same
membership, same lengths, and — because §1.3 determinism rides on
iteration order — the *exact* sorted-by-values select results.
Hypothesis drives random insert/discard scripts and random queries
across partition shapes, keyed tables, the bulk batch APIs, and the
compaction threshold.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import QueryKind, build_query
from repro.core.schema import TableSchema
from repro.core.tuples import TableHandle
from repro.gamma import ColumnarStore, TreeSetStore

small_int = st.integers(min_value=0, max_value=4)  # small domain → collisions
small_float = st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0])
small_str = st.sampled_from(["x", "y"])

plain_rows = st.lists(
    st.tuples(small_int, small_int, small_float, small_str), max_size=50
)
keyed_rows = st.lists(st.tuples(small_int, small_int, small_float), max_size=30)

range_spec = st.fixed_dictionaries(
    {},
    optional={
        "ge": small_float,
        "gt": small_float,
        "le": small_float,
        "lt": small_float,
    },
).filter(bool)

#: partition shapes: default (primary key / none), single field,
#: multi-field, and a field never bound by equality
PARTITIONS = [
    pytest.param(None, id="default"),
    pytest.param(("a",), id="part-a"),
    pytest.param(("a", "b"), id="part-ab"),
    pytest.param(("s",), id="part-s"),
]


def plain_schema() -> TableSchema:
    return TableSchema("Ev", "int a, int b, float c, str s", orderby=("Ev",))


def keyed_schema() -> TableSchema:
    return TableSchema("Kv", "int a, int b -> float c", orderby=("Kv",))


def _query(schema: TableSchema, draw):
    eq: dict[str, object] = {}
    for f in schema.fields:
        if draw(st.booleans()):
            if f.type == "int":
                eq[f.name] = draw(small_int)
            elif f.type == "float":
                eq[f.name] = draw(small_float)
            else:
                eq[f.name] = draw(small_str)
    ranges: dict[str, dict] = {}
    for f in schema.fields:
        if f.name not in eq and f.type in ("int", "float") and draw(st.booleans()):
            ranges[f.name] = draw(range_spec)
    where = None
    if draw(st.booleans()):
        parity = draw(st.integers(min_value=0, max_value=1))
        where = lambda t: t.values[0] % 2 == parity  # noqa: E731
    return build_query(
        schema, where=where, ranges=ranges or None, kind=QueryKind.POSITIVE, **eq
    )


def _assert_stores_agree(columnar, oracle, schema, draw, n_queries=3):
    assert len(columnar) == len(oracle)
    assert sorted(t.values for t in columnar.scan()) == sorted(
        t.values for t in oracle.scan()
    )
    for _ in range(n_queries):
        q = _query(schema, draw)
        assert list(columnar.select(q)) == list(oracle.select(q)), repr(q)
        # the prepared path must serve exactly what the ad-hoc path does
        assert columnar.prepare(q).run(q) == list(oracle.select(q)), repr(q)


class TestPlainSchema:
    @pytest.mark.parametrize("partition", PARTITIONS)
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_script_equivalence(self, partition, data):
        """Random insert/discard interleavings, then random selects."""
        schema = plain_schema()
        handle = TableHandle(schema)
        columnar = ColumnarStore(schema, partition)
        oracle = TreeSetStore(schema)
        inserted = []
        for row in data.draw(plain_rows):
            t = handle.new(*row)
            assert columnar.insert(t) == oracle.insert(t)
            inserted.append(t)
        for t in inserted:
            if data.draw(st.booleans()):
                assert columnar.discard(t) == oracle.discard(t)
                assert (t in columnar) == (t in oracle)
        _assert_stores_agree(columnar, oracle, schema, data.draw)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_batch_apis_match_scalar(self, data):
        """insert_batch/select_batch are positionally exactly the
        per-item insert/select outcomes."""
        schema = plain_schema()
        handle = TableHandle(schema)
        columnar = ColumnarStore(schema, ("a",))
        oracle = TreeSetStore(schema)
        tuples = [handle.new(*row) for row in data.draw(plain_rows)]
        assert columnar.insert_batch(tuples) == [oracle.insert(t) for t in tuples]
        queries = [_query(schema, data.draw) for _ in range(4)]
        assert columnar.select_batch(queries) == [
            list(oracle.select(q)) for q in queries
        ]


class TestPreparedBatch:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_run_batch_matches_per_query_select(self, data):
        """``prepare_batch`` bulk probes (partition + residual eq +
        range quadruples) ≡ one ``select`` per reconstructed query."""
        schema = plain_schema()
        handle = TableHandle(schema)
        columnar = ColumnarStore(schema, ("a",))
        for row in data.draw(plain_rows):
            columnar.insert(handle.new(*row))

        with_b = data.draw(st.booleans())  # residual equality beyond part
        with_rng = data.draw(st.booleans())  # range on the float column
        probe_eq = {"a": 0} | ({"b": 0} if with_b else {})
        probe = build_query(
            schema,
            ranges={"c": {"ge": 0.0}} if with_rng else None,
            **probe_eq,
        )
        run_batch = columnar.prepare_batch(probe)
        assert run_batch is not None, "partition-served shape must compile"

        n = data.draw(st.integers(min_value=1, max_value=6))
        eq_rows, rng_rows, singles = [], [], []
        for _ in range(n):
            a = data.draw(small_int)
            eq = {"a": a}
            row = [a]
            if with_b:
                b = data.draw(small_int)
                eq["b"] = b
                row.append(b)
            ranges = None
            if with_rng:
                lo = data.draw(st.one_of(st.none(), small_float))
                hi = data.draw(st.one_of(st.none(), small_float))
                lo_inc = data.draw(st.booleans())
                hi_inc = data.draw(st.booleans())
                rng_rows.append(((lo, hi, lo_inc, hi_inc),))
                spec = {}
                if lo is not None:
                    spec["ge" if lo_inc else "gt"] = lo
                if hi is not None:
                    spec["le" if hi_inc else "lt"] = hi
                ranges = {"c": spec} if spec else None
            eq_rows.append(tuple(row))
            singles.append(build_query(schema, ranges=ranges, **eq))

        got = run_batch(eq_rows, rng_rows if with_rng else None)
        assert got == [list(columnar.select(q)) for q in singles]

    def test_unservable_shapes_refuse(self):
        schema = plain_schema()
        columnar = ColumnarStore(schema, ("a",))
        # where-lambda, partition not fully bound, no partition at all
        assert columnar.prepare_batch(
            build_query(schema, a=1, where=lambda t: True)
        ) is None
        assert columnar.prepare_batch(build_query(schema, b=1)) is None
        unpart = ColumnarStore(schema)  # no key → no partition index
        assert unpart.prepare_batch(build_query(schema, a=1)) is None


class TestKeyedSchema:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_lookup_key_tracks_inserts_and_discards(self, data):
        schema = keyed_schema()
        handle = TableHandle(schema)
        columnar = ColumnarStore(schema)
        oracle = TreeSetStore(schema)
        by_key: dict[tuple, object] = {}
        for row in data.draw(keyed_rows):
            t = handle.new(*row)
            if t.key() in by_key:
                continue  # the engine's key invariant: one tuple per key
            by_key[t.key()] = t
            columnar.insert(t)
            oracle.insert(t)
        for key, t in list(by_key.items()):
            if data.draw(st.booleans()):
                columnar.discard(t)
                oracle.discard(t)
                del by_key[key]
        for key, t in by_key.items():
            assert columnar.lookup_key(key) is t
        assert columnar.lookup_key((99, 99)) is None
        _assert_stores_agree(columnar, oracle, schema, data.draw)


class TestCompaction:
    def test_threshold_compaction_preserves_contents(self):
        """Push past the tombstone threshold (>32 dead, >half dead) and
        check the rebuilt store serves identically."""
        schema = plain_schema()
        handle = TableHandle(schema)
        columnar = ColumnarStore(schema, ("a",))
        oracle = TreeSetStore(schema)
        tuples = [handle.new(i % 5, i, float(i % 3), "x") for i in range(100)]
        for t in tuples:
            columnar.insert(t)
            oracle.insert(t)
        for t in tuples[:70]:
            columnar.discard(t)
            oracle.discard(t)
        # the row spine shrank below the original 100: compaction fired
        assert len(columnar._rows) < 100, "compaction threshold must have fired"
        assert len(columnar._rows) - columnar._dead == 30
        assert len(columnar) == len(oracle) == 30
        for t in tuples[:70]:
            assert t not in columnar
        q = build_query(schema, a=2)
        assert list(columnar.select(q)) == list(oracle.select(q))
        # survivors keep full fidelity through the rebuild
        assert [t.values for t in sorted(columnar.scan(), key=lambda t: t.values)] == [
            t.values for t in oracle.scan()
        ]

    def test_bignum_demotes_column_without_losing_rows(self):
        """A value outside the machine int range demotes the typed
        column to an object list; lookups still serve it."""
        schema = plain_schema()
        handle = TableHandle(schema)
        columnar = ColumnarStore(schema, ("a",))
        big = handle.new(1, 2**80, 0.0, "x")
        assert columnar.insert(handle.new(1, 7, 0.0, "x"))
        assert columnar.insert(big)
        assert big in columnar
        got = list(columnar.select(build_query(schema, a=1)))
        assert [t.values for t in got] == [(1, 7, 0.0, "x"), (1, 2**80, 0.0, "x")]
        run_batch = columnar.prepare_batch(build_query(schema, a=1, b=0))
        assert run_batch([(1, 2**80)], None) == [[big]]
