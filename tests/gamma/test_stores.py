"""Conformance suite run against every Gamma store backend, plus
backend-specific behaviours."""

from __future__ import annotations

import pytest

from repro.core.errors import SchemaError
from repro.core.query import build_query
from repro.core.schema import TableSchema
from repro.core.tuples import TableHandle
from repro.gamma import (
    ArrayOfHashSetsStore,
    ConcurrentSkipListStore,
    HashIndexStore,
    HashKeyStore,
    StoreRegistry,
    TreeSetStore,
)


def keyed_schema() -> TableSchema:
    return TableSchema("Rec", "int year, int month -> int power", orderby=("A",))


KEYED_FACTORIES = [
    pytest.param(lambda s: TreeSetStore(s), id="treeset"),
    pytest.param(lambda s: ConcurrentSkipListStore(s), id="concurrent-skiplist"),
    pytest.param(lambda s: HashKeyStore(s), id="hashkey"),
    pytest.param(lambda s: HashKeyStore(s, concurrent=True), id="concurrent-hashkey"),
    pytest.param(lambda s: HashIndexStore(s, ("year", "month")), id="hashindex"),
    pytest.param(lambda s: ArrayOfHashSetsStore(s, "month", 1, 12), id="array-of-hashsets"),
    pytest.param(
        lambda s: ArrayOfHashSetsStore(s, "month", 1, 12, concurrent=True),
        id="array-of-hashsets-concurrent",
    ),
]


@pytest.fixture(params=KEYED_FACTORIES)
def store(request):
    schema = keyed_schema()
    return TableHandle(schema), request.param(schema)


class TestConformance:
    def test_insert_dedup(self, store):
        T, s = store
        t = T.new(2012, 3, 100)
        assert s.insert(t)
        assert not s.insert(t)
        assert not s.insert(T.new(2012, 3, 100))
        assert len(s) == 1

    def test_contains(self, store):
        T, s = store
        t = T.new(2012, 3, 100)
        assert t not in s
        s.insert(t)
        assert t in s
        assert T.new(2012, 4, 100) not in s

    def test_scan_complete(self, store):
        T, s = store
        tuples = {T.new(2012, m, m * 10) for m in range(1, 7)}
        for t in tuples:
            s.insert(t)
        assert set(s.scan()) == tuples

    def test_lookup_key(self, store):
        T, s = store
        t = T.new(2012, 5, 55)
        s.insert(t)
        assert s.lookup_key((2012, 5)) == t
        assert s.lookup_key((2012, 6)) is None

    def test_select_by_full_key(self, store):
        T, s = store
        for m in range(1, 5):
            s.insert(T.new(2012, m, m))
        got = list(s.select(build_query(T, 2012, 3)))
        assert [t.power for t in got] == [3]

    def test_select_with_predicate(self, store):
        T, s = store
        for m in range(1, 7):
            s.insert(T.new(2012, m, m))
        q = build_query(T, where=lambda t: t.power % 2 == 0)
        assert sorted(t.power for t in s.select(q)) == [2, 4, 6]

    def test_select_range(self, store):
        T, s = store
        for m in range(1, 7):
            s.insert(T.new(2012, m, m))
        q = build_query(T, ranges={"month": {"ge": 3, "lt": 5}})
        assert sorted(t.month for t in s.select(q)) == [3, 4]

    def test_clear(self, store):
        T, s = store
        s.insert(T.new(2012, 1, 1))
        s.clear()
        assert len(s) == 0 and list(s.scan()) == []

    def test_discard(self, store):
        T, s = store
        t = T.new(2012, 1, 1)
        s.insert(t)
        assert s.discard(t)
        assert t not in s and len(s) == 0
        assert not s.discard(t)

    def test_heap_tuples_counts_objects(self, store):
        T, s = store
        for m in range(1, 4):
            s.insert(T.new(2012, m, m))
        assert s.heap_tuples() == 3


class TestTreeSetSpecifics:
    def test_prefix_range_scan(self):
        schema = keyed_schema()
        T = TableHandle(schema)
        s = TreeSetStore(schema)
        for y in (2011, 2012):
            for m in range(1, 13):
                s.insert(T.new(y, m, m))
        got = list(s.select(build_query(T, 2012)))
        assert len(got) == 12 and all(t.year == 2012 for t in got)

    def test_concurrent_variant_has_resource(self):
        s = ConcurrentSkipListStore(keyed_schema())
        assert s.cost.resource == "gamma:Rec"
        assert s.cost.serial_fraction > 0
        assert TreeSetStore(keyed_schema()).cost.resource is None


class TestHashSpecifics:
    def test_hashkey_requires_key(self):
        schema = TableSchema("NoKey", "int a, int b")
        with pytest.raises(SchemaError):
            HashKeyStore(schema)

    def test_hashindex_defaults_to_key_fields(self):
        s = HashIndexStore(keyed_schema())
        assert s.index_fields == ("year", "month")

    def test_hashindex_on_unkeyed_table(self):
        schema = TableSchema("Log", "int a, int b")
        s = HashIndexStore(schema)
        assert s.index_fields == ("a",)

    def test_hashindex_bucketed_select(self):
        schema = TableSchema("Edge", "int src, int dst")
        T = TableHandle(schema)
        s = HashIndexStore(schema, ("src",))
        for d in range(5):
            s.insert(T.new(d % 2, d))
        got = list(s.select(build_query(T, src=0)))
        assert sorted(t.dst for t in got) == [0, 2, 4]

    def test_array_store_range_enforced(self):
        schema = keyed_schema()
        T = TableHandle(schema)
        s = ArrayOfHashSetsStore(schema, "month", 1, 12)
        with pytest.raises(SchemaError, match="outside"):
            s.insert(T.new(2012, 13, 0))

    def test_array_store_bad_range(self):
        with pytest.raises(SchemaError):
            ArrayOfHashSetsStore(keyed_schema(), "month", 5, 2)

    def test_array_store_slot_select(self):
        schema = keyed_schema()
        T = TableHandle(schema)
        s = ArrayOfHashSetsStore(schema, "month", 1, 12)
        for m in range(1, 13):
            s.insert(T.new(2012, m, m))
        got = list(s.select(build_query(T, month=7)))
        assert [t.power for t in got] == [7]

    def test_array_of_hashsets_low_serial_fraction(self):
        """Per-slot independence is the Fig 8 story: the custom store
        contends far less than one shared concurrent map."""
        custom = ArrayOfHashSetsStore(keyed_schema(), "month", 1, 12, concurrent=True)
        shared = ConcurrentSkipListStore(keyed_schema())
        assert custom.cost.serial_fraction < shared.cost.serial_fraction


class TestRegistry:
    def test_default_and_override(self):
        schema = keyed_schema()
        reg = StoreRegistry(lambda s: TreeSetStore(s))
        assert isinstance(reg.create(schema), TreeSetStore)
        reg.override("Rec", lambda s: HashKeyStore(s))
        assert isinstance(reg.create(schema), HashKeyStore)
        assert reg.has_override("Rec") and not reg.has_override("Other")
