"""Skip list tests, incl. a hypothesis model check against dict+sorted."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gamma.skiplist import SkipListMap, SkipListSet


class TestMapBasics:
    def test_insert_get(self):
        m = SkipListMap()
        assert m.insert(3, "c")
        assert m.insert(1, "a")
        assert not m.insert(3, "C")  # replace, not new
        assert m.get(3) == "C"
        assert m.get(1) == "a"
        assert m.get(9, "dflt") == "dflt"
        assert len(m) == 2

    def test_ordered_iteration(self):
        m = SkipListMap()
        for k in (5, 1, 4, 2, 3):
            m.insert(k, k)
        assert list(m.keys()) == [1, 2, 3, 4, 5]
        assert list(m.values()) == [1, 2, 3, 4, 5]

    def test_items_from(self):
        m = SkipListMap()
        for k in range(0, 10, 2):
            m.insert(k, k)
        assert [k for k, _ in m.items_from(3)] == [4, 6, 8]
        assert [k for k, _ in m.items_from(4)] == [4, 6, 8]
        assert [k for k, _ in m.items_from(99)] == []

    def test_min_max(self):
        m = SkipListMap()
        assert m.min_item() is None and m.max_item() is None
        for k in (2, 7, 4):
            m.insert(k, str(k))
        assert m.min_item() == (2, "2")
        assert m.max_item() == (7, "7")

    def test_ceiling(self):
        m = SkipListMap()
        for k in (10, 20):
            m.insert(k, k)
        assert m.ceiling_item(5) == (10, 10)
        assert m.ceiling_item(10) == (10, 10)
        assert m.ceiling_item(15) == (20, 20)
        assert m.ceiling_item(25) is None

    def test_delete(self):
        m = SkipListMap()
        for k in range(10):
            m.insert(k, k)
        assert m.delete(5)
        assert not m.delete(5)
        assert 5 not in m
        assert list(m.keys()) == [0, 1, 2, 3, 4, 6, 7, 8, 9]

    def test_delete_all_then_reuse(self):
        m = SkipListMap()
        for k in range(20):
            m.insert(k, k)
        for k in range(20):
            assert m.delete(k)
        assert len(m) == 0 and not m
        m.insert(1, "x")
        assert m.get(1) == "x"

    def test_setdefault(self):
        m = SkipListMap()
        assert m.setdefault(1, "a") == "a"
        assert m.setdefault(1, "b") == "a"
        assert len(m) == 1

    def test_clear(self):
        m = SkipListMap()
        m.insert(1, 1)
        m.clear()
        assert len(m) == 0 and m.min_item() is None

    def test_contains(self):
        m = SkipListMap()
        m.insert(1, None)  # None values are legal
        assert 1 in m and 2 not in m

    def test_tuple_keys(self):
        m = SkipListMap()
        m.insert((1, 2), "a")
        m.insert((1,), "b")
        m.insert((0, 9), "c")
        assert list(m.keys()) == [(0, 9), (1,), (1, 2)]

    def test_repr(self):
        assert "size=0" in repr(SkipListMap())


class TestSetBasics:
    def test_add_discard(self):
        s = SkipListSet()
        assert s.add(3)
        assert not s.add(3)
        assert 3 in s
        assert s.discard(3)
        assert not s.discard(3)

    def test_readd_after_discard(self):
        s = SkipListSet()
        s.add(1)
        s.discard(1)
        assert s.add(1)  # regression: sentinel dedup must not linger

    def test_ordered_iter_and_from(self):
        s = SkipListSet()
        for k in (3, 1, 2):
            s.add(k)
        assert list(s) == [1, 2, 3]
        assert list(s.iter_from(2)) == [2, 3]

    def test_min_max(self):
        s = SkipListSet()
        assert s.min() is None and s.max() is None
        s.add(5)
        s.add(2)
        assert (s.min(), s.max()) == (2, 5)

    def test_clear(self):
        s = SkipListSet()
        s.add(1)
        s.clear()
        assert len(s) == 0


# -- model-based property tests -------------------------------------------------

ops = st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "get"]), st.integers(0, 30)),
    max_size=200,
)


@settings(max_examples=100, deadline=None)
@given(ops, st.integers(0, 2**31))
def test_map_matches_dict_model(operations, seed):
    m = SkipListMap(seed)
    model: dict[int, int] = {}
    for i, (op, k) in enumerate(operations):
        if op == "insert":
            assert m.insert(k, i) == (k not in model)
            model[k] = i
        elif op == "delete":
            assert m.delete(k) == (k in model)
            model.pop(k, None)
        else:
            assert m.get(k) == model.get(k)
    assert len(m) == len(model)
    assert list(m.items()) == sorted(model.items())


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-100, 100), max_size=120), st.integers(-100, 100))
def test_items_from_matches_model(keys, start):
    m = SkipListMap()
    for k in keys:
        m.insert(k, k)
    expected = sorted(k for k in set(keys) if k >= start)
    assert [k for k, _ in m.items_from(start)] == expected


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 50), max_size=100))
def test_set_matches_model(keys):
    s = SkipListSet()
    model: set[int] = set()
    for k in keys:
        assert s.add(k) == (k not in model)
        model.add(k)
    assert list(s) == sorted(model)
    assert len(s) == len(model)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 20), min_size=1, max_size=60))
def test_deterministic_for_fixed_seed(keys):
    a, b = SkipListMap(7), SkipListMap(7)
    for k in keys:
        a.insert(k, k)
        b.insert(k, k)
    assert list(a.items()) == list(b.items())
    assert a._level == b._level  # identical internal structure
