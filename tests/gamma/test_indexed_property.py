"""Property-based equivalence: ``IndexedStore.select`` ≡ full scan.

Hypothesis generates random tuple populations and random queries (any
combination of equality, range, and residual ``where`` constraints) and
asserts the indexed select returns *exactly* the same tuples — as a
multiset and, because §1.3 determinism rides on iteration order, in the
same sorted-by-values order the default stores yield — as filtering a
full scan through :meth:`Query.matches`, over every base store type and
every index shape, through inserts and discards.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import QueryKind, build_query
from repro.core.schema import TableSchema
from repro.core.tuples import TableHandle
from repro.gamma import (
    ConcurrentSkipListStore,
    HashIndexStore,
    HashKeyStore,
    IndexSpec,
    IndexedStore,
    TreeSetStore,
)


def plain_schema() -> TableSchema:
    return TableSchema("Ev", "int a, int b, float c, str s", orderby=("Ev",))


def keyed_schema() -> TableSchema:
    return TableSchema("Kv", "int a, int b -> float c", orderby=("Kv",))


# every index shape: single/multi-field hash, sorted with and without
# a hash prefix
PLAIN_SPECS = (
    IndexSpec(("a",)),
    IndexSpec(("a", "b")),
    IndexSpec(("b",), "c"),
    IndexSpec((), "c"),
)
KEYED_SPECS = (IndexSpec(("a",)), IndexSpec(("b",), "c"))

PLAIN_BASES = [
    pytest.param((lambda s: TreeSetStore(s), True), id="treeset"),
    pytest.param((lambda s: ConcurrentSkipListStore(s), True), id="skiplist"),
    pytest.param((lambda s: HashIndexStore(s, ("a",)), False), id="hashindex"),
]
KEYED_BASES = [
    pytest.param((lambda s: TreeSetStore(s), True), id="treeset"),
    pytest.param((lambda s: HashKeyStore(s), False), id="hashkey"),
]

small_int = st.integers(min_value=0, max_value=4)  # small domain → collisions
small_float = st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0])
small_str = st.sampled_from(["x", "y"])

plain_rows = st.lists(
    st.tuples(small_int, small_int, small_float, small_str), max_size=40
)
keyed_rows = st.lists(st.tuples(small_int, small_int, small_float), max_size=30)

# a range spec over a numeric field: None bounds are open
range_spec = st.fixed_dictionaries(
    {},
    optional={
        "ge": small_float,
        "gt": small_float,
        "le": small_float,
        "lt": small_float,
    },
).filter(bool)


def _queries(schema: TableSchema, draw):
    """Draw one random query against the schema: equality on a random
    field subset, ranges on numeric fields not equality-bound, and an
    optional residual predicate."""
    eq: dict[str, object] = {}
    for f in schema.fields:
        if draw(st.booleans()):
            if f.type == "int":
                eq[f.name] = draw(small_int)
            elif f.type == "float":
                eq[f.name] = draw(small_float)
            else:
                eq[f.name] = draw(small_str)
    ranges: dict[str, dict] = {}
    for f in schema.fields:
        if f.name not in eq and f.type in ("int", "float") and draw(st.booleans()):
            ranges[f.name] = draw(range_spec)
    where = None
    if draw(st.booleans()):
        parity = draw(st.integers(min_value=0, max_value=1))
        where = lambda t: t.values[0] % 2 == parity  # noqa: E731
    return build_query(
        schema, where=where, ranges=ranges or None, kind=QueryKind.POSITIVE, **eq
    )


def _check_equivalence(
    store: IndexedStore, handle: TableHandle, query, sorted_base: bool = True
) -> None:
    """Indexed select ≡ full-scan filter as a multiset always; for the
    sorted default stores also in the exact sorted-by-values order the
    §1.3 determinism argument relies on.  (Hash-based bases scan in
    insertion order, so their *fallback* path legitimately differs in
    order — they are only ever indexed by explicit request.)"""
    expected = sorted(
        (t for t in store.scan() if query.matches(t)), key=lambda t: t.values
    )
    got = list(store.select(query))
    if sorted_base:
        assert got == expected, f"{query!r}: {got} != {expected}"
    else:
        assert sorted(got, key=lambda t: t.values) == expected, (
            f"{query!r}: {got} != {expected}"
        )


class TestPlainSchema:
    @pytest.mark.parametrize("base", PLAIN_BASES)
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_select_matches_full_scan(self, base, data):
        factory, sorted_base = base
        schema = plain_schema()
        handle = TableHandle(schema)
        store = IndexedStore(factory(schema), PLAIN_SPECS)
        for row in data.draw(plain_rows):
            store.insert(handle.new(*row))
        for _ in range(3):
            _check_equivalence(
                store, handle, _queries(schema, data.draw), sorted_base
            )

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_discard_maintains_indexes(self, data):
        schema = plain_schema()
        handle = TableHandle(schema)
        store = IndexedStore(TreeSetStore(schema), PLAIN_SPECS)
        rows = data.draw(plain_rows)
        tuples = [handle.new(*row) for row in rows]
        for t in tuples:
            store.insert(t)
        for t in tuples:
            if data.draw(st.booleans()):
                store.discard(t)
        for _ in range(3):
            _check_equivalence(store, handle, _queries(schema, data.draw))


class TestKeyedSchema:
    @pytest.mark.parametrize("base", KEYED_BASES)
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_select_matches_full_scan(self, base, data):
        factory, sorted_base = base
        schema = keyed_schema()
        handle = TableHandle(schema)
        store = IndexedStore(factory(schema), KEYED_SPECS)
        seen_keys = set()
        for row in data.draw(keyed_rows):
            t = handle.new(*row)
            if t.key() in seen_keys:
                continue  # the engine's key invariant: one tuple per key
            seen_keys.add(t.key())
            store.insert(t)
        for _ in range(3):
            _check_equivalence(
                store, handle, _queries(schema, data.draw), sorted_base
            )


class TestIndexedStoreBasics:
    """Non-property sanity checks on the wrapper itself."""

    def test_duplicate_insert_not_double_indexed(self):
        schema = plain_schema()
        handle = TableHandle(schema)
        store = IndexedStore(TreeSetStore(schema), (IndexSpec(("a",)),))
        t = handle.new(1, 2, 0.5, "x")
        assert store.insert(t)
        assert not store.insert(handle.new(1, 2, 0.5, "x"))
        assert len(list(store.select(build_query(schema, a=1)))) == 1

    def test_cost_profile_charges_maintenance(self):
        schema = plain_schema()
        base = TreeSetStore(schema)
        store = IndexedStore(base, PLAIN_SPECS)
        assert store.cost.insert_cost > base.cost.insert_cost
        assert store.cost.lookup_cost == base.cost.lookup_cost

    def test_lookup_cost_cheaper_when_index_serves(self):
        schema = plain_schema()
        base = TreeSetStore(schema)
        store = IndexedStore(base, (IndexSpec(("b",)),))
        served = build_query(schema, b=1)
        unserved = build_query(schema, where=lambda t: True)
        cost_ix, tag_ix = store.lookup_cost_for(served)
        cost_scan, tag_scan = store.lookup_cost_for(unserved)
        assert tag_ix == "ixlookup" and tag_scan == "lookup"
        assert cost_ix < cost_scan == base.cost.lookup_cost

    def test_usage_counters(self):
        schema = keyed_schema()
        handle = TableHandle(schema)
        store = IndexedStore(TreeSetStore(schema), KEYED_SPECS)
        store.insert(handle.new(1, 2, 0.5))
        list(store.select(build_query(schema, a=1, b=2)))  # key path
        list(store.select(build_query(schema, a=1)))       # hash(a)
        list(store.select(build_query(schema, where=lambda t: True)))  # scan
        usage = store.index_usage()
        assert usage["key"] == 1
        assert usage["hash(a)"] == 1
        assert usage["scan"] == 1
