"""Tests for the execution strategies in isolation."""

from __future__ import annotations

import threading

import pytest

from repro.core.schema import TableSchema
from repro.core.tuples import TableHandle
from repro.exec.base import EngineTask, TaskResult
from repro.exec.forkjoin import ForkJoinStrategy
from repro.exec.sequential import SequentialStrategy
from repro.exec.threads import ThreadStrategy

T = TableHandle(TableSchema("T", "int x"))


def make_tasks(n, record=None):
    tasks = []
    for i in range(n):
        def run(i=i):
            if record is not None:
                record.append((i, threading.current_thread().name))
            r = TaskResult(trigger=T.new(i))
            r.meter.charge("user_work", cost=float(i + 1))
            return r
        tasks.append(EngineTask(trigger=T.new(i), run=run))
    return tasks


class TestSequential:
    def test_runs_in_order(self):
        order = []
        s = SequentialStrategy()
        results = s.run_batch(make_tasks(5, order))
        assert [i for i, _ in order] == [0, 1, 2, 3, 4]
        assert [r.trigger.x for r in results] == [0, 1, 2, 3, 4]

    def test_accounts_on_one_core(self):
        s = SequentialStrategy()
        results = s.run_batch(make_tasks(3))
        s.account_step(results, allocations=0, retained=0)
        assert s.report().n_cores == 1
        assert s.report().elapsed == pytest.approx(1 + 2 + 3)

    def test_account_serial(self):
        s = SequentialStrategy()
        s.account_serial(7.0)
        assert s.report().elapsed == 7.0


class TestForkJoin:
    def test_deterministic_execution_order(self):
        order = []
        s = ForkJoinStrategy(pool_size=8)
        s.run_batch(make_tasks(6, order))
        assert [i for i, _ in order] == list(range(6))  # sequential replay

    def test_virtual_parallelism(self):
        s1 = ForkJoinStrategy(pool_size=1)
        s4 = ForkJoinStrategy(pool_size=4)
        r1 = s1.run_batch(make_tasks(16))
        r4 = s4.run_batch(make_tasks(16))
        s1.account_step(r1, 0, 0)
        s4.account_step(r4, 0, 0)
        assert s4.report().elapsed < s1.report().elapsed

    def test_pool_size_validated(self):
        with pytest.raises(ValueError):
            ForkJoinStrategy(0)

    def test_concurrent_store_flag(self):
        assert ForkJoinStrategy(2).concurrent_stores
        assert not SequentialStrategy().concurrent_stores


class TestThreads:
    def test_results_in_submission_order(self):
        s = ThreadStrategy(pool_size=4)
        try:
            results = s.run_batch(make_tasks(20))
            assert [r.trigger.x for r in results] == list(range(20))
        finally:
            s.close()

    def test_actually_uses_pool_threads(self):
        order = []
        s = ThreadStrategy(pool_size=4)
        try:
            s.run_batch(make_tasks(30, order))
        finally:
            s.close()
        names = {name for _, name in order}
        assert any(n.startswith("jstar") for n in names)

    def test_single_task_runs_inline(self):
        order = []
        s = ThreadStrategy(pool_size=4)
        try:
            s.run_batch(make_tasks(1, order))
        finally:
            s.close()
        assert order[0][1] == threading.main_thread().name

    def test_closed_pool_rejects_batches(self):
        s = ThreadStrategy(pool_size=2)
        s.close()
        with pytest.raises(RuntimeError):
            s.run_batch(make_tasks(2))

    def test_close_idempotent(self):
        s = ThreadStrategy(pool_size=2)
        s.close()
        s.close()

    def test_no_machine_report(self):
        s = ThreadStrategy(pool_size=2)
        try:
            assert s.report() is None
            s.account_step([], 0, 0)  # no-op
        finally:
            s.close()

    def test_pool_size_validated(self):
        with pytest.raises(ValueError):
            ThreadStrategy(0)
