"""``metering="off"`` semantics: the no-op meter, the strategies that
force metering back on, and the engine's strategy-name validation."""

from __future__ import annotations

import pytest

from repro.core import EngineError, ExecOptions, Program
from repro.exec.metering import NULL_METER, CostMeter, NullMeter


def tiny_program():
    p = Program("tiny")
    T = p.table("T", "int t", orderby=("T", "seq t"))
    Out = p.table("Out", "int t", orderby=("Z", "seq t"))
    p.order("T", "Z")

    @p.foreach(T)
    def step(ctx, t):
        ctx.println(f"t={t.t}")
        ctx.put(Out.new(t.t))
        if t.t < 4:
            ctx.put(T.new(t.t + 1))

    p.put(T.new(0))
    return p


class TestNullMeter:
    def test_all_charges_are_noops(self):
        m = NullMeter()
        m.charge("x")
        m.charge_shared("delta", 3.0)
        m.charge_parallel(8.0, 4)
        m.charge("user_work", n=7, cost=2.5)
        other = CostMeter()
        other.charge("y", cost=9.0)
        m.merge(other)
        assert m.counters == {}
        assert m.costs == {}
        assert m.shared == {}
        assert m.splittable == []
        assert m.total_cost == 0.0
        assert m.count("x") == 0

    def test_shared_singleton_is_a_nullmeter(self):
        assert isinstance(NULL_METER, NullMeter)
        assert isinstance(NULL_METER, CostMeter)  # drop-in for TaskResult


class TestMeteringModes:
    def test_bad_mode_rejected(self):
        with pytest.raises(EngineError, match="metering"):
            ExecOptions(metering="sometimes")

    def test_off_zeroes_cost_bookkeeping(self):
        r = tiny_program().run(ExecOptions(metering="off"))
        assert r.meter.total_cost == 0.0
        assert r.meter.counters == {}
        assert r.virtual_time == 0.0  # sequential machine never advanced

    def test_off_identical_output(self):
        ref = tiny_program().run(ExecOptions())
        fast = tiny_program().run(ExecOptions(metering="off"))
        assert fast.output_text() == ref.output_text()
        assert fast.table_sizes == ref.table_sizes
        assert fast.steps == ref.steps

    def test_forkjoin_forces_metering_on(self):
        """The virtual-time machine consumes per-task meters, so the
        fork/join strategy overrides ``metering="off"`` — virtual time
        must match the metered run exactly."""
        ref = tiny_program().run(ExecOptions(strategy="forkjoin", threads=2))
        fast = tiny_program().run(
            ExecOptions(strategy="forkjoin", threads=2, metering="off")
        )
        assert fast.virtual_time > 0.0
        assert fast.virtual_time == pytest.approx(ref.virtual_time)
        assert fast.meter.counters == ref.meter.counters


class TestStepCoalescing:
    def test_coalescing_merges_silent_classes(self):
        """Out's classes trigger no rules, so each is merged into the
        following step; results are unchanged, steps shrink."""
        ref = tiny_program().run(ExecOptions())
        got = tiny_program().run(ExecOptions(coalesce_steps=True, metering="off"))
        assert got.output_text() == ref.output_text()
        assert got.table_sizes == ref.table_sizes
        assert got.steps < ref.steps

    def test_retention_disables_coalescing(self):
        from repro.core.engine import Engine
        from repro.core.program import RetentionHint

        p = tiny_program()
        e = Engine(
            p,
            ExecOptions(
                coalesce_steps=True, retention={"Out": RetentionHint("t", 2)}
            ),
        )
        assert e._coalesce is False


class TestStrategyValidation:
    def test_options_reject_unknown_strategy(self):
        with pytest.raises(EngineError, match="unknown strategy"):
            ExecOptions(strategy="warp")

    def test_engine_rejects_unknown_strategy_naming_the_valid_ones(self):
        """Defence in depth: even an options object that dodged
        ``__post_init__`` (e.g. mutated after construction) must not
        silently fall through to the threads strategy."""
        from repro.core.engine import Engine

        opts = ExecOptions()
        object.__setattr__(opts, "strategy", "warp")
        with pytest.raises(EngineError, match="sequential, forkjoin, threads, chaos"):
            Engine(tiny_program(), opts)
