"""Tests for the cost meter."""

from __future__ import annotations

import pytest

from repro.core.schema import TableSchema
from repro.exec.metering import DEFAULT_WEIGHTS, CostMeter
from repro.gamma import ConcurrentSkipListStore, TreeSetStore


class TestCharging:
    def test_default_weights(self):
        m = CostMeter()
        m.charge("delta_insert")
        assert m.total_cost == DEFAULT_WEIGHTS["delta_insert"]
        assert m.count("delta_insert") == 1

    def test_explicit_cost(self):
        m = CostMeter()
        m.charge("user_work", n=1, cost=42.0)
        assert m.total_cost == 42.0

    def test_n_multiplies(self):
        m = CostMeter()
        m.charge("reduce_op", n=10)
        assert m.total_cost == pytest.approx(10 * DEFAULT_WEIGHTS["reduce_op"])
        assert m.count("reduce_op") == 10

    def test_unknown_counter_weight_one(self):
        m = CostMeter()
        m.charge("bespoke", n=3)
        assert m.total_cost == 3.0

    def test_shared_resource(self):
        m = CostMeter()
        m.charge_shared("delta", 5.0)
        m.charge_shared("delta", 2.0)
        m.charge_shared("membw", 1.0)
        assert m.shared == {"delta": 7.0, "membw": 1.0}

    def test_zero_shared_dropped(self):
        m = CostMeter()
        m.charge_shared("delta", 0.0)
        assert m.shared == {}

    def test_store_op_routed_to_resource(self):
        schema = TableSchema("T", "int x")
        m = CostMeter()
        conc = ConcurrentSkipListStore(schema)
        m.charge_store_op("insert", conc, n=4)
        assert m.count("gamma_insert:T") == 4
        assert m.shared["gamma:T"] == pytest.approx(
            4 * conc.cost.insert_cost * conc.cost.serial_fraction
        )

    def test_sequential_store_no_shared(self):
        schema = TableSchema("T", "int x")
        m = CostMeter()
        m.charge_store_op("lookup", TreeSetStore(schema))
        assert m.shared == {}
        assert m.count("gamma_lookup:T") == 1

    def test_result_op(self):
        schema = TableSchema("T", "int x")
        m = CostMeter()
        m.charge_store_op("result", TreeSetStore(schema), n=10)
        assert m.count("gamma_result:T") == 10


class TestAggregation:
    def test_merge(self):
        a, b = CostMeter(), CostMeter()
        a.charge("x", cost=1.0)
        b.charge("x", cost=2.0)
        b.charge("y", cost=3.0)
        b.charge_shared("delta", 4.0)
        a.merge(b)
        assert a.costs == {"x": 3.0, "y": 3.0}
        assert a.total_cost == 6.0
        assert a.shared == {"delta": 4.0}

    def test_reset(self):
        m = CostMeter()
        m.charge("x")
        m.charge_shared("r", 1.0)
        m.reset()
        assert m.total_cost == 0 and not m.counters and not m.shared

    def test_cost_by_prefix(self):
        schema = TableSchema("T", "int x")
        m = CostMeter()
        m.charge_store_op("insert", TreeSetStore(schema), n=2)
        m.charge("delta_insert")
        assert m.cost_by_prefix("gamma_insert:") > 0
        assert m.cost_by_prefix("nothing:") == 0

    def test_repr(self):
        m = CostMeter()
        m.charge("x")
        assert "total=" in repr(m)
