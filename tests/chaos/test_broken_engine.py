"""The harness must *catch* a broken engine, not only bless a sound one.

``ChaosStrategy(completion_order_effects=True)`` is the classic unsound
"optimisation": task results (and therefore buffered effects) are handed
back in completion order instead of submission order.  Within one
all-minimums class that changes the Delta insertion order of effects,
which changes subsequent frontier order — the exact bug class the §1.3
contract forbids.  The same three-axis comparison used by the fuzz
harness must flag it.
"""

from __future__ import annotations

import pytest

from repro.apps.sensors import build_sensor_program
from repro.core import ExecOptions
from repro.core.engine import Engine
from repro.exec.chaos import ChaosStrategy
from repro.trace import trace_diff

SEEDS = list(range(6))


@pytest.fixture(scope="module")
def baseline():
    return build_sensor_program(12, 4).program.run(ExecOptions(trace=True))


@pytest.mark.parametrize("seed", SEEDS)
def test_completion_order_engine_is_caught(seed, baseline):
    strategy = ChaosStrategy(seed=seed, completion_order_effects=True)
    broken = Engine(
        build_sensor_program(12, 4).program,
        ExecOptions(strategy="chaos", chaos_seed=seed, trace=True),
        strategy=strategy,
    ).run()
    diverged = (
        broken.output_text() != baseline.output_text()
        or broken.table_sizes != baseline.table_sizes
        or trace_diff(baseline.trace, broken.trace) is not None
    )
    assert diverged, (
        f"seed {seed}: the completion-order engine variant slipped past "
        "the output/table-size/trace comparison"
    )


def test_sound_runs_same_seeds_are_clean(baseline):
    """Control group: the identical seeds under the *sound* chaos
    strategy show zero divergence, so the detection above is caused by
    the broken effect order, not by the perturbed schedule."""
    for seed in SEEDS:
        r = build_sensor_program(12, 4).program.run(
            ExecOptions(strategy="chaos", chaos_seed=seed, trace=True)
        )
        assert r.output_text() == baseline.output_text()
        assert r.table_sizes == baseline.table_sizes
        assert trace_diff(baseline.trace, r.trace) is None
