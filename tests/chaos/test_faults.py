"""Fault injection unit tests: each fault kind alone, knob validation,
and the scheduling modes."""

from __future__ import annotations

import pytest

from repro.apps.sensors import build_sensor_program
from repro.apps.ship import run_ship
from repro.core import ExecOptions
from repro.core.engine import Engine
from repro.core.errors import EngineError
from repro.exec.chaos import DEFAULT_INTERLEAVE_CAP, ChaosStrategy, FaultPlan


@pytest.fixture(scope="module")
def ship_base():
    return run_ship(ExecOptions())


def _chaos(seed=0, **fault_kw):
    plan = FaultPlan(**fault_kw) if fault_kw else None
    return ExecOptions(strategy="chaos", chaos_seed=seed, fault_plan=plan)


class TestFaultKinds:
    def test_raise_faults_are_redelivered(self, ship_base):
        r = run_ship(_chaos(seed=2, raise_prob=1.0))
        assert r.output_text() == ship_base.output_text()
        assert r.table_sizes == ship_base.table_sizes
        assert r.stats.faults.get("raise", 0) > 0

    def test_duplicate_deliveries_are_absorbed(self, ship_base):
        r = run_ship(_chaos(seed=2, duplicate_prob=1.0))
        assert r.output_text() == ship_base.output_text()
        assert r.table_sizes == ship_base.table_sizes
        # every non-empty batch duplicates every task
        assert r.stats.faults["duplicate"] >= r.steps

    def test_delays_carry_no_meaning(self, ship_base):
        r = run_ship(_chaos(seed=2, delay_prob=1.0))
        assert r.output_text() == ship_base.output_text()
        assert r.table_sizes == ship_base.table_sizes
        assert r.stats.faults["delay"] >= r.steps

    def test_fault_counters_reach_trace_and_stats(self):
        opts = _chaos(seed=4, duplicate_prob=1.0).with_(trace=True)
        r = run_ship(opts)
        traced = [e for e in r.trace.events if e.kind == "fault"]
        assert all(e.meta for e in traced)
        assert len(traced) == sum(r.stats.faults.values()) > 0

    def test_same_seed_same_fault_schedule(self):
        a = run_ship(_chaos(seed=9, raise_prob=0.5, delay_prob=0.3))
        b = run_ship(_chaos(seed=9, raise_prob=0.5, delay_prob=0.3))
        assert a.stats.faults == b.stats.faults
        assert a.output_text() == b.output_text()


class TestKnobValidation:
    def test_probabilities_must_be_unit_interval(self):
        with pytest.raises(EngineError, match="must be in"):
            FaultPlan(raise_prob=-0.1)
        with pytest.raises(EngineError, match="must be in"):
            FaultPlan(delay_prob=1.5)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(EngineError, match="sum"):
            FaultPlan(raise_prob=0.5, duplicate_prob=0.4, delay_prob=0.2)

    def test_chaos_knobs_require_chaos_strategy(self):
        with pytest.raises(EngineError, match="chaos"):
            ExecOptions(strategy="sequential", chaos_seed=1)
        with pytest.raises(EngineError, match="chaos"):
            ExecOptions(strategy="forkjoin", fault_plan=FaultPlan(delay_prob=0.1))

    def test_fault_plan_must_be_a_fault_plan(self):
        with pytest.raises(EngineError, match="FaultPlan"):
            ExecOptions(strategy="chaos", fault_plan={"raise_prob": 0.5})

    def test_raise_faults_incompatible_with_no_delta(self):
        with pytest.raises(EngineError, match="noDelta"):
            ExecOptions(
                strategy="chaos",
                fault_plan=FaultPlan(raise_prob=0.1),
                no_delta=frozenset({"Edge"}),
            )
        # the other fault kinds stay legal with -noDelta
        ExecOptions(
            strategy="chaos",
            fault_plan=FaultPlan(duplicate_prob=0.1, delay_prob=0.1),
            no_delta=frozenset({"Edge"}),
        )

    def test_round_trip(self):
        plan = FaultPlan(raise_prob=0.2, duplicate_prob=0.1, delay_prob=0.3)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert not FaultPlan().enabled
        assert plan.enabled


class TestSchedulingModes:
    def _modes(self, interleave_cap: int) -> set[str]:
        strategy = ChaosStrategy(seed=3, interleave_cap=interleave_cap)
        r = Engine(
            build_sensor_program(8, 4).program,
            ExecOptions(strategy="chaos", chaos_seed=3, trace=True),
            strategy=strategy,
        ).run()
        return {e.data["mode"] for e in r.trace.events if e.kind == "sched"}

    def test_wide_batches_interleave_below_cap(self):
        assert "interleave" in self._modes(DEFAULT_INTERLEAVE_CAP)

    def test_cap_one_forces_permuted_sequential(self):
        assert self._modes(1) == {"seq"}
