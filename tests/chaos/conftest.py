"""Shared app registry for the chaos fuzz harness.

Every example app is exposed as a ``name -> runner(options)`` mapping,
sized so that 20 chaos seeds per app stay cheap.  Runners build a fresh
program per call (an Engine runs once) and take *plain* options — no
``-noDelta`` hints — because raise-faults require fully delta-buffered
effects (see ``ExecOptions.__post_init__``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.median import run_median
from repro.apps.pvwatts import run_pvwatts
from repro.apps.sensors import run_sensors
from repro.apps.ship import run_ship
from repro.apps.shortestpath import GraphSpec, run_shortestpath
from repro.core import ExecOptions
from repro.csvio.synth import generate_csv_bytes

APP_NAMES = ["ship", "pvwatts", "shortestpath", "sensors", "median"]


@pytest.fixture(scope="session")
def chaos_apps():
    lines = generate_csv_bytes(n_years=1).split(b"\n")
    csv = b"\n".join(lines[:400]) + b"\n"
    vals = np.random.default_rng(9).random(200)
    spec = GraphSpec(n_vertices=30, extra_edges=40, seed=3)
    return {
        "ship": lambda o: run_ship(o),
        "pvwatts": lambda o: run_pvwatts(csv, o, n_readers=2),
        "shortestpath": lambda o: run_shortestpath(spec, o, n_gen_tasks=3),
        "sensors": lambda o: run_sensors(n_ticks=10, n_sensors=4, options=o),
        "median": lambda o: run_median(vals, o, n_regions=4),
    }


@pytest.fixture(scope="session")
def baselines(chaos_apps):
    """Traced sequential reference run per app."""
    return {
        name: run(ExecOptions(strategy="sequential", trace=True))
        for name, run in chaos_apps.items()
    }
