"""Chaos fuzz with deletes: the determinism contract extends to
retraction sessions.

Every app runs a fixed insert/delete/re-assert script through a
retraction session under the chaos strategy — 20 seeds, all three fault
kinds (raise / duplicate / delay) — and each run must be
indistinguishable from the sequential retraction baseline: byte
-identical output, identical Gamma table sizes, zero divergent semantic
trace events.  Every script also contains a *duplicated* ``Delete``
event, so duplicate delivery of a retraction is fuzzed alongside the
chaos duplicate-task fault.

``CHAOS_SEED_BASE`` / ``CHAOS_TRACE_DIR`` behave exactly as in
``test_fuzz`` (seed-window shifting, divergence artifact dumps).
"""

from __future__ import annotations

import os
import pathlib

import numpy as np
import pytest

from repro.core import Delete, ExecOptions
from repro.exec.chaos import FaultPlan
from repro.trace import format_divergence, trace_diff

SEED_BASE = int(os.environ.get("CHAOS_SEED_BASE", "0"))
SEEDS = list(range(SEED_BASE, SEED_BASE + 20))
FAULTS = FaultPlan(raise_prob=0.15, duplicate_prob=0.15, delay_prob=0.15)

APP_NAMES = ["ship", "pvwatts", "shortestpath", "sensors", "median"]

_observed: dict[str, int] = {}


# -- script builders (fresh program per run; every script contains a
# -- duplicated Delete) --------------------------------------------------------


def _script_ship():
    from repro.apps.ship import build_ship_program

    p, Ship = build_ship_program()
    init = p.initial_puts[0]
    return p, [[init], [Delete(init), Delete(init)], [init]], {}


def _script_pvwatts():
    from repro.apps.pvwatts import build_pvwatts_program

    from repro.csvio.synth import generate_csv_bytes

    lines = generate_csv_bytes(n_years=1).split(b"\n")
    csv = b"\n".join(lines[:200]) + b"\n"
    handles = build_pvwatts_program({"large1000.csv": csv}, "large1000.csv", 2)
    inits = list(handles.program.initial_puts)
    victim = inits[0]
    return handles.program, [inits, [Delete(victim), Delete(victim)], [victim]], {}


def _script_shortestpath():
    from repro.apps.shortestpath import GraphSpec, build_shortestpath_program

    spec = GraphSpec(n_vertices=20, extra_edges=25, seed=3)
    handles = build_shortestpath_program(spec, n_gen_tasks=3)
    inits = list(handles.program.initial_puts)
    victim = next(t for t in inits if t.schema.name == "GenTask")
    return handles.program, [inits, [Delete(victim), Delete(victim)], [victim]], {}


def _script_sensors():
    from repro.apps.sensors import build_sensor_stream

    handles, events = build_sensor_stream(n_ticks=10, n_sensors=4)
    late = handles.Reading.new(5, 7, 999)
    batches = [
        events,
        [Delete(events[3]), Delete(events[3]), Delete(events[17])],
        [late],
    ]
    return handles.program, batches, {}


def _script_median():
    from repro.apps.median import TwoIterationArrayStore, build_median_program

    vals = np.random.default_rng(9).random(60)
    handles = build_median_program(vals, n_regions=4)
    req = handles.program.initial_puts[0]
    opts_kw = {
        "store_overrides": {
            "Data": lambda schema: TwoIterationArrayStore(schema, len(vals))
        }
    }
    return handles.program, [[req], [Delete(req), Delete(req)], [req]], opts_kw


_SCRIPTS = {
    "ship": _script_ship,
    "pvwatts": _script_pvwatts,
    "shortestpath": _script_shortestpath,
    "sensors": _script_sensors,
    "median": _script_median,
}


def _run_script(app: str, **opt_kw):
    program, batches, extra = _SCRIPTS[app]()
    opts = ExecOptions(retraction=True, trace=True, **extra, **opt_kw)
    with program.session(opts) as s:
        for batch in batches:
            s.feed(batch)
            s.settle()
        return s.close()


@pytest.fixture(scope="module")
def retraction_baselines():
    """Traced sequential retraction run per app."""
    return {name: _run_script(name, strategy="sequential") for name in APP_NAMES}


def _dump_traces(result, base, label: str) -> None:
    trace_dir = os.environ.get("CHAOS_TRACE_DIR")
    if not trace_dir:
        return
    out = pathlib.Path(trace_dir)
    out.mkdir(parents=True, exist_ok=True)
    slug = label.replace(" ", "-").replace("(", "").replace(")", "")
    base.trace.to_jsonl(out / f"{slug}-baseline.jsonl")
    result.trace.to_jsonl(out / f"{slug}-chaos.jsonl")


def _assert_matches_baseline(result, base, label: str) -> None:
    try:
        assert result.output_text() == base.output_text(), (
            f"{label}: retraction output diverged from the sequential baseline"
        )
        assert result.table_sizes == base.table_sizes, (
            f"{label}: Gamma table sizes diverged from the sequential baseline"
        )
        d = trace_diff(base.trace, result.trace)
        assert d is None, f"{label}: {format_divergence(d)}"
    except AssertionError:
        _dump_traces(result, base, label)
        raise


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("app", APP_NAMES)
def test_chaos_retraction_with_faults_matches_sequential(
    app, seed, retraction_baselines
):
    result = _run_script(
        app, strategy="chaos", chaos_seed=seed, fault_plan=FAULTS
    )
    _assert_matches_baseline(
        result, retraction_baselines[app], f"{app} seed {seed} (retraction)"
    )
    assert result.stats.retractions > 0
    for kind, n in result.stats.faults.items():
        _observed[kind] = _observed.get(kind, 0) + n


@pytest.mark.parametrize("seed", SEEDS[:5])
@pytest.mark.parametrize("app", APP_NAMES)
def test_chaos_retraction_pure_scheduling_matches_sequential(
    app, seed, retraction_baselines
):
    result = _run_script(app, strategy="chaos", chaos_seed=seed)
    _assert_matches_baseline(
        result, retraction_baselines[app], f"{app} seed {seed} (retraction, no faults)"
    )
    assert result.stats.faults == {}


def test_retraction_fault_matrix_covered_every_kind():
    """Defined last: proves the fuzz injected every fault kind into the
    retraction matrix (not vacuously green)."""
    for kind in ("raise", "duplicate", "delay"):
        assert _observed.get(kind, 0) > 0, (
            f"the retraction fuzz never triggered a {kind!r} fault — "
            f"observed {_observed}"
        )
