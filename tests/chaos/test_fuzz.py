"""Schedule fuzzing: the §1.3 determinism contract under adversarial
schedules.

Every example app runs under the chaos strategy for 20 seeds with all
three fault kinds enabled, and each run must be indistinguishable from
the sequential baseline on three axes at once:

* byte-identical output text,
* identical Gamma table sizes,
* zero divergent semantic trace events (``trace_diff``).

A separate no-fault matrix exercises pure order permutation and
body interleaving, so a failure distinguishes "scheduling broke it"
from "fault recovery broke it".

``CHAOS_SEED_BASE`` (env) shifts the 20-seed window, so CI legs cover
disjoint ranges while any leg's failure reproduces locally with the
same variable.  When ``CHAOS_TRACE_DIR`` is set, the traces of a
diverging pair are dumped there as JSONL for offline ``trace_diff`` /
replay (CI uploads the directory as an artifact on failure).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core import ExecOptions
from repro.exec.chaos import FaultPlan
from repro.trace import format_divergence, trace_diff

from tests.chaos.conftest import APP_NAMES

SEED_BASE = int(os.environ.get("CHAOS_SEED_BASE", "0"))
SEEDS = list(range(SEED_BASE, SEED_BASE + 20))
FAULTS = FaultPlan(raise_prob=0.15, duplicate_prob=0.15, delay_prob=0.15)

#: fault kinds observed anywhere in the faulty matrix — asserted
#: non-empty per kind at the end, so the matrix cannot pass vacuously
_observed: dict[str, int] = {}


def _dump_traces(result, base, label: str) -> None:
    trace_dir = os.environ.get("CHAOS_TRACE_DIR")
    if not trace_dir:
        return
    out = pathlib.Path(trace_dir)
    out.mkdir(parents=True, exist_ok=True)
    slug = label.replace(" ", "-").replace("(", "").replace(")", "")
    base.trace.to_jsonl(out / f"{slug}-baseline.jsonl")
    result.trace.to_jsonl(out / f"{slug}-chaos.jsonl")


def _assert_matches_baseline(result, base, label: str) -> None:
    try:
        assert result.output_text() == base.output_text(), (
            f"{label}: output diverged from the sequential baseline"
        )
        assert result.table_sizes == base.table_sizes, (
            f"{label}: Gamma table sizes diverged from the sequential baseline"
        )
        d = trace_diff(base.trace, result.trace)
        assert d is None, f"{label}: {format_divergence(d)}"
    except AssertionError:
        _dump_traces(result, base, label)
        raise


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("app", APP_NAMES)
def test_chaos_with_faults_matches_sequential(app, seed, chaos_apps, baselines):
    run = chaos_apps[app]
    result = run(
        ExecOptions(strategy="chaos", chaos_seed=seed, trace=True, fault_plan=FAULTS)
    )
    _assert_matches_baseline(result, baselines[app], f"{app} seed {seed}")
    for kind, n in result.stats.faults.items():
        _observed[kind] = _observed.get(kind, 0) + n


@pytest.mark.parametrize("seed", SEEDS[:5])
@pytest.mark.parametrize("app", APP_NAMES)
def test_chaos_pure_scheduling_matches_sequential(app, seed, chaos_apps, baselines):
    run = chaos_apps[app]
    result = run(ExecOptions(strategy="chaos", chaos_seed=seed, trace=True))
    _assert_matches_baseline(result, baselines[app], f"{app} seed {seed} (no faults)")
    assert result.stats.faults == {}


def test_fault_matrix_covered_every_kind():
    """Defined last: runs after the parametrised matrix above and
    proves the fuzz actually injected every fault kind."""
    for kind in ("raise", "duplicate", "delay"):
        assert _observed.get(kind, 0) > 0, (
            f"the fuzz matrix never triggered a {kind!r} fault — "
            f"observed {_observed}"
        )


def test_chaos_seeds_draw_distinct_schedules(chaos_apps):
    """Different seeds must actually explore different schedules (the
    sched meta events differ), otherwise the seed matrix is one run."""
    run = chaos_apps["sensors"]
    traces = [
        run(ExecOptions(strategy="chaos", chaos_seed=s, trace=True)).trace
        for s in (0, 1)
    ]
    scheds = [
        [tuple(e.data["order"]) + tuple(e.data["picks"]) for e in t.events if e.kind == "sched"]
        for t in traces
    ]
    assert scheds[0] != scheds[1]
