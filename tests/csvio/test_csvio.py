"""Tests for the CSV substrate: readers, region splitting, synth data."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csvio import (
    PVWATTS_INT_POSITIONS,
    expected_month_means,
    generate_csv_bytes,
    hourly_records,
    iter_lines,
    parse_int_fields,
    read_records_bytes,
    read_records_text,
    read_region,
    region_bounds,
    split_regions,
)


class TestLineIteration:
    def test_basic(self):
        assert list(iter_lines(b"a\nb\nc\n")) == [b"a", b"b", b"c"]

    def test_no_trailing_newline(self):
        assert list(iter_lines(b"a\nb")) == [b"a", b"b"]

    def test_empty(self):
        assert list(iter_lines(b"")) == []

    def test_windowed(self):
        data = b"aa\nbb\ncc\n"
        assert list(iter_lines(data, 3, 6)) == [b"bb"]


class TestParsing:
    def test_int_fields(self):
        rec = parse_int_fields(b"2012,3,14,06:00,250", (0, 1, 2, 4), 5)
        assert rec == (2012, 3, 14, b"06:00", 250)

    def test_crlf_tolerated(self):
        rec = parse_int_fields(b"1,2\r", (0, 1), 2)
        assert rec == (1, 2)

    def test_blank_line_skipped(self):
        assert parse_int_fields(b"", (0,), 1) is None
        assert parse_int_fields(b"\r", (0,), 1) is None

    def test_wrong_field_count_skipped(self):
        assert parse_int_fields(b"1,2,3", (0,), 2) is None

    def test_non_numeric_skipped(self):
        assert parse_int_fields(b"xx,2", (0,), 2) is None

    def test_negative_ints(self):
        assert parse_int_fields(b"-5,ok", (0,), 2) == (-5, b"ok")


class TestReaders:
    DATA = b"1,a,10\n2,b,20\n3,c,30\n"

    def test_bytes_reader(self):
        recs = read_records_bytes(self.DATA, (0, 2), 3)
        assert recs == [(1, b"a", 10), (2, b"b", 20), (3, b"c", 30)]

    def test_bytes_reader_streaming(self):
        out = []
        n = read_records_bytes(self.DATA, (0, 2), 3, on_record=out.append)
        assert n == 3 and len(out) == 3

    def test_text_reader_agrees_modulo_str(self):
        b = read_records_bytes(self.DATA, (0, 2), 3)
        t = read_records_text(self.DATA, (0, 2), 3)
        assert [(x[0], x[2]) for x in b] == [(x[0], x[2]) for x in t]
        assert isinstance(t[0][1], str) and isinstance(b[0][1], bytes)

    def test_text_reader_streaming(self):
        out = []
        n = read_records_text(self.DATA, (0, 2), 3, on_record=out.append)
        assert n == 3


class TestRegions:
    def test_split_regions_tile(self):
        regions = split_regions(100, 7)
        assert regions[0][0] == 0 and regions[-1][1] == 100
        for (a, b), (c, d) in zip(regions, regions[1:]):
            assert b == c

    def test_split_more_regions_than_bytes(self):
        assert split_regions(2, 10) == [(0, 1), (1, 2)]

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            split_regions(10, 0)

    def test_bounds_at_record_start(self):
        data = b"aaa\nbbb\nccc\n"
        assert region_bounds(data, 0, 4) == (0, 4)
        assert region_bounds(data, 4, 8) == (4, 8)

    def test_bounds_mid_record(self):
        data = b"aaa\nbbb\nccc\n"
        first, last = region_bounds(data, 1, 6)
        assert (first, last) == (4, 8)  # owns only "bbb"

    def test_bounds_region_inside_one_record(self):
        data = b"aaaaaaaaaa\nbb\n"
        first, last = region_bounds(data, 2, 5)
        assert first == last  # owns nothing

    def test_read_region(self):
        data = b"1,x\n2,y\n3,z\n"
        out = []
        n = read_region(data, 4, 8, (0,), 2, out.append)
        assert n == 1 and out == [(2, b"y")]


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(0, 999), min_size=0, max_size=40),
    st.integers(1, 9),
    st.integers(0, 5),
)
def test_region_tiling_exact_for_any_cuts(values, n_regions, pad):
    """Hadoop-protocol property: however the byte cuts fall, the regions
    partition the record stream exactly once."""
    data = "".join(f"{v},{'x' * (v % (pad + 1))}\n" for v in values).encode()
    whole = read_records_bytes(data, (0,), 2)
    out = []
    for s, e in split_regions(len(data), n_regions):
        read_region(data, s, e, (0,), 2, out.append)
    assert out == whole


class TestSynth:
    def test_record_count(self):
        assert len(hourly_records(1)) == 8760  # non-leap hourly year

    def test_deterministic(self):
        assert hourly_records(1, seed=5) == hourly_records(1, seed=5)
        assert hourly_records(1, seed=5) != hourly_records(1, seed=6)

    def test_orders_same_multiset(self):
        a = hourly_records(1, order="by-month")
        b = hourly_records(1, order="round-robin")
        assert a != b and sorted(a) == sorted(b)

    def test_round_robin_interleaves_months(self):
        recs = hourly_records(1, order="round-robin")
        first_months = [r[1] for r in recs[:12]]
        assert len(set(first_months)) == 12

    def test_by_month_is_chronological(self):
        recs = hourly_records(1, order="by-month")
        months = [r[1] for r in recs]
        assert months == sorted(months)

    def test_night_power_zero(self):
        for r in hourly_records(1)[:6]:  # first hours of Jan 1
            assert r[4] == 0

    def test_csv_bytes_parse_back(self):
        data = generate_csv_bytes(n_years=1)
        recs = read_records_bytes(data, PVWATTS_INT_POSITIONS, 5)
        assert len(recs) == 8760

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            hourly_records(order="sideways")

    def test_expected_means_cover_all_months(self):
        means = expected_month_means()
        assert len(means) == 12
        assert all(v > 0 for v in means.values())
        # summer produces more than winter (the seasonal model)
        assert means[(2012, 6)] > means[(2012, 12)]
