#!/usr/bin/env python3
"""Running the paper's listings verbatim: the textual front-end.

`repro.lang` parses the concrete syntax the paper prints in Figs 4 & 5
and compiles it onto the runtime — including automatic extraction of
the causality proof obligations (§4), so `check_causality()` works on
textual rules exactly as the paper's compiler-to-SMT pipeline does.

Run:  python examples/textual_jstar.py
"""

from repro.core import ExecOptions
from repro.lang import compile_source

FIG4 = """
    // Fig 4, VERBATIM — including the request put: the compiler
    // generates the CSV read-loop rule from the *Request table pair
    table PvWattsRequest(String filename) orderby (Req);
    table PvWatts(int year, int month, int day, String hour, int power) orderby (PvWatts);
    table SumMonth(int year, int month) orderby (SumMonth);
    order Req < PvWatts < SumMonth;

    put PvWattsRequest("large1000.csv");

    foreach (PvWatts pv) {put new SumMonth(pv.year, pv.month);}

    foreach (SumMonth s) {
      val stats = new Statistics()
      for (record : get PvWatts(s.year, s.month)) {
        stats += record.power
      }
      println(s.year + "/" + s.month + ": " + stats.mean)
    }
"""

FIG5 = """
    table Edge(int src, int dst, int value) orderby (Edge);
    /** Estimated shortest distance to vertex. */
    table Estimate(int vertex, int distance) orderby (Int, seq distance, Estimate);
    put new Estimate(0, 0); // Set the origin.
    /** Final shortest-path to each vertex. */
    table Done(int vertex -> int distance) orderby (Int, seq distance, Done)
    order Edge < Int;
    order Estimate < Done;

    /** This implements Dijkstra's shortest path algorithm. */
    foreach (Estimate dist) {
      if (get uniq? Done(dist.vertex, [distance < dist.distance]) == null) {
        println("shortest path to " + dist.vertex + " is " + dist.distance);
        put new Done(dist.vertex, dist.distance);
        for (edge : get Edge(dist.vertex)) {
          if (get uniq? Done(edge.dst) == null) {
            put new Estimate(edge.dst, dist.distance + edge.value);
          }
        }
      }
    }
"""


def main() -> None:
    # ---- Fig 4, verbatim, against a synthetic large1000.csv ------------
    from repro.csvio import generate_csv_bytes

    data = generate_csv_bytes(n_years=1, seed=42)
    p4 = compile_source(FIG4, "fig4", files={"large1000.csv": data})

    print("== Fig 4 (PvWatts) static causality check ==")
    print(p4.check_causality().summary())
    r4 = p4.run(
        ExecOptions(strategy="forkjoin", threads=4, no_delta=frozenset({"PvWatts"}))
    )
    print("\n== Fig 4 output (12 months from 8 760 synthetic records) ==")
    for line in sorted(r4.output):
        print(" ", line)

    # ---- Fig 5 -----------------------------------------------------------
    p5 = compile_source(FIG5, "fig5")
    Edge = p5.tables["Edge"]
    edges = [(0, 1, 4), (0, 2, 1), (2, 1, 2), (1, 3, 1), (2, 3, 6), (3, 4, 2)]
    for s, d, w in edges:
        p5.put(Edge.new(s, d, w))

    import warnings

    print("\n== Fig 5 (Dijkstra) static causality check ==")
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        rep = p5.check_causality()
    print(rep.summary())

    # §4's workflow: "strengthen invariants ... so that the solver can
    # prove that the ordering relationship is satisfied".  Edge weights
    # are nonnegative — declare it and the Estimate put proves.
    from repro.solver import check_program

    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        rep2 = check_program(p5, invariants={"Edge": lambda f: [f["value"] >= 0]})
    unproved = [o for f in rep2.findings for o in f.failed_obligations]
    print(f"\nwith the invariant Edge.value >= 0: {len(unproved)} obligation(s) left —")
    for o in unproved:
        print("  ", o.description)
    print("(the unbounded 'get uniq? Done(edge.dst)' still fails, as §4 says")
    print(" it should: its guard needs a temporal invariant beyond the")
    print(" prover's fragment; the bounded guard and the puts prove fine)")

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        r5 = p5.run()
    print("\n== Fig 5 output (the Delta tree is the priority queue) ==")
    for line in r5.output:
        print(" ", line)


if __name__ == "__main__":
    main()
