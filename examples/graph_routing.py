#!/usr/bin/env python3
"""Graph routing: Dijkstra through the Delta tree (Fig 5, §6.5).

The striking idiom of the paper: *the Delta tree is the priority
queue*.  ``Estimate`` tuples are ordered by distance, so the engine's
all-minimums loop pops them in exactly Dijkstra order, and every
same-distance frontier runs in parallel — no explicit queue in the
program at all.

This example builds a small road-network-like graph, runs the program,
validates against a classic heapq Dijkstra, shows the §6.5 optimisation
set at work, and prints the Fig 12-style speedup curve with the
machine's Delta-contention attribution.

Run:  python examples/graph_routing.py
"""

from repro.apps.baselines.shortestpath_base import dijkstra_baseline
from repro.apps.shortestpath import (
    GraphSpec,
    distances_from_result,
    make_graph,
    recommended_options,
    run_shortestpath,
)
from repro.core import ExecOptions


def main() -> None:
    spec = GraphSpec(n_vertices=1500, extra_edges=3000, seed=11)
    edges = make_graph(spec)
    print(f"graph: {spec.n_vertices} vertices, {len(edges)} directed edges")

    # small demo with the paper's println tracing
    tiny = GraphSpec(n_vertices=8, extra_edges=4, seed=2)
    r_tiny = run_shortestpath(tiny, trace=True)
    print("\ntrace of an 8-vertex run (Fig 5's println):")
    for line in r_tiny.output:
        print(" ", line)

    # full run, validated against the hand-coded baseline
    r = run_shortestpath(spec)
    dist = distances_from_result(r)
    assert dist == dijkstra_baseline(edges, spec.n_vertices)
    print(f"\nall {len(dist)} shortest paths match the heapq baseline")
    print(f"engine steps: {r.steps} (one per distance level per table)")
    print(f"largest parallel frontier: {r.stats.max_batch} tuples")

    # Fig 12's story: speedup plateaus on Delta-tree contention
    print("\nspeedup vs fork/join pool size (Fig 12 shape):")
    t1 = run_shortestpath(
        spec, recommended_options(ExecOptions(strategy="forkjoin", threads=1))
    ).virtual_time
    for threads in (2, 4, 8):
        rt = run_shortestpath(
            spec, recommended_options(ExecOptions(strategy="forkjoin", threads=threads))
        )
        share = rt.report.contention / rt.report.elapsed
        print(
            f"  {threads} threads: {t1 / rt.virtual_time:4.2f}x   "
            f"(Delta-tree contention: {share:.0%} of elapsed)"
        )
    print("(paper: 'mediocre speedup, maximum of only 4.0' — the Delta tree)")


if __name__ == "__main__":
    main()
