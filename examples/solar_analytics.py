#!/usr/bin/env python3
"""Solar analytics: the full PvWatts workflow of §2 and §6.1–§6.3.

Walks the paper's four-stage programmer workflow on the monthly solar
power aggregation program (Fig 4):

1. **Application logic** — run the declarative program unoptimised and
   check it is correct.
2. **Execution orderings** — verify the causality obligations with the
   static prover (and show the Stratification failure when the
   ``order`` declaration is omitted, §6.1).
3. **Parallelism strategy** — apply ``-noDelta``, parallel readers and
   an 8-thread fork/join pool, purely through ExecOptions.
4. **Data structures** — swap the PvWatts Gamma store for the custom
   array-of-hashsets structure, again without touching the program.

Ends with the Disruptor redesign (§6.3) on the same data.

Run:  python examples/solar_analytics.py
"""

import warnings

from repro.apps.pvwatts import (
    array_of_hashsets_store,
    build_pvwatts_program,
    month_means_from_output,
)
from repro.apps.pvwatts_disruptor import run_disruptor_simulated, run_disruptor_threaded
from repro.core import ExecOptions
from repro.csvio import expected_month_means, generate_csv_bytes


def main() -> None:
    data = generate_csv_bytes(n_years=1, seed=42)
    files = {"large1000.csv": data}
    truth = expected_month_means()

    # -- stage 1: application logic -------------------------------------
    handles = build_pvwatts_program(files, "large1000.csv", n_readers=1)
    r_plain = handles.program.run(ExecOptions())
    means = month_means_from_output(r_plain.output)
    assert all(abs(means[k] - truth[k]) < 5e-3 for k in truth)
    print("stage 1 — logic correct; sequential virtual time:"
          f" {r_plain.virtual_time:,.0f} wu")

    # -- stage 2: execution orderings ------------------------------------
    report = handles.program.check_causality()
    print("\nstage 2 — causality check:")
    print(report.summary())

    broken = build_pvwatts_program(files, "large1000.csv", declare_order=False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        broken.program.check_causality()
    print(f"  without 'order Req < PvWatts < SumMonth': "
          f"{len(caught)} stratification warning(s) — as §6.1 predicts")

    # -- stage 3: parallelism strategy ------------------------------------
    handles3 = build_pvwatts_program(files, "large1000.csv", n_readers=8)
    opts3 = ExecOptions(
        strategy="forkjoin", threads=8, no_delta=frozenset({"PvWatts"})
    )
    r_par = handles3.program.run(opts3)
    assert month_means_from_output(r_par.output).keys() == means.keys()
    print(f"\nstage 3 — -noDelta + 8 readers + fork/join x8: "
          f"{r_par.virtual_time:,.0f} wu "
          f"({r_plain.virtual_time / r_par.virtual_time:.1f}x vs stage 1)")

    # -- stage 4: data structures -----------------------------------------
    opts4 = opts3.with_(store_overrides={"PvWatts": array_of_hashsets_store()})
    r_ds = handles3.program.run(opts4)
    print(f"stage 4 — custom array-of-hashsets Gamma store: "
          f"{r_ds.virtual_time:,.0f} wu "
          f"({r_plain.virtual_time / r_ds.virtual_time:.1f}x vs stage 1)")

    # -- §6.3: the Disruptor redesign ---------------------------------------
    means_d = run_disruptor_threaded(data)
    assert all(abs(means_d[k] - truth[k]) < 1e-6 for k in truth)
    sim8 = run_disruptor_simulated(data, threads=8)
    # the paper's reference is the optimised sequential JStar program
    r_seq_opt = handles.program.run(ExecOptions(no_delta=frozenset({"PvWatts"})))
    print(f"\nDisruptor redesign — threaded run correct; virtual model @8 "
          f"threads: {sim8.elapsed:,.0f} wu "
          f"({r_seq_opt.virtual_time / sim8.elapsed:.2f}x vs the sequential "
          f"JStar program; paper: 3.31x)")
    print(f"  producer stalls on by-month input: {sim8.producer_stalls}")


if __name__ == "__main__":
    main()
