#!/usr/bin/env python3
"""Visualising program structure and execution (§1.5, Figs 7 & 9).

The paper ships "a simple graph visualizer for viewing aspects of the
partial order over tuples that controls the parallelism" and renders
run logs "as annotated dependency graphs of the program execution".
This example regenerates both views for the PvWatts program:

* the static program graph (tables, rules, trigger/put/read edges);
* the execution graph annotated with observed counts — the Fig 7
  picture, with the two-phase read/reduce structure visible;
* a Delta-tree snapshot mid-run (the §1.5 partial-order viewer);
* DOT output for rendering with Graphviz.

Run:  python examples/visualize_dataflow.py            # ASCII to stdout
      python examples/visualize_dataflow.py --dot      # also write .dot files
"""

import sys

from repro.apps.pvwatts import build_pvwatts_program
from repro.core import ExecOptions
from repro.core.delta import DeltaTree
from repro.core.ordering import evaluate_orderby
from repro.csvio import generate_csv_bytes
from repro.stats import execution_graph, program_graph
from repro.viz import delta_ascii, graph_ascii, to_dot


def main() -> None:
    data = generate_csv_bytes(n_years=1, seed=42)
    handles = build_pvwatts_program({"f.csv": data}, "f.csv", n_readers=3)
    program = handles.program

    print("== static program graph (from declarations + rule metadata) ==")
    static = program_graph(program)
    print(graph_ascii(static))

    result = program.run(ExecOptions(no_delta=frozenset({"PvWatts"})))
    print("\n== execution graph, annotated with observed counts (Fig 7) ==")
    executed = execution_graph(result.stats, name="pvwatts-run")
    print(graph_ascii(executed))

    # a Delta-tree snapshot: put a few tuples and show the partial order
    print("\n== Delta-tree snapshot: the partial order over pending tuples ==")
    program.freeze()
    delta = DeltaTree()
    decls = program.decls
    for tup in (
        handles.SumMonth.new(2012, 3),
        handles.SumMonth.new(2012, 1),
        handles.ReadRegion.new("f.csv", 0, 100),
        handles.ReadRegion.new("f.csv", 100, 200),
        handles.PvWattsRequest.new("f.csv"),
    ):
        ts = evaluate_orderby(tup.schema.orderby, tup.asdict(), decls)
        delta.insert(tup, ts)
    print(delta_ascii(delta))
    print("(requests pop first, the two readers form one parallel class,")
    print(" SumMonth tuples wait behind the PvWatts level — Fig 9's phases)")

    if "--dot" in sys.argv[1:]:
        for name, graph in (("program", static), ("execution", executed)):
            path = f"pvwatts_{name}.dot"
            with open(path, "w") as fh:
                fh.write(to_dot(graph))
            print(f"\nwrote {path} (render with: dot -Tsvg {path} -o {name}.svg)")


if __name__ == "__main__":
    main()
