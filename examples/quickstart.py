#!/usr/bin/env python3
"""Quickstart: the Ship program from §3/Fig 2 of the paper.

Declares one table, one rule and one initial tuple, runs it under
three execution strategies, and shows that the output — the exact
Ship table of Fig 2 — never depends on the strategy.

Run:  python examples/quickstart.py
"""

from repro.core import ExecOptions, Program
from repro.solver import RuleMeta
from repro.stats import run_report


def main() -> None:
    p = Program("ship")

    # table Ship(int frame -> int x, int y, int dx, int dy)
    #     orderby (Int, seq frame)
    Ship = p.table(
        "Ship",
        "int frame -> int x, int y, int dx, int dy",
        orderby=("Int", "seq frame"),
    )

    # Symbolic metadata so the causality prover can check the rule
    # statically (the paper's SMT obligations, §4).
    meta = RuleMeta(Ship)
    t = meta.trigger
    meta.branch(when=[t["x"] < 400]).put(Ship, frame=t["frame"] + 1)

    # foreach (Ship s) { if (s.x < 400) put new Ship(s.frame+1, ...) }
    @p.foreach(Ship, meta=meta)
    def move_right(ctx, s):
        if s.x < 400:
            ctx.put(Ship.new(s.frame + 1, s.x + 150, s.y, s.dx, s.dy))
        ctx.println(f"frame {s.frame}: ship at ({s.x}, {s.y})")

    p.put(Ship.new(0, 10, 10, 150, 0))

    # Static causality check before running — all obligations prove.
    report = p.check_causality()
    print("== static causality check ==")
    print(report.summary(), "\n")

    # The same program under three strategies: same output every time.
    results = {}
    for label, opts in {
        "sequential": ExecOptions(strategy="sequential"),
        "forkjoin x8": ExecOptions(strategy="forkjoin", threads=8),
        "real threads": ExecOptions(strategy="threads", threads=4),
    }.items():
        results[label] = p.run(opts)

    print("== output (identical under every strategy) ==")
    for line in results["sequential"].output:
        print(line)
    assert all(r.output == results["sequential"].output for r in results.values())

    print("\n== run report (fork/join x8) ==")
    print(run_report(results["forkjoin x8"]))


if __name__ == "__main__":
    main()
