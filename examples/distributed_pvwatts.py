#!/usr/bin/env python3
"""Distributing a JStar program without touching it (§2 stage 3).

The paper's workflow says distribution decisions — "whether each set of
tuples should be partitioned, duplicated or shared across the different
cores or computers, and how the communication should be implemented" —
live outside the program.  This example takes the unmodified PvWatts
program and:

1. statically checks a placement's query locality (stage 2/3 tooling);
2. runs it on simulated clusters of 1–8 nodes;
3. compares a good placement (co-partition PvWatts and SumMonth by
   month) with a bad one (partition by day) — same program, same
   output, very different communication bills.

Run:  python examples/distributed_pvwatts.py
"""

from repro.apps.pvwatts import build_pvwatts_program, month_means_from_output
from repro.core import ExecOptions
from repro.csvio import generate_csv_bytes
from repro.dist import Partitioned, Replicated, check_locality, run_distributed

GOOD = {
    "PvWattsRequest": Replicated(),
    "ReadRegion": Partitioned("start"),
    "PvWatts": Partitioned("month"),
    "SumMonth": Partitioned("month"),
}
BAD = {**GOOD, "PvWatts": Partitioned("day")}


def main() -> None:
    data = generate_csv_bytes(n_years=1, seed=42)

    def build():
        return build_pvwatts_program({"f.csv": data}, "f.csv", n_readers=8)

    ref = month_means_from_output(build().program.run(ExecOptions()).output)

    print("== static locality check (month co-partitioning) ==")
    for finding in check_locality(build().program, GOOD):
        print(" ", finding)

    print("\n== node sweep, good placement ==")
    for nodes in (1, 2, 4, 8):
        r = run_distributed(build().program, n_nodes=nodes, placements=GOOD)
        assert month_means_from_output(sorted(r.output)) == ref
        print(
            f"  {nodes} node(s): elapsed {r.elapsed:9,.0f} wu "
            f"(compute {r.compute_time:,.0f}, comm {r.comm_time:,.0f}; "
            f"{r.tuples_moved} tuples moved, imbalance {r.imbalance:.2f})"
        )

    print("\n== placement experiment at 4 nodes (same program!) ==")
    for label, placements in (("by month (good)", GOOD), ("by day (bad)", BAD)):
        r = run_distributed(build().program, n_nodes=4, placements=placements)
        assert month_means_from_output(sorted(r.output)) == ref
        print(
            f"  {label:17s}: elapsed {r.elapsed:9,.0f} wu, "
            f"remote queries {r.remote_queries}, messages {r.messages}"
        )
    print("\nco-partitioning keeps every SumMonth reduce on its own node —")
    print("the experiment cost a placement dict, not a program rewrite (§2)")


if __name__ == "__main__":
    main()
