#!/usr/bin/env python3
"""Event-driven programming: a sensor monitor (§3 + footnote 8).

Demonstrates three idioms straight from the paper:

* **external input tuples** arrive (here: shuffled!) and trigger rules
  through the Delta set — the program is an event processor with no
  event loop written anywhere;
* **the kosher println**: output lines are `Println` tuples whose
  orderby defines the log's sort order, so the printed alerts come out
  in causal (tick, sensor) order no matter how the inputs arrived or
  which strategy ran the rules;
* **lifetime hints** (§5 step 4): readings are only ever compared with
  the previous tick, so `RetentionHint("tick", 2)` keeps the Gamma heap
  at two ticks forever — identical output, bounded memory.

Run:  python examples/event_stream.py
"""

from repro.apps.sensors import run_sensors
from repro.core import ExecOptions


def main() -> None:
    r = run_sensors(n_ticks=50, n_sensors=8)
    print(f"{len(r.output)} alerts from 400 shuffled readings, "
          "printed in causal order:")
    for line in r.output:
        print(" ", line)

    # same program, 8-way fork/join: byte-identical log
    r8 = run_sensors(n_ticks=50, n_sensors=8,
                     options=ExecOptions(strategy="forkjoin", threads=8))
    assert r8.output == r.output
    print("\nfork/join x8 produced the identical log (§1.3 determinism)")

    # bounded-memory variant
    rb = run_sensors(n_ticks=50, n_sensors=8, bounded_memory=True)
    assert rb.output == r.output
    print(f"\nwith RetentionHint('tick', 2): Gamma holds "
          f"{rb.table_sizes['Reading']} readings instead of "
          f"{r.table_sizes['Reading']} "
          f"({rb.stats.tables['Reading'].gamma_discarded} discarded), "
          "same output")
    print("(at paper-scale heaps this is what keeps the GC tax bounded — "
          "see benchmarks/test_ablation_retention.py)")


if __name__ == "__main__":
    main()
