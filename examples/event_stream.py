#!/usr/bin/env python3
"""Event-driven programming: a sensor monitor (§3 + footnote 8).

Demonstrates four idioms — three straight from the paper, one from the
session API built on top of it:

* **external input tuples** arrive (here: shuffled!) and trigger rules
  through the Delta set — the program is an event processor with no
  event loop written anywhere;
* **the kosher println**: output lines are `Println` tuples whose
  orderby defines the log's sort order, so the printed alerts come out
  in causal (tick, sensor) order no matter how the inputs arrived or
  which strategy ran the rules;
* **lifetime hints** (§5 step 4): readings are only ever compared with
  the previous tick, so `RetentionHint("tick", 2)` keeps the Gamma heap
  at two ticks forever — identical output, bounded memory;
* **incremental sessions**: the same program driven by
  `EngineSession.feed`/`settle` as events arrive in bursts, with a
  mid-stream checkpoint — the finished log is byte-identical to the
  single-shot run.

Run:  python examples/event_stream.py
"""

import json
import tempfile
from pathlib import Path

from repro.apps.sensors import build_sensor_stream, run_sensors
from repro.core import EngineSession, ExecOptions, causal_chunks


def main() -> None:
    r = run_sensors(n_ticks=50, n_sensors=8)
    print(f"{len(r.output)} alerts from 400 shuffled readings, "
          "printed in causal order:")
    for line in r.output:
        print(" ", line)

    # same program, 8-way fork/join: byte-identical log
    r8 = run_sensors(n_ticks=50, n_sensors=8,
                     options=ExecOptions(strategy="forkjoin", threads=8))
    assert r8.output == r.output
    print("\nfork/join x8 produced the identical log (§1.3 determinism)")

    # bounded-memory variant
    rb = run_sensors(n_ticks=50, n_sensors=8, bounded_memory=True)
    assert rb.output == r.output
    print(f"\nwith RetentionHint('tick', 2): Gamma holds "
          f"{rb.table_sizes['Reading']} readings instead of "
          f"{r.table_sizes['Reading']} "
          f"({rb.stats.tables['Reading'].gamma_discarded} discarded), "
          "same output")
    print("(at paper-scale heaps this is what keeps the GC tax bounded — "
          "see benchmarks/test_ablation_retention.py)")

    # the streaming twin: events arrive in five bursts, the session
    # settles after each, and we checkpoint after the second burst the
    # way a long-running monitor would
    handles, events = build_sensor_stream(n_ticks=50, n_sensors=8)
    with tempfile.TemporaryDirectory() as tmp:
        snap = Path(tmp) / "monitor.snapshot.json"
        with handles.program.session() as s:
            chunks = causal_chunks(s.database, events, 5)
            for i, chunk in enumerate(chunks):
                s.feed(chunk)
                s.settle()
                if i == 1:
                    doc = s.snapshot(snap)
                    print(f"\nburst {i + 1}: checkpointed at step {doc['steps']} "
                          f"({len(json.dumps(doc)) // 1024} KiB on disk)")
        rs = s.result
        assert rs.output == r.output
        print(f"{len(chunks)} bursts fed through an EngineSession: "
              "identical log, per-settle stats in run_report(result)")

        # ... and the crash-recovery story: restore the checkpoint and
        # feed it the bursts the "crashed" monitor never saw
        resumed = EngineSession.restore(snap, handles.program)
        for chunk in chunks[2:]:
            resumed.feed(chunk)
            resumed.settle()
        rr = resumed.close()
        assert rr.output == r.output
        print("restored from the checkpoint, fed the remaining bursts: "
              "identical log again (snapshots are exact resume points)")


if __name__ == "__main__":
    main()
