#!/usr/bin/env python3
"""Parallel selection: the Median-finding program (§6, §6.6, Fig 13).

The most explicitly parallel of the paper's case studies: a controller
chooses a pivot, N region tasks partition their slices in parallel and
report counts, and the controller narrows to the side containing the
median — all coordination expressed purely through timestamps (the
Delta ordering sequences pivot -> regions -> results -> controller
within each iteration; no locks, no barriers in the program).

Shows the §6.6 optimisation stack — two-iteration native-array store
(``double[2][N]``), bulk writes, nothing transits the Delta tree but
tiny control tuples — and the Fig 13 speedup curve.

Run:  python examples/parallel_selection.py
"""

import numpy as np

from repro.apps.baselines.median_base import median_sort_baseline
from repro.apps.median import median_from_result, random_doubles, run_median
from repro.core import ExecOptions


def main() -> None:
    n = 500_000
    values = random_doubles(n, seed=21)
    print(f"finding the median of {n:,} doubles with 24 parallel regions")

    r = run_median(values)
    answer = median_from_result(r)
    assert answer == median_sort_baseline(values)
    print(f"median = {answer:.6f}  (matches the full-sort baseline)")

    iters = max(
        (t.iter for t in r.database.store("Ctrl").scan()), default=0
    )
    print(f"iterations: {iters + 1}; engine steps: {r.steps}")
    print(f"control tuples through Delta: "
          f"{sum(s.delta_inserts for s in r.stats.tables.values())} "
          f"(the {n:,} data values never enter it)")

    print("\nspeedup vs pool size (Fig 13 shape; paper: 8.6x @12, 14x @32):")
    t1 = run_median(values, ExecOptions(strategy="forkjoin", threads=1)).virtual_time
    for threads in (4, 8, 12, 24, 32):
        rt = run_median(values, ExecOptions(strategy="forkjoin", threads=threads))
        assert median_from_result(rt) == answer
        print(f"  {threads:2d} threads: {t1 / rt.virtual_time:5.2f}x")

    # determinism under an adversarial-looking input
    spiky = np.concatenate([np.zeros(1000), np.ones(1001), random_doubles(999)])
    assert median_from_result(run_median(spiky)) == median_sort_baseline(spiky)
    print("\nedge-case input (mass ties) handled identically — set semantics")


if __name__ == "__main__":
    main()
